//! # dlaperf
//!
//! Workspace façade for the Rust reproduction of *Performance Modeling for
//! Dense Linear Algebra* (Peise & Bientinesi, SC 2012).
//!
//! This crate simply re-exports [`dla_core`]; see that crate (and the
//! workspace `README.md`) for the full documentation, and the `examples/`
//! directory for runnable entry points.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use dla_core::*;

/// The individual layers of the stack, re-exported for convenience.
pub mod layers {
    pub use dla_core::{algos, blas, machine, mat, model, modeler, predict, sampler};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_core_types() {
        // A couple of spot checks that the re-exports are wired up.
        let _ = crate::TrinvVariant::V1;
        let variants = crate::SylvVariant::all();
        assert_eq!(variants.len(), 16);
        let machine = crate::layers::machine::presets::harpertown_openblas();
        assert_eq!(machine.effective_threads(), 1);
    }
}
