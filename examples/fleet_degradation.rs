//! Fleet degradation sweep: availability and served-answer composition of
//! the resilient serving tier as a function of the injected outage rate.
//!
//! A three-machine fleet (harpertown, sandy bridge, threaded sandy bridge)
//! serves the trinv mix while every shard suffers 10 % attempt timeouts and
//! the two sandy-bridge shards additionally drop into outage windows at the
//! swept rate.  For each rate the same query stream runs against a fresh
//! fleet and the [`FleetHealth`] roll-up reports what the degradation cost:
//! how many answers stayed fresh, how many fell back to stale snapshots or
//! efficiency-scaled proxies, what got shed, and how often breakers tripped
//! and recovered.  Proxied answers are checked against the target machine's
//! own clean model — the worst relative error across the whole sweep is the
//! measured bound documented in EXPERIMENTS.md and enforced by the
//! `fleet_chaos` acceptance test.
//!
//! The end of the run demonstrates the fleet maintenance loop:
//! [`FleetService::apply_ledger_pressure`] feeds each shard's fault ledger
//! into its breaker, and [`FleetService::arbitrate_refinement_budget`]
//! splits a shared refinement sample budget toward the worst
//! drift × traffic pressure.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_degradation
//! ```

use std::sync::Arc;

use dlaperf::blas::{Diag, Side, Trans, Uplo};
use dlaperf::machine::presets::{
    harpertown_openblas, sandy_bridge_openblas, sandy_bridge_openblas_threaded,
};
use dlaperf::machine::ChaosConfig;
use dlaperf::predict::modelset::{build_repository, ModelSetConfig};
use dlaperf::predict::{
    ChaosShard, FleetBuilder, FleetConfig, FleetQuery, FleetService, Priority, Served,
    ServiceClient, ShardClient,
};
use dlaperf::{Call, Locality, MachineConfig, ModelRepository, ModelService, Workload};

/// The served traffic: trsm/gemm calls inside the quick(64) trinv spaces.
fn serving_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [12usize, 28, 44, 60] {
        for n in [16usize, 36, 52] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

/// The offline calibration sweep: a size grid offset from (but bracketing)
/// the serving mix, per routine.
fn calibration_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [8usize, 20, 36, 52, 64] {
        for n in [12usize, 28, 44, 56] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

struct Fleet {
    fleet: FleetService,
    ids: Vec<String>,
    services: Vec<Arc<ModelService>>,
}

/// Builds a fresh fleet: 10 % timeouts everywhere, outage windows at
/// `outage_rate` on the two sandy-bridge shards.
fn build_fleet(repos: &[(MachineConfig, ModelRepository)], outage_rate: f64) -> Fleet {
    let config = FleetConfig {
        seed: 0xF1EE_7D3B,
        calibration_calls: calibration_calls(),
        ..FleetConfig::default()
    };
    let mut builder = FleetBuilder::new(config.clone());
    let mut ids = Vec::new();
    let mut services = Vec::new();
    for (index, (machine, repo)) in repos.iter().enumerate() {
        let service = Arc::new(ModelService::new(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
        ));
        let schedule = ChaosConfig {
            seed: 0xC4A0_5000 + index as u64,
            timeout_probability: 0.10,
            outage_probability: if index > 0 { outage_rate } else { 0.0 },
            outage_draws: 24,
            ..ChaosConfig::default()
        };
        let shard = Arc::new(ChaosShard::new(
            ServiceClient::new(Arc::clone(&service), config.nominal_cost),
            schedule,
        ));
        ids.push(machine.id());
        services.push(Arc::clone(&service));
        builder = builder.shard_with_client(service, Arc::clone(&shard) as Arc<dyn ShardClient>);
    }
    Fleet {
        fleet: builder.build().expect("three distinct machines"),
        ids,
        services,
    }
}

fn main() {
    let machines = vec![
        harpertown_openblas(),
        sandy_bridge_openblas(),
        sandy_bridge_openblas_threaded(),
    ];
    let cfg = ModelSetConfig::quick(64);
    let repos: Vec<(MachineConfig, ModelRepository)> = machines
        .into_iter()
        .enumerate()
        .map(|(i, machine)| {
            let (repo, _) = build_repository(
                &machine,
                Locality::InCache,
                11 + i as u64,
                &cfg,
                &[Workload::Trinv],
            );
            (machine, repo)
        })
        .collect();
    let calls = serving_calls();

    const QUERIES: usize = 600;
    const DEADLINE: u64 = 600;
    println!(
        "fleet: {}",
        repos
            .iter()
            .map(|(m, _)| m.id())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("traffic: {QUERIES} queries, deadline {DEADLINE}, 10% timeouts on every shard");
    println!("outage windows (24 draws) on both sandy-bridge shards at the swept rate\n");
    println!(
        "| outage | availability | fresh | stale | proxied | shed | retries | timeouts | trips D/d | recov | probes | proxy err worst |"
    );
    println!(
        "|--------|--------------|-------|-------|---------|------|---------|----------|-----------|-------|--------|-----------------|"
    );

    let mut sweep_worst = 0.0f64;
    for rate in [0.0, 0.10, 0.20, 0.40] {
        let Fleet {
            fleet,
            ids,
            services,
        } = build_fleet(&repos, rate);
        let mut worst = 0.0f64;
        for i in 0..QUERIES {
            let query = FleetQuery {
                id: i as u64,
                machine_id: ids[i % ids.len()].clone(),
                call: calls[i % calls.len()].clone(),
                deadline: DEADLINE,
                priority: Priority::Normal,
            };
            let response = fleet.query(&query).expect("routable machine");
            if let Served::Proxied { .. } = &response.served {
                let truth = services[i % ids.len()]
                    .predict_call(&query.call)
                    .expect("clean model serves the mix")
                    .median;
                let proxied = response
                    .summary
                    .as_ref()
                    .expect("proxied answers carry a summary");
                worst = worst.max((proxied.median - truth).abs() / truth);
            }
        }
        let health = fleet.health();
        println!(
            "| {:>5.0}% | {:>12.4} | {:>5} | {:>5} | {:>7} | {:>4} | {:>7} | {:>8} | {:>6}/{:<2} | {:>5} | {:>6} | {:>15.4} |",
            100.0 * rate,
            health.availability(),
            health.fresh,
            health.stale,
            health.proxied,
            health.shed,
            health.retries,
            health.timeouts,
            health.trips_degraded,
            health.trips_down,
            health.recoveries,
            health.probes,
            worst,
        );
        sweep_worst = sweep_worst.max(worst);

        // The last (worst) fleet also demonstrates the maintenance loop.
        if rate >= 0.40 {
            println!("\nmaintenance pass at outage rate 40%:");
            let states = fleet.apply_ledger_pressure();
            for (id, state) in ids.iter().zip(&states) {
                println!("  ledger pressure: {id} -> {state:?}");
            }
            for budget in fleet.arbitrate_refinement_budget(4096) {
                println!(
                    "  refinement budget: {:<28} pressure {:>10.1} -> {:>4} samples",
                    budget.machine_id, budget.pressure, budget.sample_budget
                );
            }
        }
    }

    println!("\nworst proxied relative error across the sweep: {sweep_worst:.4}");
    assert!(
        sweep_worst < 0.15,
        "proxy calibration regressed past the documented bound"
    );
}
