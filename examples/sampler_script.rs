//! The Sampler's text interface (paper Section II-C): feed routine tuples to
//! the Sampler line by line and print the measured statistics, exactly like
//! the paper's stand-alone measurement tool.
//!
//! Run the built-in demo script with:
//!
//! ```text
//! cargo run --release --example sampler_script
//! ```
//!
//! or pipe your own script through stdin:
//!
//! ```text
//! echo "dgemm N N 256 256 256 1.0 0.0 2500 2500 2500" | \
//!     cargo run --release --example sampler_script -- -
//! ```

use std::io::Read;

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::machine::SimExecutor;
use dlaperf::sampler::script::{format_report, run_script};
use dlaperf::sampler::{Sampler, SamplerConfig};

const DEMO_SCRIPT: &str = "\
# The dtrsm invocation discussed in Section II-B of the paper,
# measured in cache and out of cache.
@repetitions 50
dtrsm R L N U 512 128 0.37 256 512
@locality out-of-cache
dtrsm R L N U 512 128 0.37 256 512
@locality in-cache
# A few dgemm sizes around the paper's Figure III.2 sweep.
dgemm N N 256 256 256 1.0 0.0 2500 2500 2500
dgemm N N 512 512 512 1.0 0.0 2500 2500 2500
dgemm N N 768 768 768 1.0 0.0 2500 2500 2500
# The unblocked kernels used by the blocked algorithms.
dtrtri_unb L N 96 2500
dsylv_unb 96 96 2500 2500 2500
";

fn main() {
    let script = match std::env::args().nth(1) {
        Some(arg) if arg == "-" => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("reading stdin");
            buf
        }
        Some(path) => std::fs::read_to_string(&path).expect("reading script file"),
        None => DEMO_SCRIPT.to_string(),
    };

    let machine = harpertown_openblas();
    println!("# sampling on {}", machine.id());
    let mut sampler = Sampler::new(SimExecutor::new(machine, 42), SamplerConfig::in_cache(10));
    let outcomes = run_script(&mut sampler, &script);
    print!("{}", format_report(&outcomes));
    println!(
        "# total raw measurements taken: {}",
        sampler.samples_taken()
    );
}
