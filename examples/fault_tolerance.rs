//! Fault tolerance sweep: drift recovery of the online refinement loop as a
//! function of the measurement fault rate.
//!
//! The scenario is the `online_refinement` example's drifted machine, but the
//! refiner measures through a [`ChaosExecutor`] injecting a mixed fault
//! schedule (40 % transient harness failures, 30 % ×10 latency spikes, 30 %
//! non-finite ticks at the configured rate).  For each fault rate the loop
//! runs the same number of telemetry → refine → merge rounds and reports how
//! much of the drift it recovered and what the fault handling cost:
//! retries, discarded samples, failed fits, quarantined and recovered cells.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;

use dlaperf::blas::{Diag, Side, Trans, Uplo};
use dlaperf::machine::cost::estimate_ticks;
use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::machine::{ChaosConfig, ChaosExecutor, SimExecutor};
use dlaperf::modeler::online::dedupe_templates;
use dlaperf::modeler::{OnlineRefiner, OnlineRefinerConfig, RefinementConfig};
use dlaperf::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dlaperf::{Call, Locality, MachineConfig, ModelService, Workload};

/// The post-drift machine: identical id, degraded kernels.
fn drifted(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.blas.gemm.peak_efficiency *= 0.55;
    m.blas.trsm.peak_efficiency *= 0.62;
    m.blas.trmm.peak_efficiency *= 0.58;
    m.blas.trsm.half_dim *= 1.8;
    m.blas.trtri_unb.peak_efficiency *= 0.7;
    m
}

/// The served traffic: a mix of trsm/trmm/gemm calls inside the model space.
fn traffic() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [24usize, 64, 120, 176, 232] {
        for n in [24usize, 72, 136, 200, 248] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::trmm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
        }
    }
    for m in [32usize, 96, 160, 224] {
        for n in [40usize, 104, 168, 240] {
            for k in [16usize, 64, 112] {
                calls.push(Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    m,
                    n,
                    k,
                    1.0,
                    1.0,
                ));
            }
        }
    }
    calls
}

fn mean_error(service: &ModelService, truth: &MachineConfig, calls: &[Call]) -> f64 {
    let mut acc = 0.0;
    for call in calls {
        let predicted = service.predict_call(call).expect("prediction").median;
        let actual = estimate_ticks(truth, call, Locality::InCache);
        acc += (predicted - actual).abs() / actual;
    }
    acc / calls.len() as f64
}

struct SweepRow {
    rate: f64,
    error_before: f64,
    error_after: f64,
    retries: u64,
    discarded: u64,
    fit_failures: usize,
    quarantined: usize,
    recovered: usize,
}

fn main() {
    let machine = harpertown_openblas();
    let drifted_machine = drifted(&machine);
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let calls = traffic();
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let templates = dedupe_templates(&templates);
    const ROUNDS: usize = 6;

    println!("machine: {} (drifted)", machine.id());
    println!("refinement rounds per fault rate: {ROUNDS}\n");

    let mut rows = Vec::new();
    for rate in [0.0, 0.10, 0.20, 0.40] {
        let service = Arc::new(ModelService::new(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
        ));
        let error_before = mean_error(&service, &drifted_machine, &calls);
        let chaos = ChaosExecutor::new(
            SimExecutor::new(drifted_machine.clone(), 0xd41f7),
            ChaosConfig::mixed(0xc4a05, rate),
        );
        let mut refiner = OnlineRefiner::new(
            chaos,
            Locality::InCache,
            5,
            OnlineRefinerConfig {
                fit: RefinementConfig {
                    error_bound: 0.10,
                    min_region_size: 64,
                    grid_per_dim: 4,
                    degree: 2,
                },
                sample_budget: 4096,
                max_cells: 256,
                min_queries: 1,
                ..Default::default()
            },
        )
        .with_templates(&templates);
        refiner.set_max_retries(6);

        let mut row = SweepRow {
            rate,
            error_before,
            error_after: error_before,
            retries: 0,
            discarded: 0,
            fit_failures: 0,
            quarantined: 0,
            recovered: 0,
        };
        for _ in 0..ROUNDS {
            // Serving the traffic is what feeds the refinement telemetry.
            let _ = mean_error(&service, &drifted_machine, &calls);
            let report = service.refinement_report();
            if report.is_empty() {
                break;
            }
            let (delta, outcome) = refiner.refine(&service.snapshot(), &report);
            service.record_refinement(&outcome);
            if !delta.is_empty() {
                service
                    .merge(delta)
                    .expect("refiner deltas pass the publication gate");
            }
            row.retries += outcome.sample_retries;
            row.discarded += outcome.samples_discarded;
            row.fit_failures += outcome.fit_failures;
            row.quarantined += outcome.cells_quarantined;
            row.recovered += outcome.cells_recovered;
        }
        row.error_after = mean_error(&service, &drifted_machine, &calls);

        let health = service.health();
        assert_eq!(health.publishes_rejected, 0, "refiner deltas never reject");
        println!(
            "fault rate {:>4.0}%: error {:>5.1}% -> {:>4.1}%  \
             (retries {:>4}, discarded {:>4}, failed fits {:>2}, \
             quarantined {}, recovered {})",
            100.0 * row.rate,
            100.0 * row.error_before,
            100.0 * row.error_after,
            row.retries,
            row.discarded,
            row.fit_failures,
            row.quarantined,
            row.recovered,
        );
        rows.push(row);
    }

    println!();
    for row in &rows {
        // The acceptance bar: the loop must recover the drift (2x error
        // reduction) at every fault rate up to 20%.
        if row.rate <= 0.20 {
            assert!(
                row.error_after * 2.0 <= row.error_before,
                "drift must be recovered 2x at {:.0}% faults \
                 (before {}, after {})",
                100.0 * row.rate,
                row.error_before,
                row.error_after
            );
        } else {
            // Heavier chaos may degrade convergence but must never corrupt
            // the served surface: strictly better than before, always.
            assert!(
                row.error_after < row.error_before,
                "even at {:.0}% faults refinement must improve predictions",
                100.0 * row.rate
            );
        }
    }
    println!("fault tolerance sweep complete: drift recovered 2x at up to 20% faults");
}
