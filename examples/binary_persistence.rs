//! Binary persistence: save a model repository in the binary format, load it
//! back serve-ready, and drive a block-size sweep from the loaded models.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example binary_persistence
//! ```
//!
//! The example demonstrates the round trip CI relies on:
//!
//! 1. build the quickstart repository and save it twice — `.dlapb` (binary)
//!    and `.txt` (the text debug format);
//! 2. time "load → serve-ready" for both codecs (the binary decoder
//!    deserializes straight into the compiled layout, no re-parse and no
//!    re-compile);
//! 3. hot-swap the binary-loaded repository into the serving pipeline and
//!    sweep trinv block sizes from it, reporting queries/sec;
//! 4. verify the save→load→save cycle is byte-identical.

use std::time::Instant;

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::model::RepositoryFormat;
use dlaperf::predict::blocksize::default_block_size_candidates;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::{ModelRepository, Pipeline, TrinvVariant, Workload};

fn main() {
    let machine = harpertown_openblas();
    println!("machine: {}", machine.id());

    // 1. Build the quickstart repository and save it in both formats.
    let mut pipeline = Pipeline::new(machine.clone()).with_model_config(ModelSetConfig::quick(512));
    pipeline.build_models(&[Workload::Trinv]);
    let dir = std::env::temp_dir().join("dlaperf_binary_persistence");
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    let bin_path = dir.join("models.dlapb");
    let text_path = dir.join("models.txt");
    pipeline.save_repository(&bin_path).expect("save binary");
    pipeline.save_repository(&text_path).expect("save text");
    let bin_len = std::fs::metadata(&bin_path).expect("stat binary").len();
    let text_len = std::fs::metadata(&text_path).expect("stat text").len();
    println!("saved {} bytes binary, {} bytes text", bin_len, text_len);

    // 2. Load → serve-ready, both codecs (the front door sniffs the magic
    //    bytes, so the caller never states the format on load).
    let start = Instant::now();
    let from_text = ModelRepository::load_file_compiled(&text_path).expect("load text");
    let text_ms = 1e3 * start.elapsed().as_secs_f64();
    let start = Instant::now();
    let from_binary = ModelRepository::load_file_compiled(&bin_path).expect("load binary");
    let binary_ms = 1e3 * start.elapsed().as_secs_f64();
    assert_eq!(from_text.len(), from_binary.len());
    println!("load to serve-ready: text {text_ms:.3} ms, binary {binary_ms:.3} ms");

    // 3. Serve from the binary-loaded models: hot-swap them into a fresh
    //    pipeline and sweep trinv block sizes (the batched evaluation path).
    let mut serving = Pipeline::new(machine);
    serving.load_repository(&bin_path).expect("hot-swap binary");
    let n = 448;
    let sweep = serving
        .tune_trinv_block_size(TrinvVariant::V3, n, &default_block_size_candidates())
        .expect("sweep from binary-loaded models");
    let best = sweep.best_block_size().expect("a finite best block size");
    println!(
        "swept {} block sizes for n = {n}: best b = {best} \
         ({} model queries at {:.2e} queries/sec)",
        sweep.candidates.len(),
        sweep.evaluated_calls,
        sweep.queries_per_sec
    );

    // The binary-loaded models must predict exactly what the builder's did.
    let original = pipeline
        .tune_trinv_block_size(TrinvVariant::V3, n, &default_block_size_candidates())
        .expect("sweep from built models");
    assert_eq!(original.candidates, sweep.candidates);
    println!("binary-loaded predictions match the built repository exactly");

    // 4. Byte-identical persistence: save → load → save reproduces the file.
    let first = std::fs::read(&bin_path).expect("read saved binary");
    let reloaded = ModelRepository::load_file(&bin_path).expect("reload binary");
    let roundtrip = dir.join("models_roundtrip.dlapb");
    reloaded
        .save_file_as(&roundtrip, RepositoryFormat::Binary)
        .expect("re-save binary");
    let second = std::fs::read(&roundtrip).expect("read re-saved binary");
    assert_eq!(first, second, "save → load → save must be byte-identical");
    println!(
        "save → load → save is byte-identical ({} bytes)",
        first.len()
    );
}
