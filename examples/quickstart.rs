//! Quickstart: build performance models on the simulated Harpertown machine,
//! rank the four triangular-inversion variants without executing them, and
//! compare the ranking against a (simulated) execution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--workers N` to pin the model-construction worker count; the example
//! then also rebuilds with the default (parallel) worker count and verifies
//! that both builds produce a byte-identical repository — the determinism
//! guarantee CI relies on.

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, TrinvVariant, Workload};

/// Parses an optional `--workers N` command-line argument.
fn workers_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let value = args.next().expect("--workers requires a value");
            return Some(value.parse().expect("--workers value must be an integer"));
        }
    }
    None
}

fn main() {
    let machine = harpertown_openblas();
    println!("machine: {}", machine.id());

    // 1. Build models for the routines the trinv variants are built on
    //    (dtrmm, dtrsm, dgemm and the unblocked triangular inversion).
    //    Construction fans out across worker threads; any worker count yields
    //    a byte-identical repository.
    let workers = workers_arg();
    let config = ModelSetConfig::quick(512).with_workers(workers.unwrap_or(0));
    println!(
        "building models with {} worker(s)",
        config.effective_workers()
    );
    let mut pipeline = Pipeline::new(machine.clone()).with_model_config(config);
    pipeline.build_models(&[Workload::Trinv]);

    if workers.is_some() {
        // Determinism check: rebuild with an explicitly parallel worker count
        // (pinned, so the check stays meaningful on single-core hosts where
        // the default would also resolve to one worker) and require a
        // byte-identical repository.
        let reference_workers = if workers == Some(4) { 3 } else { 4 };
        let mut reference = Pipeline::new(machine)
            .with_model_config(ModelSetConfig::quick(512).with_workers(reference_workers));
        reference.build_models(&[Workload::Trinv]);
        assert_eq!(
            pipeline.repository().to_text().unwrap(),
            reference.repository().to_text().unwrap(),
            "builds with different worker counts must be byte-identical"
        );
        println!(
            "determinism check passed: {} and {} workers agree byte for byte",
            config.effective_workers(),
            reference_workers
        );
    }
    for report in pipeline.reports() {
        println!(
            "modelled {:<12} with {:>5} samples, {:>3} regions, avg worst-case fit error {:.2}%",
            report.routine.name(),
            report.samples,
            report.regions,
            100.0 * report.average_error
        );
    }

    // 2. Rank the variants for n = 500, block size 96 — from the models alone.
    let n = 500;
    let b = 96;
    println!("\npredicted ranking for n = {n}, block size {b} (best first):");
    let ranking = pipeline
        .rank_trinv(n, b)
        .expect("models cover the workload");
    for (variant, prediction) in &ranking {
        println!(
            "  {:<10} predicted efficiency {:.3}  (range {:.3} .. {:.3})",
            variant.name(),
            prediction.median,
            prediction.min,
            prediction.max
        );
    }

    // 3. Validate against a simulated execution of each variant.
    println!("\nsimulated execution for comparison:");
    for variant in TrinvVariant::ALL {
        let measured = pipeline.measure_trinv(variant, n, b, MeasurementMode::Auto);
        println!(
            "  {:<10} measured efficiency {:.3}  ({} calls, {:.2e} ticks)",
            variant.name(),
            measured.efficiency,
            measured.calls,
            measured.ticks
        );
    }

    let best = ranking[0].0;
    println!("\npredicted best variant: {}", best.name());
}
