//! Quickstart: build performance models on the simulated Harpertown machine,
//! rank the four triangular-inversion variants without executing them, and
//! compare the ranking against a (simulated) execution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, TrinvVariant, Workload};

fn main() {
    let machine = harpertown_openblas();
    println!("machine: {}", machine.id());

    // 1. Build models for the routines the trinv variants are built on
    //    (dtrmm, dtrsm, dgemm and the unblocked triangular inversion).
    let mut pipeline = Pipeline::new(machine).with_model_config(ModelSetConfig::quick(512));
    pipeline.build_models(&[Workload::Trinv]);
    for report in pipeline.reports() {
        println!(
            "modelled {:<12} with {:>5} samples, {:>3} regions, avg worst-case fit error {:.2}%",
            report.routine.name(),
            report.samples,
            report.regions,
            100.0 * report.average_error
        );
    }

    // 2. Rank the variants for n = 500, block size 96 — from the models alone.
    let n = 500;
    let b = 96;
    println!("\npredicted ranking for n = {n}, block size {b} (best first):");
    let ranking = pipeline
        .rank_trinv(n, b)
        .expect("models cover the workload");
    for (variant, prediction) in &ranking {
        println!(
            "  {:<10} predicted efficiency {:.3}  (range {:.3} .. {:.3})",
            variant.name(),
            prediction.median,
            prediction.min,
            prediction.max
        );
    }

    // 3. Validate against a simulated execution of each variant.
    println!("\nsimulated execution for comparison:");
    for variant in TrinvVariant::ALL {
        let measured = pipeline.measure_trinv(variant, n, b, MeasurementMode::Auto);
        println!(
            "  {:<10} measured efficiency {:.3}  ({} calls, {:.2e} ticks)",
            variant.name(),
            measured.efficiency,
            measured.calls,
            measured.ticks
        );
    }

    let best = ranking[0].0;
    println!("\npredicted best variant: {}", best.name());
}
