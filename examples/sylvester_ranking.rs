//! Ranking the sixteen blocked Sylvester-equation variants (paper
//! Section IV-B): the models must first separate the fast, GEMM-rich group
//! from the slow group, and then order the fast group correctly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sylvester_ranking [n]
//! ```

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, SylvVariant, Workload};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(768);
    let b = 96;

    let mut pipeline =
        Pipeline::new(harpertown_openblas()).with_model_config(ModelSetConfig::quick(n.max(256)));
    pipeline.build_models(&[Workload::Sylv]);

    println!("sylv: L X + X U = C with n = {n}, block size {b}\n");
    println!(
        "{:<12}{:>12}{:>16}{:>16}{:>12}",
        "variant", "gemm-rich", "predicted eff", "measured eff", "group"
    );

    let ranking = pipeline.rank_sylv(n, b).expect("models cover the workload");
    let best_predicted = ranking[0].1.median;
    for (variant, prediction) in &ranking {
        let measured = pipeline.measure_sylv(*variant, n, b, MeasurementMode::Auto);
        let group = if prediction.median > 0.5 * best_predicted {
            "fast"
        } else {
            "slow"
        };
        println!(
            "{:<12}{:>12}{:>16.3}{:>16.3}{:>12}",
            variant.name(),
            variant.is_gemm_rich(),
            prediction.median,
            measured.efficiency,
            group
        );
    }

    let predicted_fast: Vec<usize> = ranking.iter().take(4).map(|(v, _)| v.id()).collect();
    let expected_fast: Vec<usize> = SylvVariant::all()
        .into_iter()
        .filter(|v| v.is_gemm_rich())
        .map(|v| v.id())
        .collect();
    println!("\npredicted top-4 variants: {predicted_fast:?}");
    println!("GEMM-rich (expected fast) variants: {expected_fast:?}");
}
