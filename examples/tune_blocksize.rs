//! Block-size tuning (paper Section IV-A2): use the performance models to find
//! the best algorithmic block size for a triangular-inversion variant, then
//! check the choice against simulated executions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tune_blocksize [n]
//! ```

use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, TrinvVariant, Workload};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);

    let mut pipeline =
        Pipeline::new(harpertown_openblas()).with_model_config(ModelSetConfig::quick(n.max(256)));
    pipeline.build_models(&[Workload::Trinv]);

    let candidates: Vec<usize> = (1..=32).map(|i| i * 8).collect();
    println!("block-size tuning for n = {n} (candidates 8..256)\n");
    println!(
        "{:<12}{:>14}{:>18}{:>16}",
        "variant", "predicted b*", "predicted eff", "measured eff"
    );
    for variant in TrinvVariant::ALL {
        let sweep = pipeline
            .tune_trinv_block_size(variant, n, &candidates)
            .expect("models cover the workload");
        let best_b = sweep.best_block_size().unwrap_or(0);
        let best_eff = sweep.best_efficiency().unwrap_or(0.0);
        let measured = pipeline.measure_trinv(variant, n, best_b.max(8), MeasurementMode::Auto);
        println!(
            "{:<12}{:>14}{:>18.3}{:>16.3}",
            variant.name(),
            best_b,
            best_eff,
            measured.efficiency
        );
    }

    // Show the full predicted curve for the fastest variant.
    let sweep = pipeline
        .tune_trinv_block_size(TrinvVariant::V3, n, &candidates)
        .expect("models cover the workload");
    println!("\npredicted efficiency of variant 3 as a function of the block size:");
    for (b, eff) in &sweep.candidates {
        let bar_len = (eff.median * 60.0).round() as usize;
        println!("  b = {b:>4}  {:>6.3}  {}", eff.median, "#".repeat(bar_len));
    }
}
