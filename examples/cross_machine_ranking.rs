//! Cross-architecture ranking (paper Sections IV-A3 and IV-A4): the same four
//! triangular-inversion variants are ranked on three different environments —
//! one Harpertown core, one Sandy Bridge core and all eight Sandy Bridge cores
//! with a multithreaded BLAS — and the best variant changes with the
//! environment, exactly as the paper observes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cross_machine_ranking
//! ```

use dlaperf::machine::presets::{
    harpertown_openblas, sandy_bridge_openblas, sandy_bridge_openblas_threaded,
};
use dlaperf::machine::MachineConfig;
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, Workload};

fn rank_on(machine: MachineConfig, n: usize, b: usize) {
    println!("== {} ==", machine.id());
    let mut pipeline = Pipeline::new(machine).with_model_config(ModelSetConfig::quick(n.max(256)));
    pipeline.build_models(&[Workload::Trinv]);
    let ranking = pipeline
        .rank_trinv(n, b)
        .expect("models cover the workload");
    println!(
        "{:<12}{:>16}{:>16}",
        "variant", "predicted eff", "measured eff"
    );
    for (variant, prediction) in &ranking {
        let measured = pipeline.measure_trinv(*variant, n, b, MeasurementMode::Auto);
        println!(
            "{:<12}{:>16.3}{:>16.3}",
            variant.name(),
            prediction.median,
            measured.efficiency
        );
    }
    println!("predicted best: {}\n", ranking[0].0.name());
}

fn main() {
    let n = 768;
    let b = 96;
    println!("ranking the trinv variants for n = {n}, block size {b}\n");
    rank_on(harpertown_openblas(), n, b);
    rank_on(sandy_bridge_openblas(), n, b);
    rank_on(sandy_bridge_openblas_threaded(), n, b);
}
