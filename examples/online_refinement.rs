//! Online adaptive refinement: close the loop from serving telemetry back to
//! the Sampler on a machine that drifted after the models were built.
//!
//! The flow (telemetry → report → targeted refine → hot swap):
//!
//! 1. build models offline on the simulated Harpertown machine;
//! 2. let the machine *drift* (same identity, slower kernels — think library
//!    update or a noisy neighbour) so the served predictions go stale;
//! 3. serve prediction traffic through the [`ModelService`] — its per-region
//!    telemetry counts which `(routine, flags, region)` cells answer;
//! 4. ask for a `refinement_report()` (cells ranked by `queries × fit_error`)
//!    and hand it to an [`OnlineRefiner`] measuring the *drifted* machine;
//! 5. the refiner re-samples only the offending regions within a sample
//!    budget and returns a delta repository, which the service publishes via
//!    its submodel-granular hot-swap merge — serving never stops.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_refinement
//! ```

use std::time::Instant;

use dlaperf::blas::{Diag, Side, Trans, Uplo};
use dlaperf::machine::cost::estimate_ticks;
use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::machine::SimExecutor;
use dlaperf::modeler::online::dedupe_templates;
use dlaperf::modeler::{OnlineRefiner, OnlineRefinerConfig, RefinementConfig};
use dlaperf::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dlaperf::{Call, Locality, MachineConfig, ModelService, Workload};

/// The post-drift machine: identical id, degraded kernels.
fn drifted(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.blas.gemm.peak_efficiency *= 0.55;
    m.blas.trsm.peak_efficiency *= 0.62;
    m.blas.trmm.peak_efficiency *= 0.58;
    m.blas.trsm.half_dim *= 1.8;
    m.blas.trtri_unb.peak_efficiency *= 0.7;
    m
}

/// The served traffic: a mix of trsm/trmm/gemm calls inside the model space.
fn traffic() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [24usize, 64, 120, 176, 232] {
        for n in [24usize, 72, 136, 200, 248] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::trmm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
        }
    }
    for m in [32usize, 96, 160, 224] {
        for n in [40usize, 104, 168, 240] {
            for k in [16usize, 64, 112] {
                calls.push(Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    m,
                    n,
                    k,
                    1.0,
                    1.0,
                ));
            }
        }
    }
    calls
}

fn mean_error(service: &ModelService, truth: &MachineConfig, calls: &[Call]) -> f64 {
    let mut acc = 0.0;
    for call in calls {
        let predicted = service.predict_call(call).expect("prediction").median;
        let actual = estimate_ticks(truth, call, Locality::InCache);
        acc += (predicted - actual).abs() / actual;
    }
    acc / calls.len() as f64
}

fn main() {
    let machine = harpertown_openblas();
    println!("machine: {}", machine.id());

    // 1. Offline build on the pre-drift machine.
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let service = ModelService::new(repo, machine.clone(), Locality::InCache);

    // 2. The machine drifts.
    let drifted_machine = drifted(&machine);
    assert_eq!(machine.id(), drifted_machine.id());
    println!("machine drifted: kernels now run 40-45% slower than modelled");

    // 3. Serve traffic; telemetry accumulates per answering region.
    let calls = traffic();
    let error_before = mean_error(&service, &drifted_machine, &calls);
    println!(
        "served {} predictions; mean error vs drifted machine: {:.1}%",
        calls.len(),
        100.0 * error_before
    );

    // 4. The refinement report ranks the served cells by queries x fit_error.
    let report = service.refinement_report();
    println!(
        "refinement report: {} hot cells over {} queries (generation {})",
        report.cells.len(),
        report.total_queries,
        report.generation
    );
    for cell in report.top(3) {
        println!(
            "  hot: {} flags {:?} region {} (error {:.3}, {} queries)",
            cell.routine, cell.flags, cell.region, cell.fit_error, cell.queries
        );
    }

    // 5. Targeted refinement on the *drifted* machine, then hot-swap publish.
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let mut refiner = OnlineRefiner::new(
        SimExecutor::new(drifted_machine.clone(), 0xd41f7),
        Locality::InCache,
        3,
        OnlineRefinerConfig {
            fit: RefinementConfig {
                error_bound: 0.10,
                min_region_size: 64,
                grid_per_dim: 4,
                degree: 2,
            },
            sample_budget: 4096,
            max_cells: 256,
            min_queries: 1,
            ..Default::default()
        },
    )
    .with_templates(&dedupe_templates(&templates));

    let refine_start = Instant::now();
    let snapshot = service.snapshot();
    let (delta, outcome) = refiner.refine(&snapshot, &report);
    let refine_time = refine_start.elapsed();
    let swap_start = Instant::now();
    service.merge(delta).unwrap();
    let swap_time = swap_start.elapsed();
    println!(
        "refined {} cells ({} regions -> {} regions, {} samples) in {:.1?}; \
         merge + hot swap in {:.1?}",
        outcome.cells_refined,
        outcome.regions_rebuilt,
        outcome.regions_added,
        outcome.samples_used,
        refine_time,
        swap_time
    );

    // The served predictions track the drifted machine again.
    let error_after = mean_error(&service, &drifted_machine, &calls);
    println!(
        "mean error vs drifted machine after refinement: {:.1}% ({:.1}x better)",
        100.0 * error_after,
        error_before / error_after
    );
    assert!(
        error_after * 2.0 <= error_before,
        "online refinement must reduce the mean prediction error at least 2x \
         (before {error_before}, after {error_after})"
    );
    println!("online refinement loop closed: telemetry -> report -> refine -> hot swap");
}
