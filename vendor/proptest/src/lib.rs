//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest's API the workspace tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name(arg in strategy, ..)` test functions,
//! * [`Strategy`] implementations for half-open numeric ranges,
//! * [`collection::vec`] for vectors of a strategy,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! database: each test draws `cases` deterministic pseudo-random inputs
//! (seeded per test name) and fails with the offending case's values.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use core::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic source of randomness handed to strategies.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator seeded from the test name, so every test has a stable but
    /// distinct input stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw from a half-open range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.0.gen_range(range)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategies producing collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `len` (half-open, like proptest's size ranges).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Re-exports mirroring `proptest::test_runner`.
pub mod test_runner {
    pub use super::ProptestConfig;
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::collection;
    pub use super::{ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the enclosing property (with the current case reported) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }` item
/// becomes a `#[test]` that checks the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(::core::stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = result {
                    ::core::panic!(
                        "property `{}` failed on case {case} with inputs {}: {message}",
                        ::core::stringify!($name),
                        ::std::format!(
                            ::core::concat!($("  ", ::core::stringify!($arg), " = {:?}"),+),
                            $($arg),+
                        ),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges produce in-range values.
        #[test]
        fn ranges_in_bounds(x in 0u64..10, y in 1usize..4, z in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&y), "y out of range: {y}");
            prop_assert!((-1.0..1.0).contains(&z));
        }

        /// Vector strategies respect the length range.
        #[test]
        fn vec_lengths(values in collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&values.len()));
            prop_assert_eq!(values.iter().filter(|v| **v >= 1.0).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
