//! Model-thread creation: a stand-in for [`std::thread::spawn`]/`join`.
//!
//! Inside a model, spawned closures run on real OS threads but are serialized
//! by the scheduler — a freshly spawned thread parks until the DFS schedules
//! it, and `spawn`/`join` are themselves yield points.  Outside a model this
//! is plain [`std::thread`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc as StdArc;

use crate::exec::{self, Aborted, Scheduler};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        handle: std::thread::JoinHandle<Option<T>>,
        sched: StdArc<Scheduler>,
        child: usize,
    },
}

/// Handle to a spawned thread; join it to retrieve the closure's result.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.  Inside a
    /// model, blocking here is a scheduling decision like any other; a
    /// panicked child aborts the whole execution before `join` can observe
    /// it, so the `Err` branch is only reachable outside models.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(handle) => handle.join(),
            Inner::Model {
                handle,
                sched,
                child,
            } => {
                if let Some((_, me)) = exec::context() {
                    sched.join_thread(me, child);
                }
                match handle.join() {
                    Ok(Some(value)) => Ok(value),
                    Ok(None) => Err(Box::new("model thread panicked".to_string())
                        as Box<dyn std::any::Any + Send>),
                    Err(payload) => Err(payload),
                }
            }
        }
    }
}

/// Spawns a thread.  Inside a model the new thread becomes part of the
/// explored schedule; outside it is an ordinary [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::context() {
        Some((sched, me)) => {
            let child = sched.register_thread(me);
            let thread_sched = StdArc::clone(&sched);
            let handle = std::thread::spawn(move || {
                exec::set_context(Some((StdArc::clone(&thread_sched), child)));
                // Park until scheduled, run the closure, and always report
                // back — the whole body is inside catch_unwind so an abort
                // while parked still reaches thread_finished (otherwise the
                // execution's bookkeeping would hang waiting for us).
                let result = catch_unwind(AssertUnwindSafe(|| {
                    thread_sched.thread_started(child);
                    f()
                }));
                match result {
                    Ok(value) => {
                        thread_sched.thread_finished(child, None);
                        Some(value)
                    }
                    Err(payload) => {
                        if payload.is::<Aborted>() {
                            thread_sched.thread_finished(child, None);
                        } else {
                            thread_sched.thread_finished(
                                child,
                                Some(exec::panic_message(payload.as_ref())),
                            );
                        }
                        None
                    }
                }
            });
            // The spawn itself is a branch point: the child may run first.
            sched.yield_point(me);
            JoinHandle(Inner::Model {
                handle,
                sched,
                child,
            })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// A bare scheduling point: lets the DFS switch threads here.  Outside a
/// model it is [`std::thread::yield_now`].
pub fn yield_now() {
    match exec::context() {
        Some((sched, me)) => sched.yield_point(me),
        None => std::thread::yield_now(),
    }
}
