//! Shim concurrency primitives.
//!
//! Inside a [`crate::model`]/[`crate::check`] execution every operation on
//! these types is a scheduler yield point (and, for atomics, a weak-memory
//! visibility decision).  Outside a model each type transparently falls back
//! to the real `std::sync` primitive, so code routed through a cfg-switched
//! facade keeps working in ordinary (non-model) tests.
//!
//! The lock types deliberately do **not** expose poisoning: inside a model a
//! panic aborts the whole execution anyway, and the `dla_sync` facade's
//! policy is poison recovery, so `read`/`write`/`lock` return guards
//! directly.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::{Arc as StdArc, Mutex as StdMutex, PoisonError, TryLockError};

use crate::exec::{self, Scheduler};

/// Mirror of the `std::sync::atomic` module shape: the [`Ordering`] enum plus
/// the shim atomic types, so facade code can `use ...::atomic::Ordering`
/// identically under both cfgs.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    pub use super::{AtomicBool, AtomicU64, AtomicUsize};
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Registration of a shim object with the current execution.  Scheduler ids
/// are per-execution, so the cached id is keyed by the execution serial; a
/// serial of 0 never matches (executions start at 1), making a fresh object
/// unregistered.
#[derive(Default)]
struct Reg {
    serial: u64,
    id: usize,
}

impl Reg {
    /// Returns the cached id, re-registering via `register` when this object
    /// has not been seen by the current execution yet.
    fn resolve(cell: &StdMutex<Reg>, sched: &Scheduler, register: impl FnOnce() -> usize) -> usize {
        let mut reg = recover(cell.lock());
        let serial = sched.current_serial();
        if reg.serial != serial {
            reg.serial = serial;
            reg.id = register();
        }
        reg.id
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// The common machinery behind the shim atomics: a `u64`-valued model
/// variable plus the real atomic used outside models (and as the initial
/// value on registration).
struct VarCell {
    fallback: std::sync::atomic::AtomicU64,
    reg: StdMutex<Reg>,
}

impl VarCell {
    fn new(value: u64) -> VarCell {
        VarCell {
            fallback: std::sync::atomic::AtomicU64::new(value),
            reg: StdMutex::new(Reg::default()),
        }
    }

    fn var(&self, sched: &Scheduler) -> usize {
        Reg::resolve(&self.reg, sched, || {
            sched.register_var(self.fallback.load(Ordering::Relaxed))
        })
    }

    fn load(&self, order: Ordering) -> u64 {
        match exec::context() {
            Some((sched, me)) => {
                let var = self.var(&sched);
                sched.atomic_load(me, var, is_acquire(order))
            }
            None => self.fallback.load(order),
        }
    }

    fn store(&self, value: u64, order: Ordering) {
        match exec::context() {
            Some((sched, me)) => {
                let var = self.var(&sched);
                sched.atomic_store(me, var, value, is_release(order));
            }
            None => self.fallback.store(value, order),
        }
    }

    /// Read-modify-write; returns the previous value.  The fallback closure
    /// runs when outside a model.
    fn rmw(
        &self,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
        fallback: impl FnOnce(&std::sync::atomic::AtomicU64) -> u64,
    ) -> u64 {
        match exec::context() {
            Some((sched, me)) => {
                let var = self.var(&sched);
                sched.atomic_rmw(me, var, f, is_acquire(order), is_release(order))
            }
            None => fallback(&self.fallback),
        }
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match exec::context() {
            Some((sched, me)) => {
                let var = self.var(&sched);
                sched.atomic_compare_exchange(
                    me,
                    var,
                    current,
                    new,
                    is_acquire(success),
                    is_acquire(failure),
                    is_release(success),
                )
            }
            None => self
                .fallback
                .compare_exchange(current, new, success, failure),
        }
    }
}

/// Model-checked stand-in for [`std::sync::atomic::AtomicU64`].
pub struct AtomicU64 {
    cell: VarCell,
}

// Opaque Debug impls: formatting must not become a yield point (types are
// embedded in `#[derive(Debug)]` structs), so no value is read.
impl std::fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AtomicU64(..)")
    }
}

impl std::fmt::Debug for AtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AtomicUsize(..)")
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AtomicBool(..)")
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex(..)")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl AtomicU64 {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: u64) -> AtomicU64 {
        AtomicU64 {
            cell: VarCell::new(value),
        }
    }

    /// Loads the value; inside a model the read may observe any store that
    /// coherence and happens-before allow.
    pub fn load(&self, order: Ordering) -> u64 {
        self.cell.load(order)
    }

    /// Stores a value.
    pub fn store(&self, value: u64, order: Ordering) {
        self.cell.store(value, order)
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        self.cell.rmw(order, |_| value, |a| a.swap(value, order))
    }

    /// Atomically adds (wrapping), returning the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.cell.rmw(
            order,
            |old| old.wrapping_add(value),
            |a| a.fetch_add(value, order),
        )
    }

    /// Atomically subtracts (wrapping), returning the previous value.
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        self.cell.rmw(
            order,
            |old| old.wrapping_sub(value),
            |a| a.fetch_sub(value, order),
        )
    }

    /// Atomically stores the maximum of the current and given value,
    /// returning the previous value.
    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        self.cell
            .rmw(order, |old| old.max(value), |a| a.fetch_max(value, order))
    }

    /// Atomically compares and (on equality) exchanges the value.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.cell.compare_exchange(current, new, success, failure)
    }

    /// Like [`AtomicU64::compare_exchange`].  The model never fails
    /// spuriously, so retry loops written against `_weak` explore a subset of
    /// real behaviours (documented approximation).
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.cell.compare_exchange(current, new, success, failure)
    }
}

/// Model-checked stand-in for [`std::sync::atomic::AtomicUsize`].
pub struct AtomicUsize {
    cell: VarCell,
}

impl AtomicUsize {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: usize) -> AtomicUsize {
        AtomicUsize {
            cell: VarCell::new(value as u64),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> usize {
        self.cell.load(order) as usize
    }

    /// Stores a value.
    pub fn store(&self, value: usize, order: Ordering) {
        self.cell.store(value as u64, order)
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: usize, order: Ordering) -> usize {
        self.cell
            .rmw(order, |_| value as u64, |a| a.swap(value as u64, order)) as usize
    }

    /// Atomically adds (wrapping), returning the previous value.
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.cell.rmw(
            order,
            |old| old.wrapping_add(value as u64),
            |a| a.fetch_add(value as u64, order),
        ) as usize
    }

    /// Atomically subtracts (wrapping), returning the previous value.
    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        self.cell.rmw(
            order,
            |old| old.wrapping_sub(value as u64),
            |a| a.fetch_sub(value as u64, order),
        ) as usize
    }

    /// Atomically compares and (on equality) exchanges the value.
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.cell
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

/// Model-checked stand-in for [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    cell: VarCell,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: bool) -> AtomicBool {
        AtomicBool {
            cell: VarCell::new(u64::from(value)),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> bool {
        self.cell.load(order) != 0
    }

    /// Stores a value.
    pub fn store(&self, value: bool, order: Ordering) {
        self.cell.store(u64::from(value), order)
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.cell.rmw(
            order,
            |_| u64::from(value),
            |a| a.swap(u64::from(value), order),
        ) != 0
    }
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

/// Model-checked stand-in for [`std::sync::RwLock`].  Non-poisoning by
/// design: see the module docs.
pub struct RwLock<T: ?Sized> {
    reg: StdMutex<Reg>,
    data: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            reg: StdMutex::new(Reg::default()),
            data: std::sync::RwLock::new(value),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    fn lock_id(&self, sched: &Scheduler) -> usize {
        Reg::resolve(&self.reg, sched, || sched.register_lock())
    }

    /// Acquires shared read access, blocking the model thread while a writer
    /// holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match exec::context() {
            Some((sched, me)) => {
                let id = self.lock_id(&sched);
                sched.lock_acquire(me, id, false);
                let inner = match self.data.try_read() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        panic!("interleave: scheduler admitted a reader but the lock is busy")
                    }
                };
                RwLockReadGuard {
                    inner: Some(inner),
                    release: Some((sched, me, id)),
                }
            }
            None => RwLockReadGuard {
                inner: Some(recover(self.data.read())),
                release: None,
            },
        }
    }

    /// Acquires exclusive write access, blocking the model thread while any
    /// other thread holds the lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match exec::context() {
            Some((sched, me)) => {
                let id = self.lock_id(&sched);
                sched.lock_acquire(me, id, true);
                let inner = match self.data.try_write() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        panic!("interleave: scheduler admitted a writer but the lock is busy")
                    }
                };
                RwLockWriteGuard {
                    inner: Some(inner),
                    release: Some((sched, me, id)),
                }
            }
            None => RwLockWriteGuard {
                inner: Some(recover(self.data.write())),
                release: None,
            },
        }
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    release: Option<(StdArc<Scheduler>, usize, usize)>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // The std guard must go first so a reader/writer admitted by the
        // scheduler in lock_release finds the inner lock free.
        drop(self.inner.take());
        if let Some((sched, me, id)) = self.release.take() {
            sched.lock_release(me, id, false);
        }
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    release: Option<(StdArc<Scheduler>, usize, usize)>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, me, id)) = self.release.take() {
            sched.lock_release(me, id, true);
        }
    }
}

/// Model-checked stand-in for [`std::sync::Mutex`].  Non-poisoning by
/// design: see the module docs.
pub struct Mutex<T: ?Sized> {
    reg: StdMutex<Reg>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            reg: StdMutex::new(Reg::default()),
            data: StdMutex::new(value),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking the model thread while another thread
    /// holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match exec::context() {
            Some((sched, me)) => {
                let id = Reg::resolve(&self.reg, &sched, || sched.register_lock());
                sched.lock_acquire(me, id, true);
                let inner = match self.data.try_lock() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => {
                        panic!("interleave: scheduler admitted a locker but the mutex is busy")
                    }
                };
                MutexGuard {
                    inner: Some(inner),
                    release: Some((sched, me, id)),
                }
            }
            None => MutexGuard {
                inner: Some(recover(self.data.lock())),
                release: None,
            },
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    release: Option<(StdArc<Scheduler>, usize, usize)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, me, id)) = self.release.take() {
            sched.lock_release(me, id, true);
        }
    }
}

// ---------------------------------------------------------------------------
// Arc
// ---------------------------------------------------------------------------

/// Stand-in for [`std::sync::Arc`] whose clone and drop are scheduler yield
/// points, so reference-count races (a handle dropped concurrently with a
/// clone) are part of the explored schedules.
pub struct Arc<T: ?Sized>(StdArc<T>);

impl<T> Arc<T> {
    /// Creates a new reference-counted value.
    pub fn new(value: T) -> Arc<T> {
        Arc(StdArc::new(value))
    }
}

impl<T: ?Sized> Arc<T> {
    /// The number of live handles, as in [`std::sync::Arc::strong_count`].
    pub fn strong_count(this: &Arc<T>) -> usize {
        StdArc::strong_count(&this.0)
    }
}

fn arc_yield() {
    if let Some((sched, me)) = exec::context() {
        sched.yield_point(me);
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Arc<T> {
        arc_yield();
        Arc(StdArc::clone(&self.0))
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        // yield_point itself is a no-op while unwinding, so dropping handles
        // during an aborted execution cannot double-panic.
        arc_yield();
    }
}

impl<T: ?Sized> Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}
