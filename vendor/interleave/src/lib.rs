//! # interleave
//!
//! An offline, std-only, loom-style concurrency model checker, vendored the
//! same way as the `rand`/`proptest` stand-ins (no registry access in the
//! build environment).
//!
//! The checker runs a closure — the *model* — many times, exploring a
//! different thread interleaving on every run.  Threads created through
//! [`thread::spawn`] are real OS threads, but they are **serialized**: a
//! deterministic scheduler lets exactly one thread run at a time and takes a
//! branching decision at every *yield point* — each operation on the shim
//! [`sync`] types (atomics, locks, `Arc` clone/drop, spawn/join).  A
//! depth-first search over those decisions enumerates every interleaving up
//! to a configurable preemption bound ([`Config::max_preemptions`]; bounding
//! follows the same argument as loom/CHESS — almost all concurrency bugs
//! manifest within two or three preemptions).
//!
//! ## Weak memory
//!
//! Atomics are modelled with per-variable store histories and vector clocks,
//! so the checker explores *stale reads*, not just interleavings:
//!
//! * every store is recorded with the writing thread's vector clock; a
//!   `Release` store additionally attaches the clock as a *release* clock
//!   (read-modify-writes propagate the release clock of the store they
//!   replace, modelling release sequences);
//! * a load may read **any** store that per-thread coherence and
//!   happens-before do not forbid — if several qualify, the choice is a DFS
//!   branch point;
//! * an `Acquire` load that reads a store with a release clock joins that
//!   clock (synchronizes-with), which is what makes later loads of *other*
//!   variables see the writer's earlier stores.
//!
//! `SeqCst` is approximated as `AcqRel`: the checker does not build the
//! single total order, so it explores a *superset* of sequentially consistent
//! behaviours.  It can therefore report a violation that real `SeqCst`
//! hardware would forbid, but it never misses one — the safe direction for a
//! checker.  (None of the checked code in this repository uses `SeqCst`.)
//!
//! Locks ([`sync::RwLock`], [`sync::Mutex`]) are modelled as scheduler
//! bookkeeping: an unavailable lock blocks the thread (it is removed from the
//! runnable set until the holder releases), and acquire/release edges join
//! vector clocks.  Blocked cycles are reported as deadlocks.
//!
//! ## Using it
//!
//! ```
//! use interleave::sync::atomic::Ordering;
//! use interleave::sync::{Arc, AtomicU64};
//!
//! interleave::model(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let a2 = Arc::clone(&a);
//!     let t = interleave::thread::spawn(move || {
//!         a2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     a.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! [`model`] panics (with the number of the failing execution) as soon as any
//! interleaving panics or deadlocks; [`check`] returns the [`Outcome`]
//! instead, which is what *test-of-the-tool* tests use to assert that a
//! seeded bug **is** found.
//!
//! ## Outside a model
//!
//! Every shim type falls back to the real `std` primitive when used outside
//! [`model`]/[`check`].  This matters because the workspace routes its
//! concurrency primitives through the `dla_sync` facade
//! (`dla_model::sync`), which re-exports these shims under
//! `--cfg interleave`: the ordinary (non-model) tests keep running correctly
//! under that cfg, while model tests get the checked semantics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{check, check_with, model, model_with, Config, Outcome, Violation, ViolationKind};
