//! The execution engine: deterministic DFS scheduler, vector clocks, and the
//! weak-memory store model.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Marker panic payload used to unwind threads of an aborted execution (after
/// a violation was recorded).  Never reported as a violation itself.
pub(crate) struct Aborted;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum number of *preemptive* context switches per execution (a
    /// switch away from a thread that could have continued).  Forced switches
    /// — the running thread blocked or finished — are always free.  Bound 2
    /// is the loom/CHESS default: it keeps exploration polynomial while
    /// catching almost all real interleaving bugs.
    pub max_preemptions: u32,
    /// Hard cap on explored executions; exploration stops (and is reported as
    /// truncated) when it is reached.
    pub max_executions: usize,
    /// Maximum number of model threads alive in one execution.
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_preemptions: 2,
            max_executions: 200_000,
            max_threads: 8,
        }
    }
}

/// What went wrong in a failing interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A model thread panicked (failed assertion, explicit panic, ...).
    Panic,
    /// No thread was runnable but not all threads had finished.
    Deadlock,
}

/// A failing interleaving found by the checker.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Panic or deadlock.
    pub kind: ViolationKind,
    /// The panic message, or a description of the deadlock.
    pub message: String,
    /// 1-based index of the failing execution (how deep into the DFS it was).
    pub execution: usize,
    /// The decision path of the failing execution: `(options, chosen)` per
    /// branch point, for reproducing the schedule by hand.
    pub path: Vec<(u32, u32)>,
}

/// The result of exploring a model.
#[derive(Debug)]
pub struct Outcome {
    /// Number of executions (interleavings) explored.
    pub executions: usize,
    /// The first violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// `true` when [`Config::max_executions`] stopped exploration before the
    /// bounded search space was exhausted.
    pub truncated: bool,
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A per-thread vector clock; component `t` counts thread `t`'s events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }

    /// `self` happened-before-or-equals `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for a lock (by registered lock id).
    BlockedLock(usize),
    /// Waiting for a thread to finish (by thread id).
    BlockedJoin(usize),
    Finished,
}

struct ThreadCell {
    status: Status,
    clock: VClock,
}

#[derive(Default)]
struct LockState {
    readers: usize,
    writer: bool,
    /// Join of the clocks of all releases so far; acquirers join it
    /// (models release->acquire synchronization of the lock).
    release_clock: VClock,
}

struct Store {
    value: u64,
    /// The writing thread's clock at the store (for coherence/happens-before
    /// visibility decisions).
    writer: VClock,
    /// Present on `Release` (and stronger) stores: the clock an `Acquire`
    /// load of this store synchronizes with.  RMWs inherit the clock of the
    /// store they replace when they are not themselves releasing (release
    /// sequences).
    release: Option<VClock>,
}

struct VarState {
    stores: Vec<Store>,
    /// Per thread: index of the newest store this thread has observed (reads
    /// may never go backwards in modification order).
    last_seen: Vec<usize>,
}

/// One branch point of the DFS: how many options there were and which one
/// this execution took.
#[derive(Debug, Clone, Copy)]
struct ChoicePoint {
    options: u32,
    chosen: u32,
}

struct Inner {
    config: Config,
    // -- persistent across executions (the DFS frontier) --
    path: Vec<ChoicePoint>,
    cursor: usize,
    serial: u64,
    // -- per-execution --
    threads: Vec<ThreadCell>,
    active: usize,
    preemptions: u32,
    finished: usize,
    abort: bool,
    violation: Option<Violation>,
    execution: usize,
    locks: Vec<LockState>,
    vars: Vec<VarState>,
}

impl Inner {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Takes (replaying) or records (exploring) the next DFS decision.
    fn choose(&mut self, options: u32) -> u32 {
        debug_assert!(options >= 1);
        if self.cursor < self.path.len() {
            let p = self.path[self.cursor];
            assert_eq!(
                p.options, options,
                "interleave: non-deterministic model: branch point {} had {} options on a \
                 previous execution but {} now; the model closure must be deterministic \
                 apart from scheduling",
                self.cursor, p.options, options
            );
            self.cursor += 1;
            p.chosen
        } else {
            self.path.push(ChoicePoint { options, chosen: 0 });
            self.cursor += 1;
            0
        }
    }

    fn record_violation(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind,
                message,
                execution: self.execution,
                path: self.path[..self.cursor]
                    .iter()
                    .map(|p| (p.options, p.chosen))
                    .collect(),
            });
        }
        self.abort = true;
    }

    /// Picks the next thread to run after `me` yielded/blocked/finished and
    /// publishes it as `active`.  `forced` means `me` cannot continue, so a
    /// switch is not charged as a preemption.
    fn pick_next(&mut self, me: usize, forced: bool) {
        let runnable = self.runnable();
        if runnable.is_empty() {
            if self.finished == self.threads.len() {
                // Execution complete; nothing to schedule.
                return;
            }
            let blocked: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(i, t)| format!("thread {i} {:?}", t.status))
                .collect();
            self.record_violation(
                ViolationKind::Deadlock,
                format!("deadlock: no runnable thread ({})", blocked.join(", ")),
            );
            return;
        }
        let can_continue = !forced && runnable.contains(&me);
        let chosen = if can_continue && self.preemptions >= self.config.max_preemptions {
            // Preemption budget spent: the running thread keeps running.
            me
        } else if can_continue {
            // `me` first, so choice 0 (the DFS's first probe) is "no switch".
            let mut options = vec![me];
            options.extend(runnable.iter().copied().filter(|&t| t != me));
            let i = self.choose(options.len() as u32);
            options[i as usize]
        } else {
            let i = self.choose(runnable.len() as u32);
            runnable[i as usize]
        };
        if can_continue && chosen != me {
            self.preemptions += 1;
        }
        self.active = chosen;
    }

    /// Backtracks the DFS path to the next unexplored branch; `false` when
    /// the whole (bounded) space is exhausted.
    fn advance_path(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.chosen + 1 < last.options {
                last.chosen += 1;
                return true;
            }
            self.path.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking model thread may poison the scheduler mutex while holding
    // it at a branch point; the state itself is always left consistent, so
    // recover instead of cascading panics through every other thread.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    fn new(config: Config) -> Scheduler {
        Scheduler {
            inner: Mutex::new(Inner {
                config,
                path: Vec::new(),
                cursor: 0,
                serial: 0,
                threads: Vec::new(),
                active: 0,
                preemptions: 0,
                finished: 0,
                abort: false,
                violation: None,
                execution: 0,
                locks: Vec::new(),
                vars: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn begin_execution(&self) {
        let mut g = lock_recover(&self.inner);
        g.serial += 1;
        g.execution += 1;
        g.cursor = 0;
        g.threads = vec![ThreadCell {
            status: Status::Runnable,
            clock: VClock::default(),
        }];
        g.active = 0;
        g.preemptions = 0;
        g.finished = 0;
        g.abort = false;
        g.locks = Vec::new();
        g.vars = Vec::new();
    }

    pub(crate) fn current_serial(&self) -> u64 {
        lock_recover(&self.inner).serial
    }

    /// Blocks until it is `me`'s turn to run.  Panics with [`Aborted`] when
    /// the execution was aborted (a violation was recorded elsewhere).
    fn wait_for_turn<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        me: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(Aborted);
            }
            if g.active == me && g.threads[me].status == Status::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The per-operation branch point: decides who runs the next step.
    pub(crate) fn yield_point(&self, me: usize) {
        if std::thread::panicking() {
            // Called from a destructor during unwinding (e.g. an `Arc` shim
            // dropped by a failing assertion): do not hand control away from
            // an unwinding thread.
            return;
        }
        let mut g = lock_recover(&self.inner);
        if g.abort {
            drop(g);
            std::panic::panic_any(Aborted);
        }
        g.pick_next(me, false);
        if g.abort {
            drop(g);
            self.cv.notify_all();
            std::panic::panic_any(Aborted);
        }
        if g.active != me {
            self.cv.notify_all();
            g = self.wait_for_turn(g, me);
        }
        drop(g);
    }

    /// Marks `me` blocked, hands control to another thread, and returns when
    /// `me` is scheduled again (after someone made it runnable).
    fn block(&self, me: usize, status: Status) {
        let mut g = lock_recover(&self.inner);
        g.threads[me].status = status;
        g.pick_next(me, true);
        if g.abort {
            drop(g);
            self.cv.notify_all();
            std::panic::panic_any(Aborted);
        }
        self.cv.notify_all();
        g = self.wait_for_turn(g, me);
        drop(g);
    }

    fn wake_lock_waiters(g: &mut Inner, lock: usize) {
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedLock(lock) {
                t.status = Status::Runnable;
            }
        }
    }

    // -- threads ----------------------------------------------------------

    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut g = lock_recover(&self.inner);
        assert!(
            g.threads.len() < g.config.max_threads,
            "interleave: more than max_threads ({}) threads in one execution",
            g.config.max_threads
        );
        // Spawn happens-before the child's first step.
        let mut clock = g.threads[parent].clock.clone();
        let id = g.threads.len();
        clock.tick(id);
        for v in &mut g.vars {
            v.last_seen.push(0);
        }
        g.threads.push(ThreadCell {
            status: Status::Runnable,
            clock,
        });
        id
    }

    /// First wait of a freshly spawned thread: parks until scheduled.
    pub(crate) fn thread_started(&self, me: usize) {
        let g = lock_recover(&self.inner);
        let g = self.wait_for_turn(g, me);
        drop(g);
    }

    /// Marks `me` finished, records a violation if it panicked, wakes
    /// joiners, and schedules the next thread.
    pub(crate) fn thread_finished(&self, me: usize, panic_message: Option<String>) {
        let mut g = lock_recover(&self.inner);
        if g.threads[me].status == Status::Finished {
            return;
        }
        g.threads[me].status = Status::Finished;
        g.threads[me].clock.tick(me);
        g.finished += 1;
        if let Some(message) = panic_message {
            g.record_violation(ViolationKind::Panic, message);
        }
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Runnable;
            }
        }
        if !g.abort {
            g.pick_next(me, true);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Blocks `me` until thread `target` finishes, then joins its clock
    /// (join happens-after the child's last step).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let mut g = lock_recover(&self.inner);
            if g.threads[target].status == Status::Finished {
                let clock = g.threads[target].clock.clone();
                g.threads[me].clock.join(&clock);
                return;
            }
            drop(g);
            self.block(me, Status::BlockedJoin(target));
        }
    }

    /// Waits (from the coordinating, non-model context) until every model
    /// thread of the current execution has finished.
    fn wait_all_finished(&self) {
        let mut g = lock_recover(&self.inner);
        while g.finished < g.threads.len() {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    // -- locks ------------------------------------------------------------

    pub(crate) fn register_lock(&self) -> usize {
        let mut g = lock_recover(&self.inner);
        g.locks.push(LockState::default());
        g.locks.len() - 1
    }

    pub(crate) fn lock_acquire(&self, me: usize, lock: usize, write: bool) {
        self.yield_point(me);
        loop {
            let mut g = lock_recover(&self.inner);
            let free = if write {
                !g.locks[lock].writer && g.locks[lock].readers == 0
            } else {
                !g.locks[lock].writer
            };
            if free {
                if write {
                    g.locks[lock].writer = true;
                } else {
                    g.locks[lock].readers += 1;
                }
                let release = g.locks[lock].release_clock.clone();
                g.threads[me].clock.join(&release);
                return;
            }
            drop(g);
            self.block(me, Status::BlockedLock(lock));
        }
    }

    pub(crate) fn lock_release(&self, me: usize, lock: usize, write: bool) {
        {
            let mut g = lock_recover(&self.inner);
            g.threads[me].clock.tick(me);
            let clock = g.threads[me].clock.clone();
            g.locks[lock].release_clock.join(&clock);
            if write {
                g.locks[lock].writer = false;
            } else {
                g.locks[lock].readers -= 1;
            }
            let now_free = !g.locks[lock].writer && g.locks[lock].readers == 0;
            if now_free || !write {
                Self::wake_lock_waiters(&mut g, lock);
            }
        }
        self.cv.notify_all();
        // Releasing is a step too: give the DFS a chance to run a waiter
        // immediately (unless this release happens during unwinding).
        self.yield_point(me);
    }

    // -- atomics ----------------------------------------------------------

    pub(crate) fn register_var(&self, initial: u64) -> usize {
        let mut g = lock_recover(&self.inner);
        let threads = g.threads.len();
        g.vars.push(VarState {
            stores: vec![Store {
                value: initial,
                // The initial value happens-before everything.
                writer: VClock::default(),
                release: Some(VClock::default()),
            }],
            last_seen: vec![0; threads],
        });
        g.vars.len() - 1
    }

    /// A load: picks (as a DFS branch when several stores are eligible) the
    /// store to read under coherence + happens-before visibility.
    pub(crate) fn atomic_load(&self, me: usize, var: usize, acquire: bool) -> u64 {
        self.yield_point(me);
        let mut g = lock_recover(&self.inner);
        // Oldest store this thread may still read: not older than anything it
        // has already read of this variable, and not older than any store it
        // is aware of through happens-before.
        let mut lo = g.vars[var].last_seen[me];
        let clock = g.threads[me].clock.clone();
        for (j, s) in g.vars[var].stores.iter().enumerate().skip(lo + 1) {
            if s.writer.le(&clock) {
                lo = j;
            }
        }
        let n = g.vars[var].stores.len() - lo;
        let pick = if n > 1 {
            lo + g.choose(n as u32) as usize
        } else {
            lo
        };
        g.vars[var].last_seen[me] = pick;
        let value = g.vars[var].stores[pick].value;
        if acquire {
            if let Some(release) = g.vars[var].stores[pick].release.clone() {
                g.threads[me].clock.join(&release);
            }
        }
        value
    }

    /// A plain store: appends to the modification order.
    pub(crate) fn atomic_store(&self, me: usize, var: usize, value: u64, release: bool) {
        self.yield_point(me);
        let mut g = lock_recover(&self.inner);
        g.threads[me].clock.tick(me);
        let clock = g.threads[me].clock.clone();
        let store = Store {
            value,
            writer: clock.clone(),
            // A plain store starts a new release sequence (or none): it does
            // not carry the previous store's release clock.
            release: release.then_some(clock),
        };
        g.vars[var].stores.push(store);
        let newest = g.vars[var].stores.len() - 1;
        g.vars[var].last_seen[me] = newest;
    }

    /// A read-modify-write: atomically reads the **newest** store (RMWs never
    /// see stale values) and appends the modified value.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        var: usize,
        f: impl FnOnce(u64) -> u64,
        acquire: bool,
        release: bool,
    ) -> u64 {
        self.yield_point(me);
        let mut g = lock_recover(&self.inner);
        let newest = g.vars[var].stores.len() - 1;
        let old = g.vars[var].stores[newest].value;
        let prior_release = g.vars[var].stores[newest].release.clone();
        if acquire {
            if let Some(release_clock) = &prior_release {
                g.threads[me].clock.join(release_clock);
            }
        }
        g.threads[me].clock.tick(me);
        let clock = g.threads[me].clock.clone();
        let store = Store {
            value: f(old),
            writer: clock.clone(),
            // An RMW continues the release sequence of the store it replaces
            // when it is not itself a release.
            release: if release { Some(clock) } else { prior_release },
        };
        g.vars[var].stores.push(store);
        let idx = g.vars[var].stores.len() - 1;
        g.vars[var].last_seen[me] = idx;
        old
    }

    /// Compare-exchange: an RMW when it succeeds, a load of the newest store
    /// when it fails.  `acq_ok`/`acq_err` are the acquire-ness of the success
    /// and failure orderings respectively.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_compare_exchange(
        &self,
        me: usize,
        var: usize,
        current: u64,
        new: u64,
        acq_ok: bool,
        acq_err: bool,
        release: bool,
    ) -> Result<u64, u64> {
        self.yield_point(me);
        let mut g = lock_recover(&self.inner);
        let newest = g.vars[var].stores.len() - 1;
        let old = g.vars[var].stores[newest].value;
        let prior_release = g.vars[var].stores[newest].release.clone();
        g.vars[var].last_seen[me] = newest;
        if old != current {
            if acq_err {
                if let Some(release_clock) = &prior_release {
                    g.threads[me].clock.join(release_clock);
                }
            }
            return Err(old);
        }
        if acq_ok {
            if let Some(release_clock) = &prior_release {
                g.threads[me].clock.join(release_clock);
            }
        }
        g.threads[me].clock.tick(me);
        let clock = g.threads[me].clock.clone();
        g.vars[var].stores.push(Store {
            value: new,
            writer: clock.clone(),
            release: if release { Some(clock) } else { prior_release },
        });
        let idx = g.vars[var].stores.len() - 1;
        g.vars[var].last_seen[me] = idx;
        Ok(old)
    }
}

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and model-thread id of the calling thread, when it runs
/// inside a model execution.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(ctx: Option<(Arc<Scheduler>, usize)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that silences the internal
/// [`Aborted`] unwind marker — it is control flow, not a failure — while
/// delegating every real panic to the previous hook so assertion messages
/// still print.
fn install_abort_filter() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Aborted>() {
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Top-level drivers
// ---------------------------------------------------------------------------

/// Explores `f` under `config` and returns the [`Outcome`] instead of
/// panicking — the entry point for tests *of the checker itself* (asserting
/// that a seeded bug is found).
pub fn check_with<F: Fn()>(config: Config, f: F) -> Outcome {
    assert!(
        context().is_none(),
        "interleave: nested model executions are not supported"
    );
    install_abort_filter();
    let sched = Arc::new(Scheduler::new(config));
    let mut executions = 0usize;
    loop {
        executions += 1;
        sched.begin_execution();
        set_context(Some((Arc::clone(&sched), 0)));
        let result = catch_unwind(AssertUnwindSafe(&f));
        match result {
            Ok(()) => sched.thread_finished(0, None),
            Err(payload) => {
                if payload.is::<Aborted>() {
                    sched.thread_finished(0, None);
                } else {
                    sched.thread_finished(0, Some(panic_message(payload.as_ref())));
                }
            }
        }
        sched.wait_all_finished();
        set_context(None);

        let mut g = lock_recover(&sched.inner);
        if g.violation.is_some() {
            return Outcome {
                executions,
                violation: g.violation.take(),
                truncated: false,
            };
        }
        if !g.advance_path() {
            return Outcome {
                executions,
                violation: None,
                truncated: false,
            };
        }
        if executions >= g.config.max_executions {
            return Outcome {
                executions,
                violation: None,
                truncated: true,
            };
        }
    }
}

/// [`check_with`] under the default [`Config`].
pub fn check<F: Fn()>(f: F) -> Outcome {
    check_with(Config::default(), f)
}

/// Exhaustively explores `f` (bounded by `config`), panicking on the first
/// violating interleaving — the entry point for model-checked tests.
///
/// Also panics when exploration was truncated by
/// [`Config::max_executions`], because a truncated pass must not be mistaken
/// for an exhaustive one.
pub fn model_with<F: Fn()>(config: Config, f: F) {
    let outcome = check_with(config, f);
    if let Some(v) = &outcome.violation {
        panic!(
            "interleave: {:?} on execution {}/{}: {}\n  decision path: {:?}",
            v.kind, v.execution, outcome.executions, v.message, v.path
        );
    }
    assert!(
        !outcome.truncated,
        "interleave: exploration truncated after {} executions; raise max_executions \
         or reduce the model",
        outcome.executions
    );
}

/// [`model_with`] under the default [`Config`].
pub fn model<F: Fn()>(f: F) {
    model_with(Config::default(), f)
}
