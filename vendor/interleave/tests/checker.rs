//! Tests of the model checker itself: seeded bugs must be found, correct
//! protocols must pass exhaustively, and the shims must fall back to `std`
//! semantics outside a model.

use interleave::sync::atomic::Ordering;
use interleave::sync::{Arc, AtomicU64, Mutex, RwLock};
use interleave::{check, check_with, model, Config, ViolationKind};

/// Two threads doing a non-atomic read-modify-write (`load` then `store`)
/// race; the checker must find the lost update.
#[test]
fn finds_lost_update() {
    let outcome = check(|| {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        let t = interleave::thread::spawn(move || {
            let old = v2.load(Ordering::Relaxed);
            v2.store(old + 1, Ordering::Relaxed);
        });
        let old = v.load(Ordering::Relaxed);
        v.store(old + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(v.load(Ordering::Relaxed), 2, "lost update");
    });
    let v = outcome.violation.expect("lost update must be found");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("lost update"), "message: {}", v.message);
}

/// The same increment via `fetch_add` is atomic: every interleaving sums to 2.
#[test]
fn fetch_add_is_atomic() {
    model(|| {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        let t = interleave::thread::spawn(move || {
            v2.fetch_add(1, Ordering::Relaxed);
        });
        v.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(v.load(Ordering::Relaxed), 2);
    });
}

/// A mutex-protected compound update never interleaves mid-critical-section.
#[test]
fn mutex_provides_exclusion() {
    model(|| {
        let pair = Arc::new(Mutex::new((0u64, 0u64)));
        let pair2 = Arc::clone(&pair);
        let t = interleave::thread::spawn(move || {
            let mut g = pair2.lock();
            g.0 += 1;
            interleave::thread::yield_now();
            g.1 += 1;
        });
        {
            let g = pair.lock();
            assert_eq!(g.0, g.1, "observed a torn critical section");
        }
        t.join().unwrap();
    });
}

/// Classic AB-BA lock ordering inversion: reported as a deadlock, not a hang.
#[test]
fn finds_abba_deadlock() {
    let outcome = check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = interleave::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
    let v = outcome.violation.expect("AB-BA deadlock must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock);
}

/// Message passing with a `Relaxed` flag publish: the reader may observe the
/// flag without the data (a stale read) — the checker must produce that
/// weak-memory behaviour, which plain interleaving exploration cannot.
#[test]
fn finds_relaxed_publish() {
    let outcome = check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = interleave::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // BUG: should be Release
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data after flag");
        }
        t.join().unwrap();
    });
    let v = outcome.violation.expect("relaxed publish must be caught");
    assert!(v.message.contains("stale data"), "message: {}", v.message);
}

/// The corrected protocol — `Release` store, `Acquire` load — passes
/// exhaustively: observing the flag guarantees the data.
#[test]
fn release_acquire_publish_is_clean() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = interleave::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

/// An RMW participates in the release sequence: `fetch_add` on the flag does
/// not break the writer's earlier `Release` publication.
#[test]
fn rmw_preserves_release_sequence() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
        let publisher = interleave::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        let bumper = interleave::thread::spawn(move || {
            // A relaxed RMW from a third thread continues the sequence.
            f3.fetch_add(1, Ordering::Relaxed);
            drop(d3);
        });
        if flag.load(Ordering::Acquire) >= 2 {
            // Reading the RMW'd value still synchronizes with the publisher.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        publisher.join().unwrap();
        bumper.join().unwrap();
    });
}

/// Writer updates two cells under a write lock; readers always see a
/// consistent pair.
#[test]
fn rwlock_snapshots_are_consistent() {
    model(|| {
        let cells = Arc::new(RwLock::new((0u64, 0u64)));
        let c2 = Arc::clone(&cells);
        let t = interleave::thread::spawn(move || {
            let mut g = c2.write();
            g.0 = 7;
            interleave::thread::yield_now();
            g.1 = 7;
        });
        {
            let g = cells.read();
            assert_eq!(g.0, g.1, "torn read under RwLock");
        }
        t.join().unwrap();
    });
}

/// `join` returns the closure's value through the scheduler.
#[test]
fn join_returns_value() {
    model(|| {
        let t = interleave::thread::spawn(|| 7u64);
        assert_eq!(t.join().unwrap(), 7);
    });
}

/// Exploration actually branches: the lost-update model above needs more
/// than one execution, and a race-free model needs exactly one... unless it
/// spawns (spawn/join add schedule points).  Pin the straight-line case.
#[test]
fn straight_line_model_is_one_execution() {
    let outcome = check(|| {
        let v = AtomicU64::new(1);
        assert_eq!(v.load(Ordering::Relaxed), 1);
    });
    assert!(outcome.violation.is_none());
    assert_eq!(outcome.executions, 1);
}

/// `max_executions` truncates and reports it instead of running forever.
#[test]
fn truncation_is_reported() {
    let outcome = check_with(
        Config {
            max_preemptions: 2,
            max_executions: 3,
            max_threads: 8,
        },
        || {
            let v = Arc::new(AtomicU64::new(0));
            let v2 = Arc::clone(&v);
            let t = interleave::thread::spawn(move || {
                v2.fetch_add(1, Ordering::Relaxed);
                v2.fetch_add(1, Ordering::Relaxed);
            });
            v.fetch_add(1, Ordering::Relaxed);
            v.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
        },
    );
    assert!(outcome.violation.is_none());
    assert!(outcome.truncated, "3 executions cannot exhaust this model");
    assert_eq!(outcome.executions, 3);
}

/// Outside a model every shim falls back to real `std` behaviour.
#[test]
fn fallback_outside_model() {
    let v = AtomicU64::new(5);
    assert_eq!(v.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(v.load(Ordering::SeqCst), 7);
    assert_eq!(
        v.compare_exchange(7, 9, Ordering::SeqCst, Ordering::SeqCst),
        Ok(7)
    );

    let m = Mutex::new(1u64);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);

    let l = RwLock::new(3u64);
    assert_eq!(*l.read(), 3);
    *l.write() = 4;
    assert_eq!(*l.read(), 4);

    let a = Arc::new(10u64);
    let a2 = Arc::clone(&a);
    let t = interleave::thread::spawn(move || *a2 + 1);
    assert_eq!(t.join().unwrap(), 11);
    assert_eq!(Arc::strong_count(&a), 1);
}
