//! Offline stand-in for the crates.io `rand` crate (0.8-style API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over `Range<f64>` /
//! integer ranges, and [`Rng::gen_bool`].  The generator is a deterministic
//! splitmix64/xorshift64* combination: fast, seedable, and good enough for
//! simulated measurement noise and test-matrix generation (it is *not*
//! cryptographic, and neither is the real `SmallRng`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use core::ops::Range;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open [`Range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[range.start, range.end)` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + rng.next_u64() % span
    }
}

impl SampleUniform for usize {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

/// The user-facing generator interface: raw words plus convenience samplers.
pub trait Rng {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable, non-cryptographic generator
    /// (xorshift64* over a splitmix64-initialised state).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles the (possibly tiny) seed into a full state
            // and guarantees a non-zero xorshift state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let u = rng.gen_range(5u64..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }
}
