//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion's API the workspace benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistics engine: each benchmark is warmed up once and then
//! timed over a fixed number of iterations, reporting the mean wall-clock
//! time per iteration.  That keeps `cargo bench` fast and dependency-free
//! while preserving source compatibility with the real crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`]; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier of a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id consisting only of the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

/// Number of timed iterations per benchmark.
const ITERATIONS: u64 = 10;

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = ITERATIONS;
    }

    /// Times `routine` with a fresh `setup()` value per iteration; only the
    /// routine is timed.
    pub fn iter_batched<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut elapsed = Duration::ZERO;
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = ITERATIONS;
    }
}

fn report(id: &str, bencher: &Bencher) {
    if bencher.iterations == 0 {
        println!("{id:<40} (not run)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!("{id:<40} {:>12.3} µs/iter", per_iter * 1e6);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.into_id()), &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Ends the group (a no-op, for source compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        // one warm-up + ITERATIONS timed runs
        assert_eq!(runs, ITERATIONS + 1);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| n, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(total, 3 * (ITERATIONS + 1));
    }
}
