//! End-to-end integration tests: Sampler → Modeler → repository → Predictor →
//! ranking, across all the workspace crates.

use dlaperf::machine::presets::{harpertown_openblas, sandy_bridge_openblas};
use dlaperf::machine::{Locality, SimExecutor};
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::ranking::{kendall_tau, top_choice_agrees};
use dlaperf::predict::workloads::{measure_trinv, MeasurementMode};
use dlaperf::{Pipeline, TrinvVariant, Workload};

fn quick_pipeline(max: usize) -> Pipeline {
    let mut p = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig::quick(max))
        .with_seed(77);
    p.build_models(&[Workload::Trinv]);
    p
}

#[test]
fn full_pipeline_ranks_trinv_variants_correctly() {
    let pipeline = quick_pipeline(512);
    let n = 480;
    let b = 96;
    let ranking = pipeline.rank_trinv(n, b).unwrap();
    // Variant 4 (2.5x the work) must be ranked last.
    assert_eq!(ranking.last().unwrap().0, TrinvVariant::V4);
    // Predicted ranking agrees with the simulated execution on the winner.
    let predicted: Vec<f64> = TrinvVariant::ALL
        .iter()
        .map(|&v| {
            ranking
                .iter()
                .find(|(rv, _)| *rv == v)
                .map(|(_, p)| p.median)
                .unwrap()
        })
        .collect();
    let mut executor = SimExecutor::new(harpertown_openblas(), 5);
    let measured: Vec<f64> = TrinvVariant::ALL
        .iter()
        .map(|&v| {
            measure_trinv(
                &mut executor,
                v,
                n,
                b,
                MeasurementMode::Fixed(Locality::InCache),
            )
            .efficiency
        })
        .collect();
    assert!(top_choice_agrees(&predicted, &measured, false));
    assert!(kendall_tau(&predicted, &measured) >= 0.6);
}

#[test]
fn block_size_tuning_matches_measured_optimum_region() {
    let pipeline = quick_pipeline(512);
    let n = 480;
    let candidates = [8usize, 16, 32, 64, 96, 128, 192, 256];
    let sweep = pipeline
        .tune_trinv_block_size(TrinvVariant::V3, n, &candidates)
        .unwrap();
    let predicted_best = sweep.best_block_size().unwrap();
    // Measure every candidate and find the measured optimum.
    let mut best_measured = (0usize, 0.0f64);
    for &b in &candidates {
        let m = pipeline.measure_trinv(TrinvVariant::V3, n, b, MeasurementMode::Auto);
        if m.efficiency > best_measured.1 {
            best_measured = (b, m.efficiency);
        }
    }
    // The predicted optimum must be within a factor of two of the measured
    // optimum (the paper: the prediction captures the best region, 48..128).
    let (lo, hi) = (best_measured.0 / 2, best_measured.0 * 2);
    assert!(
        (lo..=hi).contains(&predicted_best),
        "predicted b* = {predicted_best}, measured b* = {}",
        best_measured.0
    );
}

#[test]
fn repository_persistence_preserves_predictions_across_pipelines() {
    let pipeline = quick_pipeline(256);
    let dir = std::env::temp_dir().join("dlaperf-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trinv-models.txt");
    pipeline.save_repository(&path).unwrap();

    let mut restored = Pipeline::new(harpertown_openblas());
    restored.load_repository(&path).unwrap();
    let a = pipeline.rank_trinv(224, 32).unwrap();
    let b = restored.rank_trinv(224, 32).unwrap();
    for ((va, pa), (vb, pb)) in a.iter().zip(b.iter()) {
        assert_eq!(va, vb);
        assert!((pa.median - pb.median).abs() < 1e-9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn different_architectures_can_prefer_different_variants() {
    // The Harpertown profile favours the gemm-rich variant 3, the Sandy Bridge
    // profile favours the trmm-dominated variant 1 (paper Fig. IV.3).
    let mut hpt = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig::quick(512))
        .with_seed(1);
    hpt.build_models(&[Workload::Trinv]);
    let mut snb = Pipeline::new(sandy_bridge_openblas())
        .with_model_config(ModelSetConfig::quick(512))
        .with_seed(2);
    snb.build_models(&[Workload::Trinv]);

    let n = 480;
    let best_hpt = hpt.rank_trinv(n, 96).unwrap()[0].0;
    let best_snb = snb.rank_trinv(n, 96).unwrap()[0].0;
    assert_eq!(best_hpt, TrinvVariant::V3);
    assert_eq!(best_snb, TrinvVariant::V1);
}

#[test]
fn out_of_cache_models_predict_lower_efficiency_than_in_cache() {
    let mut ic = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig::quick(256))
        .with_locality(Locality::InCache);
    ic.build_models(&[Workload::Trinv]);
    let mut oc = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig::quick(256))
        .with_locality(Locality::OutOfCache);
    oc.build_models(&[Workload::Trinv]);
    for variant in TrinvVariant::ALL {
        let eic = ic.rank_trinv(224, 32).unwrap();
        let eoc = oc.rank_trinv(224, 32).unwrap();
        let pic = eic.iter().find(|(v, _)| *v == variant).unwrap().1.median;
        let poc = eoc.iter().find(|(v, _)| *v == variant).unwrap().1.median;
        assert!(
            pic > poc,
            "{}: in-cache prediction {pic} should exceed out-of-cache {poc}",
            variant.name()
        );
    }
}
