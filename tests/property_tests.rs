//! Workspace-level property-based tests (proptest) on cross-crate invariants.

use dlaperf::algos::{sylv_compute, trinv_compute, trinv_trace, SylvVariant, TrinvVariant};
use dlaperf::blas::flops::trace_flops;
use dlaperf::blas::{Call, Diag, Side, Trans, Uplo};
use dlaperf::machine::cost::estimate_ticks;
use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::machine::Locality;
use dlaperf::mat::gen::MatrixGenerator;
use dlaperf::mat::ops::{add, invert_lower_triangular, lower_triangular, matmul, sub};
use dlaperf::mat::stats::Summary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every trinv variant inverts every (well-conditioned) lower-triangular
    /// matrix for every block size.
    #[test]
    fn trinv_variants_invert(seed in 0u64..1000, n in 1usize..60, b in 1usize..64) {
        let mut g = MatrixGenerator::new(seed);
        let l = g.lower_triangular(n, false);
        let reference = invert_lower_triangular(&l, false).unwrap();
        for variant in TrinvVariant::ALL {
            let mut work = l.clone();
            trinv_compute(variant, &mut work, b);
            let result = lower_triangular(&work, false).unwrap();
            prop_assert!(result.max_abs_diff(&reference) < 1e-7);
        }
    }

    /// Every Sylvester variant satisfies the equation residual.
    #[test]
    fn sylv_variants_solve(seed in 0u64..1000, m in 1usize..40, n in 1usize..40, b in 1usize..32) {
        let mut g = MatrixGenerator::new(seed);
        let l = g.lower_triangular(m, false);
        let u = g.upper_triangular(n, false);
        let c = g.general(m, n);
        for id in [1usize, 4, 6, 11, 16] {
            let variant = SylvVariant::new(id).unwrap();
            let mut x = c.clone();
            sylv_compute(variant, &l, &u, &mut x, b);
            let lx = matmul(1.0, &l, &x).unwrap();
            let xu = matmul(1.0, &x, &u).unwrap();
            let resid = sub(&add(&lx, &xu).unwrap(), &c).unwrap().max_abs();
            prop_assert!(resid < 1e-7, "variant {id}: residual {resid}");
        }
    }

    /// Trace flop counts are invariant under the leading-dimension choice and
    /// grow monotonically with the matrix size.
    #[test]
    fn trace_flops_monotone(n in 16usize..300, b in 8usize..128) {
        for variant in TrinvVariant::ALL {
            let small = trace_flops(&trinv_trace(variant, n, b, n));
            let large = trace_flops(&trinv_trace(variant, n + 16, b, n + 16));
            prop_assert!(large > small);
            let other_ld = trace_flops(&trinv_trace(variant, n, b, 4096));
            prop_assert!((small - other_ld).abs() < 1e-9);
        }
    }

    /// The cost model is monotone in the problem size for square gemm and
    /// never returns non-positive ticks.
    #[test]
    fn cost_model_monotone_in_size(n in 8usize..512) {
        let machine = harpertown_openblas();
        let small = Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, 0.0);
        let large = Call::gemm(Trans::NoTrans, Trans::NoTrans, n + 64, n + 64, n + 64, 1.0, 0.0);
        for locality in Locality::ALL {
            let ts = estimate_ticks(&machine, &small, locality);
            let tl = estimate_ticks(&machine, &large, locality);
            prop_assert!(ts > 0.0);
            prop_assert!(tl > ts);
        }
    }

    /// The out-of-cache estimate never beats the in-cache estimate.
    #[test]
    fn out_of_cache_never_faster(m in 8usize..400, n in 8usize..400) {
        let machine = harpertown_openblas();
        let call = Call::trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, m, n, 1.0);
        let ic = estimate_ticks(&machine, &call, Locality::InCache);
        let oc = estimate_ticks(&machine, &call, Locality::OutOfCache);
        prop_assert!(oc >= ic);
    }

    /// Summary accumulation is associative in the quantities the predictor
    /// relies on (medians and means add exactly).
    #[test]
    fn summary_accumulation_is_additive(values in proptest::collection::vec(1.0f64..1e6, 2..20)) {
        let summaries: Vec<Summary> = values.iter().map(|&v| Summary::exact(v)).collect();
        let mut acc = Summary::zero();
        for s in &summaries {
            acc.accumulate(s);
        }
        let total: f64 = values.iter().sum();
        prop_assert!((acc.median - total).abs() < 1e-6);
        prop_assert!((acc.mean - total).abs() < 1e-6);
        prop_assert!((acc.min - total).abs() < 1e-6);
    }
}
