//! Integration tests for the Sylvester workload: numerical correctness through
//! the real kernels, plus model-based group separation and ranking.

use dlaperf::algos::{sylv_compute, SylvVariant};
use dlaperf::machine::presets::harpertown_openblas;
use dlaperf::mat::gen::MatrixGenerator;
use dlaperf::mat::ops::{add, matmul, sub};
use dlaperf::predict::modelset::ModelSetConfig;
use dlaperf::predict::workloads::MeasurementMode;
use dlaperf::{Pipeline, Workload};

#[test]
fn every_variant_agrees_with_every_other_numerically() {
    let mut g = MatrixGenerator::new(99);
    let n = 72;
    let l = g.lower_triangular(n, false);
    let u = g.upper_triangular(n, false);
    let c = g.general(n, n);
    let mut reference = c.clone();
    sylv_compute(SylvVariant::new(1).unwrap(), &l, &u, &mut reference, 24);
    // residual of the reference solution
    let lx = matmul(1.0, &l, &reference).unwrap();
    let xu = matmul(1.0, &reference, &u).unwrap();
    let resid = sub(&add(&lx, &xu).unwrap(), &c).unwrap().max_abs();
    assert!(resid < 1e-9, "reference residual {resid}");
    for variant in SylvVariant::all().into_iter().skip(1) {
        let mut x = c.clone();
        sylv_compute(variant, &l, &u, &mut x, 24);
        let diff = x.max_abs_diff(&reference);
        assert!(diff < 1e-8, "{} deviates by {diff}", variant.name());
    }
}

#[test]
fn models_separate_fast_and_slow_groups_and_rank_the_fast_group_first() {
    let mut pipeline = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig {
            max_size: 768,
            unblocked_max: 256,
            gemm_k_max: 768,
            repetitions: 3,
            strategy: dlaperf::Strategy::paper_default(),
            workers: 0,
        })
        .with_seed(17);
    pipeline.build_models(&[Workload::Sylv]);

    let n = 768;
    let b = 96;
    let ranking = pipeline.rank_sylv(n, b).unwrap();
    assert_eq!(ranking.len(), 16);

    // The four GEMM-rich variants must occupy the top four predicted places.
    let top4: Vec<bool> = ranking
        .iter()
        .take(4)
        .map(|(v, _)| v.is_gemm_rich())
        .collect();
    assert!(
        top4.iter().all(|&fast| fast),
        "top-4 predicted variants must be the GEMM-rich ones, got {:?}",
        ranking
            .iter()
            .take(4)
            .map(|(v, _)| v.id())
            .collect::<Vec<_>>()
    );

    // Predicted group separation: worst fast variant clearly ahead of the best
    // slow variant.
    let worst_fast = ranking
        .iter()
        .filter(|(v, _)| v.is_gemm_rich())
        .map(|(_, p)| p.median)
        .fold(f64::INFINITY, f64::min);
    let best_slow = ranking
        .iter()
        .filter(|(v, _)| !v.is_gemm_rich())
        .map(|(_, p)| p.median)
        .fold(0.0f64, f64::max);
    assert!(
        worst_fast > 1.5 * best_slow,
        "predicted groups not separated: {worst_fast} vs {best_slow}"
    );

    // The measured (simulated) groups separate the same way.
    let measured_fast = pipeline
        .measure_sylv(SylvVariant::new(1).unwrap(), n, b, MeasurementMode::Auto)
        .efficiency;
    let measured_slow = pipeline
        .measure_sylv(SylvVariant::new(16).unwrap(), n, b, MeasurementMode::Auto)
        .efficiency;
    assert!(measured_fast > 2.0 * measured_slow);
}
