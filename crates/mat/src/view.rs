//! Borrowed matrix views with a leading dimension.

use std::marker::PhantomData;

use crate::Rect;

/// An immutable view of a column-major matrix block.
///
/// The view stores a raw base pointer, the block dimensions and the leading
/// dimension of the *parent* storage; element `(i, j)` is read from
/// `ptr.add(j * ld + i)`.  Views are cheap to copy and are the operand type of
/// the BLAS kernels in `dla-blas`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    ptr: *const f64,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a f64>,
}

/// A mutable view of a column-major matrix block.
pub struct MatMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut f64>,
}

// SAFETY: a MatRef only allows shared reads of f64 values, which is Sync/Send
// when the underlying borrow is; the PhantomData ties the lifetime correctly.
unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}
// SAFETY: a MatMut is an exclusive borrow; sending it to another thread is as
// safe as sending `&mut [f64]`.
unsafe impl Send for MatMut<'_> {}

impl<'a> MatRef<'a> {
    /// Creates a view from raw parts.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads of `ld * (cols - 1) + rows` consecutive
    /// `f64` values (when `rows, cols > 0`) for the lifetime `'a`, and `ld >=
    /// rows` must hold.
    pub unsafe fn from_raw_parts(ptr: *const f64, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(ld >= rows || rows == 0);
        MatRef {
            ptr,
            rows,
            cols,
            ld: ld.max(1),
            _marker: PhantomData,
        }
    }

    /// Creates a view over a contiguous column-major slice (`ld == rows`).
    ///
    /// Panics if the slice is shorter than `rows * cols`.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert!(
            data.len() >= rows * cols,
            "slice too short for {rows}x{cols} view"
        );
        // SAFETY: length checked above; ld == rows.
        unsafe { MatRef::from_raw_parts(data.as_ptr(), rows, cols, rows.max(1)) }
    }

    /// Number of rows of the view.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the view.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the parent storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Returns `true` if the view has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Reads element `(i, j)`.
    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: bounds checked above, invariants guaranteed at construction.
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Reads element `(i, j)` without bounds checking.
    ///
    /// # Safety
    ///
    /// `i < rows` and `j < cols` must hold.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> f64 {
        *self.ptr.add(j * self.ld + i)
    }

    /// Sub-view described by `rect`; panics if the block does not fit.
    pub fn submatrix(&self, rect: Rect) -> MatRef<'a> {
        assert!(
            rect.fits_in(self.rows, self.cols),
            "submatrix {rect} out of bounds for {}x{} view",
            self.rows,
            self.cols
        );
        // SAFETY: the block fits within the parent view.
        unsafe {
            MatRef::from_raw_parts(
                self.ptr.add(rect.col * self.ld + rect.row),
                rect.rows,
                rect.cols,
                self.ld,
            )
        }
    }

    /// Copies the view into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

impl<'a> MatMut<'a> {
    /// Creates a mutable view from raw parts.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `ld * (cols - 1) + rows`
    /// consecutive `f64` values for the lifetime `'a`, no other reference may
    /// access those elements during `'a`, and `ld >= rows` must hold.
    pub unsafe fn from_raw_parts(ptr: *mut f64, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(ld >= rows || rows == 0);
        MatMut {
            ptr,
            rows,
            cols,
            ld: ld.max(1),
            _marker: PhantomData,
        }
    }

    /// Creates a mutable view over a contiguous column-major slice (`ld == rows`).
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize) -> Self {
        assert!(
            data.len() >= rows * cols,
            "slice too short for {rows}x{cols} view"
        );
        // SAFETY: length checked above; exclusivity follows from &mut.
        unsafe { MatMut::from_raw_parts(data.as_mut_ptr(), rows, cols, rows.max(1)) }
    }

    /// Number of rows of the view.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the view.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the parent storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Returns `true` if the view has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Reads element `(i, j)`.
    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: bounds checked above.
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Writes element `(i, j)`.
    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: bounds checked above; we hold the exclusive borrow.
        unsafe { *self.ptr.add(j * self.ld + i) = v }
    }

    /// Reads element `(i, j)` without bounds checking.
    ///
    /// # Safety
    ///
    /// `i < rows` and `j < cols` must hold.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> f64 {
        *self.ptr.add(j * self.ld + i)
    }

    /// Writes element `(i, j)` without bounds checking.
    ///
    /// # Safety
    ///
    /// `i < rows` and `j < cols` must hold.
    #[inline]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: f64) {
        *self.ptr.add(j * self.ld + i) = v
    }

    /// Immutable reborrow of this view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        // SAFETY: shares the invariants of self; the returned lifetime is tied
        // to the borrow of self, so no mutation can happen concurrently.
        unsafe { MatRef::from_raw_parts(self.ptr, self.rows, self.cols, self.ld) }
    }

    /// Mutable reborrow of this view with a shorter lifetime.
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_> {
        // SAFETY: exclusive access is inherited from &mut self.
        unsafe { MatMut::from_raw_parts(self.ptr, self.rows, self.cols, self.ld) }
    }

    /// Mutable sub-view described by `rect`; panics if the block does not fit.
    pub fn submatrix_mut(self, rect: Rect) -> MatMut<'a> {
        assert!(
            rect.fits_in(self.rows, self.cols),
            "submatrix {rect} out of bounds for {}x{} view",
            self.rows,
            self.cols
        );
        // SAFETY: the block is contained in the parent view and consumes self,
        // so exclusivity is preserved.
        unsafe {
            MatMut::from_raw_parts(
                self.ptr.add(rect.col * self.ld + rect.row),
                rect.rows,
                rect.cols,
                self.ld,
            )
        }
    }

    /// Splits this view into two disjoint mutable blocks.
    ///
    /// Panics if the blocks overlap or do not fit.
    pub fn split_two_mut(self, a: Rect, b: Rect) -> (MatMut<'a>, MatMut<'a>) {
        assert!(a.fits_in(self.rows, self.cols), "block {a} out of bounds");
        assert!(b.fits_in(self.rows, self.cols), "block {b} out of bounds");
        assert!(!a.overlaps(&b), "blocks {a} and {b} overlap");
        // SAFETY: the two blocks are element-disjoint, so handing out two
        // mutable views cannot alias; both fit in the parent.
        unsafe {
            (
                MatMut::from_raw_parts(
                    self.ptr.add(a.col * self.ld + a.row),
                    a.rows,
                    a.cols,
                    self.ld,
                ),
                MatMut::from_raw_parts(
                    self.ptr.add(b.col * self.ld + b.row),
                    b.rows,
                    b.cols,
                    self.ld,
                ),
            )
        }
    }

    /// Fills the view with a constant.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            for i in 0..self.rows {
                // SAFETY: loop bounds match the view dimensions.
                unsafe { self.set_unchecked(i, j, v) };
            }
        }
    }

    /// Copies `src` into this view (dimensions must match).
    pub fn copy_from_ref(&mut self, src: MatRef<'_>) {
        assert_eq!(self.rows, src.rows(), "copy_from_ref: row mismatch");
        assert_eq!(self.cols, src.cols(), "copy_from_ref: column mismatch");
        for j in 0..self.cols {
            for i in 0..self.rows {
                // SAFETY: loop bounds match both views' dimensions.
                unsafe { self.set_unchecked(i, j, src.get_unchecked(i, j)) };
            }
        }
    }

    /// Copies the view into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

impl std::fmt::Debug for MatRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatRef({}x{}, ld {})", self.rows, self.cols, self.ld)
    }
}

impl std::fmt::Debug for MatMut<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatMut({}x{}, ld {})", self.rows, self.cols, self.ld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn ref_from_slice() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::from_slice(&data, 2, 3);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.ld(), 2);
        // column-major: (0,0)=1, (1,0)=2, (0,1)=3 ...
        assert_eq!(v.get(0, 0), 1.0);
        assert_eq!(v.get(1, 0), 2.0);
        assert_eq!(v.get(0, 1), 3.0);
        assert_eq!(v.get(1, 2), 6.0);
    }

    #[test]
    fn mut_from_slice_roundtrip() {
        let mut data = vec![0.0; 6];
        {
            let mut v = MatMut::from_slice(&mut data, 2, 3);
            v.set(1, 2, 42.0);
            v.set(0, 0, -1.0);
            assert_eq!(v.get(1, 2), 42.0);
        }
        assert_eq!(data[5], 42.0);
        assert_eq!(data[0], -1.0);
    }

    #[test]
    fn submatrix_of_view() {
        let m = Matrix::from_fn(5, 5, |i, j| (10 * i + j) as f64);
        let v = m.as_ref();
        let s = v.submatrix(Rect::new(1, 2, 3, 2));
        assert_eq!(s.get(0, 0), 12.0);
        assert_eq!(s.get(2, 1), 33.0);
        let owned = s.to_matrix();
        assert_eq!(owned[(2, 1)], 33.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_out_of_bounds_panics() {
        let m = Matrix::zeros(3, 3);
        let v = m.as_ref();
        let _ = v.submatrix(Rect::new(2, 2, 2, 2));
    }

    #[test]
    fn split_two_mut_disjoint() {
        let mut m = Matrix::zeros(4, 4);
        {
            let v = m.as_mut();
            let (mut a, mut b) = v.split_two_mut(Rect::new(0, 0, 2, 2), Rect::new(2, 2, 2, 2));
            a.fill(1.0);
            b.fill(2.0);
        }
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(3, 3)], 2.0);
        assert_eq!(m[(0, 3)], 0.0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn split_two_mut_overlapping_panics() {
        let mut m = Matrix::zeros(4, 4);
        let v = m.as_mut();
        let _ = v.split_two_mut(Rect::new(0, 0, 3, 3), Rect::new(2, 2, 2, 2));
    }

    #[test]
    fn copy_from_ref_and_fill() {
        let src = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut dst = Matrix::zeros(3, 3);
        dst.as_mut().copy_from_ref(src.as_ref());
        assert!(dst.approx_eq(&src, 0.0));
        let mut v = dst.as_mut();
        v.fill(7.0);
        assert_eq!(dst[(2, 2)], 7.0);
    }

    #[test]
    fn reborrows() {
        let mut m = Matrix::zeros(2, 2);
        let mut v = m.as_mut();
        {
            let mut r = v.reborrow();
            r.set(0, 1, 3.0);
        }
        assert_eq!(v.as_ref().get(0, 1), 3.0);
        assert_eq!(v.get(0, 1), 3.0);
    }

    #[test]
    fn debug_formatting() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(format!("{:?}", m.as_ref()), "MatRef(2x3, ld 2)");
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(format!("{:?}", m.as_mut()), "MatMut(2x3, ld 2)");
    }
}
