//! Owned column-major matrix storage.

use crate::{MatError, MatMut, MatRef, Rect, Result};

/// An owned, column-major `f64` matrix with an explicit leading dimension.
///
/// Storage follows the BLAS/LAPACK convention: element `(i, j)` lives at index
/// `j * ld + i` of the backing buffer, and the leading dimension `ld` may be
/// larger than the number of rows (the extra rows are padding that is never
/// touched by the numerical kernels but matters for performance, which is why
/// the paper's models treat leading dimensions as a distinct argument class).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    ld: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros with `ld == rows`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            ld: rows.max(1),
            data: vec![0.0; rows.max(1) * cols],
        }
    }

    /// Creates a `rows x cols` matrix of zeros with an explicit leading dimension.
    ///
    /// Returns an error if `ld < rows`.
    pub fn zeros_with_ld(rows: usize, cols: usize, ld: usize) -> Result<Self> {
        if ld < rows || (rows > 0 && ld == 0) {
            return Err(MatError::InvalidLeadingDimension { ld, rows });
        }
        Ok(Matrix {
            rows,
            cols,
            ld: ld.max(1),
            data: vec![0.0; ld.max(1) * cols],
        })
    }

    /// Creates a matrix by evaluating `f(i, j)` for every element.
    // lint: allow(panic-free): i < rows and j < cols by loop bounds
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a row-major slice of values (convenient in tests).
    ///
    /// Returns an error if `values.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, values: &[f64]) -> Result<Self> {
        if values.len() != rows * cols {
            return Err(MatError::dims(format!(
                "expected {} values for a {}x{} matrix, got {}",
                rows * cols,
                rows,
                cols,
                values.len()
            )));
        }
        Ok(Matrix::from_fn(rows, cols, |i, j| values[i * cols + j]))
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Wraps an existing column-major buffer as a `rows x cols` matrix with
    /// `ld == rows`, without copying.
    ///
    /// The inverse of [`Matrix::into_data`]; together they let hot loops
    /// (e.g. the fit engine's design-matrix workspace) recycle one allocation
    /// across many matrices.  Returns an error unless
    /// `data.len() == rows * cols` with `rows >= 1`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || data.len() != rows * cols {
            return Err(MatError::dims(format!(
                "from_data: buffer of {} values cannot back a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix {
            rows,
            cols,
            ld: rows,
            data,
        })
    }

    /// Consumes the matrix and returns its backing buffer (column-major,
    /// including any leading-dimension padding).
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the backing storage.
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the backing storage (including padding rows).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the backing storage (including padding rows).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads element `(i, j)`; panics if out of bounds.
    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.ld + i]
    }

    /// Writes element `(i, j)`; panics if out of bounds.
    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.ld + i] = v;
    }

    /// Fills the whole matrix with a constant value.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            for i in 0..self.rows {
                self.data[j * self.ld + i] = v;
            }
        }
    }

    /// Immutable view of the whole matrix.
    pub fn as_ref(&self) -> MatRef<'_> {
        // SAFETY: the buffer is ld * cols long and outlives the view.
        unsafe { MatRef::from_raw_parts(self.data.as_ptr(), self.rows, self.cols, self.ld) }
    }

    /// Mutable view of the whole matrix.
    pub fn as_mut(&mut self) -> MatMut<'_> {
        // SAFETY: the buffer is ld * cols long and outlives the view; the
        // `&mut self` borrow guarantees exclusivity.
        unsafe { MatMut::from_raw_parts(self.data.as_mut_ptr(), self.rows, self.cols, self.ld) }
    }

    /// Immutable view of the block described by `rect`.
    ///
    /// Returns an error if the block does not fit inside the matrix.
    pub fn block(&self, rect: Rect) -> Result<MatRef<'_>> {
        if !rect.fits_in(self.rows, self.cols) {
            return Err(MatError::oob(format!(
                "block {rect} does not fit in {}x{} matrix",
                self.rows, self.cols
            )));
        }
        let offset = rect.col * self.ld + rect.row;
        // SAFETY: the block fits, so every accessed index j*ld+i stays within
        // the allocation for i < rect.rows, j < rect.cols.
        Ok(unsafe {
            MatRef::from_raw_parts(
                self.data.as_ptr().add(offset),
                rect.rows,
                rect.cols,
                self.ld,
            )
        })
    }

    /// Mutable view of the block described by `rect`.
    pub fn block_mut(&mut self, rect: Rect) -> Result<MatMut<'_>> {
        if !rect.fits_in(self.rows, self.cols) {
            return Err(MatError::oob(format!(
                "block {rect} does not fit in {}x{} matrix",
                self.rows, self.cols
            )));
        }
        let offset = rect.col * self.ld + rect.row;
        // SAFETY: as in `block`, plus exclusivity from `&mut self`.
        Ok(unsafe {
            MatMut::from_raw_parts(
                self.data.as_mut_ptr().add(offset),
                rect.rows,
                rect.cols,
                self.ld,
            )
        })
    }

    /// Simultaneously borrows one mutable block and several immutable blocks of
    /// the same matrix.
    ///
    /// This is the safe entry point used by the in-place BLAS wrappers of
    /// `dla-blas` when all operands of a call (e.g. `L20 += L21 * L10`) are
    /// blocks of a single parent matrix.  The mutable block must not overlap
    /// any of the immutable blocks; the immutable blocks may overlap each
    /// other.
    pub fn split_one_mut(
        &mut self,
        mut_rect: Rect,
        ref_rects: &[Rect],
    ) -> Result<(MatMut<'_>, Vec<MatRef<'_>>)> {
        if !mut_rect.fits_in(self.rows, self.cols) {
            return Err(MatError::oob(format!(
                "mutable block {mut_rect} does not fit in {}x{} matrix",
                self.rows, self.cols
            )));
        }
        for r in ref_rects {
            if !r.fits_in(self.rows, self.cols) {
                return Err(MatError::oob(format!(
                    "block {r} does not fit in {}x{} matrix",
                    self.rows, self.cols
                )));
            }
            if r.overlaps(&mut_rect) {
                return Err(MatError::dims(format!(
                    "immutable block {r} overlaps mutable block {mut_rect}"
                )));
            }
        }
        let ld = self.ld;
        let base_mut = self.data.as_mut_ptr();
        let base_const = self.data.as_ptr();
        let m_off = mut_rect.col * ld + mut_rect.row;
        // SAFETY: the mutable block is disjoint (element-wise) from every
        // immutable block, so no element is reachable both mutably and
        // immutably.  All blocks fit inside the allocation.
        let mut_view = unsafe {
            MatMut::from_raw_parts(base_mut.add(m_off), mut_rect.rows, mut_rect.cols, ld)
        };
        let ref_views = ref_rects
            .iter()
            .map(|r| {
                let off = r.col * ld + r.row;
                unsafe { MatRef::from_raw_parts(base_const.add(off), r.rows, r.cols, ld) }
            })
            .collect();
        Ok((mut_view, ref_views))
    }

    /// Copies the contents of `src` into this matrix (dimensions must match).
    pub fn copy_from(&mut self, src: &Matrix) -> Result<()> {
        if self.rows != src.rows || self.cols != src.cols {
            return Err(MatError::dims(format!(
                "copy_from: destination is {}x{}, source is {}x{}",
                self.rows, self.cols, src.rows, src.cols
            )));
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                self.data[j * self.ld + i] = src.data[j * src.ld + i];
            }
        }
        Ok(())
    }

    /// Returns a newly allocated transpose of this matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        let mut acc = 0.0;
        for j in 0..self.cols {
            for i in 0..self.rows {
                let v = self.data[j * self.ld + i];
                acc += v * v;
            }
        }
        acc.sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        let mut acc: f64 = 0.0;
        for j in 0..self.cols {
            for i in 0..self.rows {
                acc = acc.max(self.data[j * self.ld + i].abs());
            }
        }
        acc
    }

    /// Returns `true` if every element of `self` and `other` differs by at most
    /// `tol` in absolute value.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                if (self.get(i, j) - other.get(i, j)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum element-wise absolute difference between `self` and `other`.
    ///
    /// Panics if the dimensions do not match.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: column mismatch");
        let mut acc: f64 = 0.0;
        for j in 0..self.cols {
            for i in 0..self.rows {
                acc = acc.max((self.get(i, j) - other.get(i, j)).abs());
            }
        }
        acc
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    // lint: allow(panic-free): the bounds assert is the documented contract
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.ld + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.ld + i]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} (ld {})", self.rows, self.cols, self.ld)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.ld(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.set(2, 3, -1.0);
        assert_eq!(m[(2, 3)], -1.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn explicit_leading_dimension() {
        let m = Matrix::zeros_with_ld(3, 4, 10).unwrap();
        assert_eq!(m.ld(), 10);
        assert_eq!(m.as_slice().len(), 40);
        assert!(Matrix::zeros_with_ld(5, 2, 3).is_err());
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
        // column-major storage: first column is [1, 4]
        assert_eq!(m.as_slice()[0], 1.0);
        assert_eq!(m.as_slice()[1], 4.0);
        assert!(Matrix::from_rows(2, 2, &[1.0]).is_err());
    }

    #[test]
    fn identity_and_transpose() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(1, 0)], 0.0);
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn block_views_respect_offsets() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let b = m.block(Rect::new(2, 3, 3, 2)).unwrap();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.get(0, 0), 23.0);
        assert_eq!(b.get(2, 1), 44.0);
        assert!(m.block(Rect::new(4, 4, 3, 3)).is_err());
    }

    #[test]
    fn block_mut_writes_through() {
        let mut m = Matrix::zeros(4, 4);
        {
            let mut b = m.block_mut(Rect::new(1, 1, 2, 2)).unwrap();
            b.set(0, 0, 7.0);
            b.set(1, 1, 9.0);
        }
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(2, 2)], 9.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_one_mut_disjoint_blocks() {
        let mut m = Matrix::from_fn(6, 6, |i, j| (i + j) as f64);
        let (mut out, ins) = m
            .split_one_mut(
                Rect::new(4, 0, 2, 2),
                &[Rect::new(0, 0, 2, 2), Rect::new(2, 2, 2, 2)],
            )
            .unwrap();
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].get(1, 1), 2.0);
        assert_eq!(ins[1].get(0, 0), 4.0);
        out.set(0, 0, 99.0);
        assert_eq!(m[(4, 0)], 99.0);
    }

    #[test]
    fn split_one_mut_rejects_overlap() {
        let mut m = Matrix::zeros(6, 6);
        let res = m.split_one_mut(Rect::new(0, 0, 3, 3), &[Rect::new(2, 2, 2, 2)]);
        assert!(res.is_err());
        let res = m.split_one_mut(Rect::new(0, 0, 3, 3), &[Rect::new(10, 0, 2, 2)]);
        assert!(res.is_err());
    }

    #[test]
    fn copy_fill_norms() {
        let mut a = Matrix::zeros(3, 3);
        a.fill(2.0);
        assert_eq!(a.frobenius_norm(), (9.0f64 * 4.0).sqrt());
        assert_eq!(a.max_abs(), 2.0);
        let mut b = Matrix::zeros(3, 3);
        b.copy_from(&a).unwrap();
        assert!(b.approx_eq(&a, 0.0));
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = Matrix::zeros(2, 3);
        assert!(b.copy_from(&c).is_err());
        assert!(!b.approx_eq(&c, 1.0));
    }

    #[test]
    fn display_does_not_panic() {
        let m = Matrix::from_fn(10, 10, |i, j| (i * j) as f64);
        let s = format!("{m}");
        assert!(s.contains("Matrix 10x10"));
    }

    #[test]
    fn empty_matrices_are_ok() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.frobenius_norm(), 0.0);
        let b = m.block(Rect::new(0, 0, 0, 5)).unwrap();
        assert_eq!(b.rows(), 0);
    }
}
