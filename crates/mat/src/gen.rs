//! Deterministic test-matrix generators.
//!
//! All generators are seeded, so correctness tests, the native executor and the
//! figure-regeneration binaries are reproducible run to run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// A deterministic generator of dense test matrices.
#[derive(Debug, Clone)]
pub struct MatrixGenerator {
    rng: SmallRng,
}

impl MatrixGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        MatrixGenerator {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A general `rows x cols` matrix with entries uniform in `[-1, 1)`.
    pub fn general(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, self.rng.gen_range(-1.0..1.0));
            }
        }
        m
    }

    /// A general matrix with a chosen leading dimension (padding rows untouched).
    pub fn general_with_ld(&mut self, rows: usize, cols: usize, ld: usize) -> Matrix {
        // lint: allow(unwrap): documented generator precondition (ld >= rows); violating it is a caller bug worth a loud panic
        let mut m = Matrix::zeros_with_ld(rows, cols, ld).expect("ld >= rows");
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, self.rng.gen_range(-1.0..1.0));
            }
        }
        m
    }

    /// A well-conditioned lower-triangular matrix.
    ///
    /// The strict lower part is uniform in `[-0.5, 0.5)` scaled by `1/n`, and
    /// the diagonal is pushed away from zero (`|d| in [1, 2)`), which keeps the
    /// condition number of the triangular inversion workloads modest so the
    /// blocked variants can be validated to tight tolerances.
    pub fn lower_triangular(&mut self, n: usize, unit_diag: bool) -> Matrix {
        let scale = 1.0 / (n.max(1) as f64);
        let mut m = Matrix::zeros(n, n);
        for j in 0..n {
            for i in (j + 1)..n {
                m.set(i, j, self.rng.gen_range(-0.5..0.5) * scale);
            }
            let d = if unit_diag {
                1.0
            } else {
                let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * self.rng.gen_range(1.0..2.0)
            };
            m.set(j, j, d);
        }
        m
    }

    /// A well-conditioned upper-triangular matrix (transpose of a lower one).
    pub fn upper_triangular(&mut self, n: usize, unit_diag: bool) -> Matrix {
        self.lower_triangular(n, unit_diag).transposed()
    }

    /// A symmetric positive-definite matrix `A = B B^T + n I`.
    pub fn spd(&mut self, n: usize) -> Matrix {
        let b = self.general(n, n);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += b.get(i, k) * b.get(j, k);
                }
                a.set(i, j, acc + if i == j { n as f64 } else { 0.0 });
            }
        }
        a
    }

    /// A vector with entries uniform in `[-1, 1)`.
    pub fn vector(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.rng.gen_range(-1.0..1.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{invert_lower_triangular, matmul};

    #[test]
    fn determinism() {
        let a = MatrixGenerator::new(7).general(5, 4);
        let b = MatrixGenerator::new(7).general(5, 4);
        assert!(a.approx_eq(&b, 0.0));
        let c = MatrixGenerator::new(8).general(5, 4);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn lower_triangular_structure() {
        let l = MatrixGenerator::new(1).lower_triangular(8, false);
        for j in 0..8 {
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0, "({i},{j}) must be zero");
            }
            assert!(l[(j, j)].abs() >= 1.0);
        }
        let lu = MatrixGenerator::new(2).lower_triangular(8, true);
        for j in 0..8 {
            assert_eq!(lu[(j, j)], 1.0);
        }
    }

    #[test]
    fn upper_triangular_structure() {
        let u = MatrixGenerator::new(3).upper_triangular(6, false);
        for j in 0..6 {
            for i in (j + 1)..6 {
                assert_eq!(u[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn generated_triangular_is_well_conditioned() {
        let l = MatrixGenerator::new(11).lower_triangular(64, false);
        let inv = invert_lower_triangular(&l, false).unwrap();
        let prod = matmul(1.0, &l, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(64), 1e-9));
    }

    #[test]
    fn spd_is_symmetric_with_positive_diagonal() {
        let a = MatrixGenerator::new(5).spd(10);
        for i in 0..10 {
            assert!(a[(i, i)] > 0.0);
            for j in 0..10 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn general_with_ld_has_padding() {
        let m = MatrixGenerator::new(9).general_with_ld(4, 3, 10);
        assert_eq!(m.ld(), 10);
        assert_eq!(m.rows(), 4);
        // padding rows remain zero
        assert_eq!(m.as_slice()[5], 0.0);
    }

    #[test]
    fn vector_length_and_range() {
        let v = MatrixGenerator::new(4).vector(100);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }
}
