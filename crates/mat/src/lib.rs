//! # dla-mat
//!
//! Dense, column-major matrix storage and small numerical kernels used by the
//! `dlaperf` workspace — the Rust reproduction of *Performance Modeling for
//! Dense Linear Algebra* (Peise & Bientinesi, SC 2012).
//!
//! The crate provides:
//!
//! * [`Matrix`] — an owned, column-major `f64` matrix with an explicit leading
//!   dimension, mirroring the storage convention of BLAS/LAPACK.
//! * [`MatRef`] / [`MatMut`] — lightweight borrowed views with a leading
//!   dimension, used as the operand types of the pure-Rust BLAS kernels in
//!   `dla-blas`.  Views can describe arbitrary sub-blocks of a parent matrix.
//! * [`Rect`] — an axis-aligned block descriptor (`row`, `col`, `rows`, `cols`)
//!   used to carve blocks out of matrices and to reason about disjointness.
//! * [`qr`] — Householder QR factorisation and least-squares solves, the
//!   substitute for SciPy's `linalg.lstsq` used by the paper's Modeler.
//! * [`gen`] — deterministic test-matrix generators (general, triangular,
//!   well-conditioned) used by correctness tests and the native executor.
//! * [`stats`] — summary statistics (min/max/mean/median/std/quantiles) shared
//!   by the Sampler, Modeler and Predictor.
//!
//! The matrix types deliberately stay small: they only implement what the
//! performance-modeling stack needs, with clear semantics and no hidden
//! allocation in hot paths.

// lint: allow(unsafe-crate): the raw-pointer matrix views (`MatRef`/`MatMut`
// in `view.rs`, their constructors in `dense.rs`) are the one place the
// workspace needs `unsafe` — aliasing sub-block views over a shared buffer
// cannot be expressed through slices.  `unsafe` is denied crate-wide and
// re-allowed only in those two modules, next to their safety comments.
#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// QR/substitution kernels index several arrays by one loop variable over
// partial (triangular) ranges; the indexed form is clearer than iterators.
#![allow(clippy::needless_range_loop)]

#[allow(unsafe_code)]
mod dense;
mod error;
mod rect;
#[allow(unsafe_code)]
mod view;

pub mod gen;
pub mod ops;
pub mod qr;
pub mod stats;

pub use dense::Matrix;
pub use error::MatError;
pub use rect::Rect;
pub use view::{MatMut, MatRef};

/// Result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatError>;
