//! Elementary whole-matrix operations used by tests and reference solvers.
//!
//! These are deliberately simple, allocation-per-call reference routines: the
//! performance-relevant kernels live in `dla-blas`.  Keeping an independent
//! implementation here lets the BLAS kernels be validated against it.

use crate::{MatError, Matrix, Result};

/// Returns `alpha * A * B` as a new matrix (naive triple loop).
pub fn matmul(alpha: f64, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(MatError::dims(format!(
            "matmul: A is {}x{}, B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for j in 0..b.cols() {
        for k in 0..a.cols() {
            let bkj = b.get(k, j);
            if bkj == 0.0 {
                continue;
            }
            for i in 0..a.rows() {
                let v = c.get(i, j) + a.get(i, k) * bkj;
                c.set(i, j, v);
            }
        }
    }
    if alpha != 1.0 {
        scale_in_place(&mut c, alpha);
    }
    Ok(c)
}

/// Returns `A + B` as a new matrix.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(MatError::dims(format!(
            "add: A is {}x{}, B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    Ok(Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        a.get(i, j) + b.get(i, j)
    }))
}

/// Returns `A - B` as a new matrix.
pub fn sub(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(MatError::dims(format!(
            "sub: A is {}x{}, B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    Ok(Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        a.get(i, j) - b.get(i, j)
    }))
}

/// Scales a matrix in place: `A <- alpha * A`.
pub fn scale_in_place(a: &mut Matrix, alpha: f64) {
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let v = a.get(i, j) * alpha;
            a.set(i, j, v);
        }
    }
}

/// Extracts the lower-triangular part of a square matrix.
///
/// If `unit_diag` is true the diagonal is set to 1, otherwise the original
/// diagonal values are kept; the strictly upper part is zeroed.
pub fn lower_triangular(a: &Matrix, unit_diag: bool) -> Result<Matrix> {
    if !a.is_square() {
        return Err(MatError::dims(format!(
            "lower_triangular: matrix is {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    Ok(Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        if i > j {
            a.get(i, j)
        } else if i == j {
            if unit_diag {
                1.0
            } else {
                a.get(i, j)
            }
        } else {
            0.0
        }
    }))
}

/// Extracts the upper-triangular part of a square matrix.
pub fn upper_triangular(a: &Matrix, unit_diag: bool) -> Result<Matrix> {
    if !a.is_square() {
        return Err(MatError::dims(format!(
            "upper_triangular: matrix is {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    Ok(Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        if i < j {
            a.get(i, j)
        } else if i == j {
            if unit_diag {
                1.0
            } else {
                a.get(i, j)
            }
        } else {
            0.0
        }
    }))
}

/// Solves a lower-triangular system `L * x = b` by forward substitution.
pub fn forward_substitution(l: &Matrix, b: &[f64], unit_diag: bool) -> Result<Vec<f64>> {
    let n = l.rows();
    if !l.is_square() || b.len() != n {
        return Err(MatError::dims("forward_substitution: shapes".to_string()));
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for (k, xk) in x.iter().enumerate().take(i) {
            acc -= l.get(i, k) * xk;
        }
        let d = if unit_diag { 1.0 } else { l.get(i, i) };
        if d == 0.0 {
            return Err(MatError::numerical("singular triangular matrix"));
        }
        x[i] = acc / d;
    }
    Ok(x)
}

/// Solves an upper-triangular system `U * x = b` by backward substitution.
pub fn backward_substitution(u: &Matrix, b: &[f64], unit_diag: bool) -> Result<Vec<f64>> {
    let n = u.rows();
    if !u.is_square() || b.len() != n {
        return Err(MatError::dims("backward_substitution: shapes".to_string()));
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for k in (i + 1)..n {
            acc -= u.get(i, k) * x[k];
        }
        let d = if unit_diag { 1.0 } else { u.get(i, i) };
        if d == 0.0 {
            return Err(MatError::numerical("singular triangular matrix"));
        }
        x[i] = acc / d;
    }
    Ok(x)
}

/// Inverts a lower-triangular matrix column by column (reference routine).
pub fn invert_lower_triangular(l: &Matrix, unit_diag: bool) -> Result<Matrix> {
    let n = l.rows();
    if !l.is_square() {
        return Err(MatError::dims(
            "invert_lower_triangular: not square".to_string(),
        ));
    }
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = forward_substitution(l, &e, unit_diag)?;
        for (i, v) in col.into_iter().enumerate() {
            inv.set(i, j, v);
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Matrix {
        Matrix::from_rows(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = example();
        let i = Matrix::identity(3);
        let c = matmul(1.0, &a, &i).unwrap();
        assert!(c.approx_eq(&a, 1e-14));
        let c = matmul(2.0, &i, &a).unwrap();
        let mut a2 = a.clone();
        scale_in_place(&mut a2, 2.0);
        assert!(c.approx_eq(&a2, 1e-14));
        assert!(matmul(1.0, &a, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = example();
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let s = add(&a, &b).unwrap();
        let d = sub(&s, &b).unwrap();
        assert!(d.approx_eq(&a, 1e-14));
        assert!(add(&a, &Matrix::zeros(2, 3)).is_err());
        assert!(sub(&a, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn triangular_extraction() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j + 1) as f64);
        let l = lower_triangular(&a, false).unwrap();
        assert_eq!(l[(2, 0)], a[(2, 0)]);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 1)], a[(1, 1)]);
        let lu = lower_triangular(&a, true).unwrap();
        assert_eq!(lu[(1, 1)], 1.0);
        let u = upper_triangular(&a, false).unwrap();
        assert_eq!(u[(0, 2)], a[(0, 2)]);
        assert_eq!(u[(2, 0)], 0.0);
        assert!(lower_triangular(&Matrix::zeros(2, 3), false).is_err());
        assert!(upper_triangular(&Matrix::zeros(2, 3), false).is_err());
    }

    #[test]
    fn forward_backward_substitution() {
        let l = example(); // lower triangular with rows [2 0 0; 1 3 0; 4 5 6]
        let l = lower_triangular(&l, false).unwrap();
        let b = vec![2.0, 5.0, 32.0];
        let x = forward_substitution(&l, &b, false).unwrap();
        // 2x0 = 2 -> 1; x0 + 3x1 = 5 -> 4/3; 4x0+5x1+6x2 = 32
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 4.0 / 3.0).abs() < 1e-12);
        let u = l.transposed();
        let y = backward_substitution(&u, &b, false).unwrap();
        // check U*y == b
        for i in 0..3 {
            let mut acc = 0.0;
            for k in 0..3 {
                acc += u.get(i, k) * y[k];
            }
            assert!((acc - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn substitution_rejects_singular() {
        let mut l = lower_triangular(&example(), false).unwrap();
        l.set(1, 1, 0.0);
        assert!(forward_substitution(&l, &[1.0, 1.0, 1.0], false).is_err());
        let u = l.transposed();
        assert!(backward_substitution(&u, &[1.0, 1.0, 1.0], false).is_err());
    }

    #[test]
    fn unit_diagonal_substitution_ignores_diagonal() {
        let mut l = lower_triangular(&example(), false).unwrap();
        l.set(0, 0, 0.0); // would be singular if the diagonal were used
        let x = forward_substitution(&l, &[1.0, 1.0, 1.0], true).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangular_inverse_reference() {
        let l = lower_triangular(&example(), false).unwrap();
        let inv = invert_lower_triangular(&l, false).unwrap();
        let prod = matmul(1.0, &l, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-12));
        // unit-diagonal variant
        let lu = lower_triangular(&example(), true).unwrap();
        let invu = invert_lower_triangular(&lu, true).unwrap();
        let produ = matmul(1.0, &lu, &invu).unwrap();
        assert!(produ.approx_eq(&Matrix::identity(3), 1e-12));
    }
}
