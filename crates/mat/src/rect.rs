//! Axis-aligned block descriptors.

/// An axis-aligned rectangular block of a matrix, in element coordinates.
///
/// `Rect` is used to carve sub-blocks out of matrices (FLAME-style algorithm
/// partitionings) and to check that the operands of an in-place BLAS call on a
/// single parent matrix do not alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// First row of the block.
    pub row: usize,
    /// First column of the block.
    pub col: usize,
    /// Number of rows in the block.
    pub rows: usize,
    /// Number of columns in the block.
    pub cols: usize,
}

impl Rect {
    /// Creates a new block descriptor.
    pub fn new(row: usize, col: usize, rows: usize, cols: usize) -> Self {
        Rect {
            row,
            col,
            rows,
            cols,
        }
    }

    /// The block covering an entire `rows x cols` matrix.
    pub fn full(rows: usize, cols: usize) -> Self {
        Rect::new(0, 0, rows, cols)
    }

    /// Returns `true` if the block contains no elements.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Number of elements covered by the block.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Exclusive end row of the block.
    pub fn row_end(&self) -> usize {
        self.row + self.rows
    }

    /// Exclusive end column of the block.
    pub fn col_end(&self) -> usize {
        self.col + self.cols
    }

    /// Returns `true` if this block fits within a `rows x cols` parent matrix.
    pub fn fits_in(&self, rows: usize, cols: usize) -> bool {
        self.row_end() <= rows && self.col_end() <= cols
    }

    /// Returns `true` if the two blocks share at least one element position.
    ///
    /// Empty blocks never overlap anything.
    pub fn overlaps(&self, other: &Rect) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let rows_overlap = self.row < other.row_end() && other.row < self.row_end();
        let cols_overlap = self.col < other.col_end() && other.col < self.col_end();
        rows_overlap && cols_overlap
    }

    /// Returns `true` if `other` is entirely contained in this block.
    pub fn contains(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        other.row >= self.row
            && other.col >= self.col
            && other.row_end() <= self.row_end()
            && other.col_end() <= self.col_end()
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}..{}) x [{}..{})",
            self.row,
            self.row_end(),
            self.col,
            self.col_end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.row_end(), 6);
        assert_eq!(r.col_end(), 8);
        assert_eq!(r.len(), 20);
        assert!(!r.is_empty());
        assert!(Rect::new(0, 0, 0, 7).is_empty());
        assert!(r.fits_in(6, 8));
        assert!(!r.fits_in(5, 8));
        assert!(!r.fits_in(6, 7));
    }

    #[test]
    fn full_covers_matrix() {
        let r = Rect::full(3, 9);
        assert_eq!(r, Rect::new(0, 0, 3, 9));
        assert!(r.fits_in(3, 9));
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(4, 0, 4, 4);
        let c = Rect::new(3, 3, 2, 2);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        assert!(b.overlaps(&c)); // c spans rows 3..5, b rows 4..8, cols intersect
                                 // Empty blocks overlap nothing.
        let e = Rect::new(1, 1, 0, 10);
        assert!(!e.overlaps(&a));
        assert!(!a.overlaps(&e));
    }

    #[test]
    fn disjoint_column_bands() {
        let a = Rect::new(0, 0, 10, 3);
        let b = Rect::new(0, 3, 10, 3);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 8, 8);
        let inner = Rect::new(2, 2, 3, 3);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        // Empty blocks are contained anywhere.
        assert!(inner.contains(&Rect::new(100, 100, 0, 0)));
    }

    #[test]
    fn display_is_readable() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(r.to_string(), "[1..4) x [2..6)");
    }
}
