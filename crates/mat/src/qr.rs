//! Householder QR factorisation and least-squares solves.
//!
//! The paper's Modeler fits polynomials to measurements with SciPy's
//! `linalg.lstsq`.  This module is the from-scratch Rust substitute: a dense
//! Householder QR factorisation with an optional column-norm check, and a
//! least-squares driver that solves `min ||A x - b||_2` for tall systems.

use crate::{MatError, Matrix, Result};

/// A Householder QR factorisation of an `m x n` matrix with `m >= n`.
///
/// The factorisation is stored LAPACK-style: the upper triangle of `factors`
/// holds `R`, the lower trapezoid holds the essential parts of the Householder
/// vectors, and `tau` holds the scalar reflector coefficients.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    factors: Matrix,
    tau: Vec<f64>,
}

impl QrFactorization {
    /// Computes the QR factorisation of `a` (consumed).
    ///
    /// Returns an error if the matrix has more columns than rows.
    pub fn new(mut a: Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(MatError::dims(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k, rows k..m.
            let mut norm = 0.0;
            for i in k..m {
                let v = a.get(i, k);
                norm += v * v;
            }
            norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = a.get(k, k);
            let beta = -alpha.signum() * norm;
            let tau_k = (beta - alpha) / beta;
            tau[k] = tau_k;
            let inv = 1.0 / (alpha - beta);
            for i in (k + 1)..m {
                let v = a.get(i, k) * inv;
                a.set(i, k, v);
            }
            a.set(k, k, beta);
            // Apply the reflector to the trailing columns: A <- (I - tau v v^T) A.
            for j in (k + 1)..n {
                let mut dot = a.get(k, j);
                for i in (k + 1)..m {
                    dot += a.get(i, k) * a.get(i, j);
                }
                dot *= tau_k;
                let v = a.get(k, j) - dot;
                a.set(k, j, v);
                for i in (k + 1)..m {
                    let v = a.get(i, j) - a.get(i, k) * dot;
                    a.set(i, j, v);
                }
            }
        }
        Ok(QrFactorization { factors: a, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Returns the upper-triangular factor `R` as a dense `n x n` matrix.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(
            n,
            n,
            |i, j| if i <= j { self.factors.get(i, j) } else { 0.0 },
        )
    }

    /// Applies `Q^T` to a vector in place (the vector must have `m` entries).
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(MatError::dims(format!(
                "apply_qt: vector has {} entries, expected {m}",
                b.len()
            )));
        }
        for k in 0..n {
            let tau_k = self.tau[k];
            if tau_k == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..m {
                dot += self.factors.get(i, k) * b[i];
            }
            dot *= tau_k;
            b[k] -= dot;
            for i in (k + 1)..m {
                b[i] -= self.factors.get(i, k) * dot;
            }
        }
        Ok(())
    }

    /// Solves the least-squares problem `min ||A x - b||` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(MatError::dims(format!(
                "solve: rhs has {} entries, expected {m}",
                b.len()
            )));
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb)?;
        // Back substitution with R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = qtb[i];
            for j in (i + 1)..n {
                acc -= self.factors.get(i, j) * x[j];
            }
            let d = self.factors.get(i, i);
            if d.abs() < 1e-300 {
                return Err(MatError::numerical(
                    "rank-deficient least-squares system (zero diagonal in R)",
                ));
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// Estimates the rank of the factored matrix by counting diagonal entries
    /// of `R` that are larger than `tol * max_diag`.
    pub fn rank(&self, tol: f64) -> usize {
        let n = self.cols();
        let mut max_diag: f64 = 0.0;
        for i in 0..n {
            max_diag = max_diag.max(self.factors.get(i, i).abs());
        }
        if max_diag == 0.0 {
            return 0;
        }
        (0..n)
            .filter(|&i| self.factors.get(i, i).abs() > tol * max_diag)
            .count()
    }
}

/// Solves the dense least-squares problem `min_x ||A x - b||_2`.
///
/// `a` is an `m x n` matrix with `m >= n`; `b` has `m` entries.  A thin
/// regularisation is applied when the system is numerically rank deficient so
/// the Modeler never aborts mid-fit on a degenerate sample set (mirroring the
/// robustness of SVD-based `lstsq`).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match QrFactorization::new(a.clone()).and_then(|qr| qr.solve(b)) {
        Ok(x) => Ok(x),
        Err(MatError::Numerical { .. }) => lstsq_regularized(a, b, 1e-10),
        Err(e) => Err(e),
    }
}

/// Ridge-regularised least squares: solves `(A^T A + lambda I) x = A^T b`.
///
/// Used as the fallback for rank-deficient systems and directly useful for
/// noisy fits with nearly collinear basis functions.
pub fn lstsq_regularized(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(MatError::dims(format!(
            "lstsq: rhs has {} entries, expected {m}",
            b.len()
        )));
    }
    // Normal equations; fine for the small n (< 10) used by polynomial fits.
    let mut ata = Matrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..m {
                acc += a.get(k, i) * a.get(k, j);
            }
            ata.set(i, j, acc + if i == j { lambda } else { 0.0 });
        }
        let mut acc = 0.0;
        for k in 0..m {
            acc += a.get(k, i) * b[k];
        }
        atb[i] = acc;
    }
    // Cholesky-free: solve with QR of the (small) normal matrix.
    let qr = QrFactorization::new(ata)?;
    qr.solve(&atb)
}

/// Builds the Vandermonde-style design matrix for a polynomial basis.
///
/// `points` holds one row per sample (each row is a point in `dim` dimensions)
/// and `exponents` lists the monomials as exponent tuples.  Entry `(s, t)` of
/// the result is `prod_d points[s][d] ^ exponents[t][d]`.
pub fn design_matrix(points: &[Vec<f64>], exponents: &[Vec<u32>]) -> Result<Matrix> {
    let m = points.len();
    let n = exponents.len();
    if m == 0 || n == 0 {
        return Err(MatError::dims("design_matrix: empty input".to_string()));
    }
    let dim = points[0].len();
    for e in exponents {
        if e.len() != dim {
            return Err(MatError::dims(
                "design_matrix: exponent arity does not match point dimension".to_string(),
            ));
        }
    }
    let mut a = Matrix::zeros(m, n);
    for (s, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(MatError::dims(
                "design_matrix: inconsistent point dimension".to_string(),
            ));
        }
        for (t, e) in exponents.iter().enumerate() {
            let mut v = 1.0;
            for d in 0..dim {
                v *= p[d].powi(e[d] as i32);
            }
            a.set(s, t, v);
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    #[test]
    fn qr_reconstruction_r_is_triangular() {
        let a = Matrix::from_rows(
            4,
            3,
            &[
                1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 10.0, //
                2.0, -1.0, 0.5,
            ],
        )
        .unwrap();
        let qr = QrFactorization::new(a).unwrap();
        let r = qr.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        assert_eq!(qr.rank(1e-12), 3);
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        assert!(QrFactorization::new(Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn exact_solve_square_system() {
        // A x = b with known x.
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = lstsq(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn overdetermined_quadratic_fit() {
        // Fit y = 2 + 3t + 0.5 t^2 through exact samples; lstsq must recover it.
        let ts: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let points: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t]).collect();
        let exps = vec![vec![0u32], vec![1], vec![2]];
        let a = design_matrix(&points, &exps).unwrap();
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t + 0.5 * t * t).collect();
        let c = lstsq(&a, &b).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] - 3.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a =
            Matrix::from_rows(5, 2, &[1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let b = vec![1.1, 1.9, 3.2, 3.9, 5.1];
        let x = lstsq(&a, &b).unwrap();
        // residual r = b - A x must satisfy A^T r ~ 0
        let mut r = b.clone();
        for i in 0..5 {
            for j in 0..2 {
                r[i] -= a[(i, j)] * x[j];
            }
        }
        for j in 0..2 {
            let mut dot = 0.0;
            for i in 0..5 {
                dot += a[(i, j)] * r[i];
            }
            assert!(dot.abs() < 1e-10, "column {j} not orthogonal: {dot}");
        }
    }

    #[test]
    fn rank_deficient_falls_back_to_regularized() {
        // Two identical columns: plain QR solve would fail; lstsq must not.
        let a = Matrix::from_rows(4, 2, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]).unwrap();
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let x = lstsq(&a, &b).unwrap();
        // Any solution with x0 + x1 = 2 is acceptable; check the fit quality.
        for i in 0..4 {
            let pred = a[(i, 0)] * x[0] + a[(i, 1)] * x[1];
            assert!((pred - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn design_matrix_multivariate() {
        let points = vec![vec![2.0, 3.0], vec![1.0, 5.0]];
        let exps = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]];
        let a = design_matrix(&points, &exps).unwrap();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(0, 3)], 6.0);
        assert_eq!(a[(1, 3)], 5.0);
        assert!(design_matrix(&[], &exps).is_err());
        assert!(design_matrix(&points, &[vec![1]]).is_err());
    }

    #[test]
    fn apply_qt_preserves_norm() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).sin());
        let qr = QrFactorization::new(a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let norm_before: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut qtb = b.clone();
        qr.apply_qt(&mut qtb).unwrap();
        let norm_after: f64 = qtb.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm_before - norm_after).abs() < 1e-10);
        assert!(qr.apply_qt(&mut [0.0; 3]).is_err());
    }

    #[test]
    fn qr_matches_naive_normal_equations_on_well_conditioned_fit() {
        // Cross-validate QR lstsq against the regularised normal-equation path.
        let points: Vec<Vec<f64>> = (1..30)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let exps = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![2, 0], vec![0, 2]];
        let a = design_matrix(&points, &exps).unwrap();
        let b: Vec<f64> = points
            .iter()
            .map(|p| 1.0 + 2.0 * p[0] + 3.0 * p[1] + 0.1 * p[0] * p[0] - 0.2 * p[1] * p[1])
            .collect();
        let x1 = lstsq(&a, &b).unwrap();
        let x2 = lstsq_regularized(&a, &b, 1e-12).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
        let _ = matmul(1.0, &a, &Matrix::zeros(exps.len(), 1)).unwrap();
    }
}
