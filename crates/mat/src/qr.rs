//! Householder QR factorisation and least-squares solves.
//!
//! The paper's Modeler fits polynomials to measurements with SciPy's
//! `linalg.lstsq`.  This module is the from-scratch Rust substitute: a dense
//! Householder QR factorisation with an optional column-norm check, and
//! least-squares drivers that solve `min ||A x - b||_2` for tall systems.
//!
//! Model construction solves the *same* system against five right-hand sides
//! (one per statistical quantity), so the factorisation and the solve are
//! deliberately decoupled: [`QrFactorization::new`] factors once,
//! [`QrFactorization::solve_into`] / [`QrFactorization::solve_many`] back-solve
//! any number of right-hand sides against the shared factors, and the
//! rank-deficient ridge fallback ([`QrFactorization::ridge_factorization`])
//! is likewise derived from the stored `R` instead of re-reducing the
//! original matrix.

use crate::{MatError, Matrix, Result};

/// A Householder QR factorisation of an `m x n` matrix with `m >= n`.
///
/// The factorisation is stored LAPACK-style: the upper triangle of `factors`
/// holds `R`, the lower trapezoid holds the essential parts of the Householder
/// vectors, and `tau` holds the scalar reflector coefficients.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    factors: Matrix,
    tau: Vec<f64>,
}

impl QrFactorization {
    /// Computes the QR factorisation of `a` (consumed).
    ///
    /// Returns an error if the matrix has more columns than rows.
    pub fn new(mut a: Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(MatError::dims(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut tau = vec![0.0; n];
        // The reduction works on whole column slices: the inner loops below
        // are zips over contiguous `&[f64]` ranges, which the optimiser can
        // keep free of per-element bounds checks (this factorisation runs
        // once per region fit — it is the flop core of model construction).
        let ld = a.ld();
        let data = a.as_mut_slice();
        for k in 0..n {
            // Build the Householder reflector for column k, rows k..m.
            let (head, tail) = data.split_at_mut(k * ld + ld);
            let col_k = &mut head[k * ld..k * ld + m];
            let mut norm = 0.0;
            for &v in &col_k[k..] {
                norm += v * v;
            }
            norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = col_k[k];
            let beta = -alpha.signum() * norm;
            let tau_k = (beta - alpha) / beta;
            tau[k] = tau_k;
            let inv = 1.0 / (alpha - beta);
            for v in &mut col_k[k + 1..] {
                *v *= inv;
            }
            col_k[k] = beta;
            // Apply the reflector to the trailing columns: A <- (I - tau v v^T) A.
            let v_tail = &col_k[k + 1..];
            for j in (k + 1)..n {
                let col_j = &mut tail[(j - k - 1) * ld..(j - k - 1) * ld + m];
                let mut dot = col_j[k];
                for (&vi, &aj) in v_tail.iter().zip(&col_j[k + 1..]) {
                    dot += vi * aj;
                }
                dot *= tau_k;
                col_j[k] -= dot;
                for (&vi, aj) in v_tail.iter().zip(&mut col_j[k + 1..]) {
                    *aj -= vi * dot;
                }
            }
        }
        Ok(QrFactorization { factors: a, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.factors.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.factors.cols()
    }

    /// Returns the upper-triangular factor `R` as a dense `n x n` matrix.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(
            n,
            n,
            |i, j| if i <= j { self.factors.get(i, j) } else { 0.0 },
        )
    }

    /// Consumes the factorisation and returns the packed factor matrix,
    /// handing its backing buffer back to the caller (workspace recycling).
    pub fn into_factors(self) -> Matrix {
        self.factors
    }

    /// Applies `Q^T` to a vector in place (the vector must have `m` entries).
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(MatError::dims(format!(
                "apply_qt: vector has {} entries, expected {m}",
                b.len()
            )));
        }
        let ld = self.factors.ld();
        let data = self.factors.as_slice();
        for k in 0..n {
            let tau_k = self.tau[k];
            if tau_k == 0.0 {
                continue;
            }
            let v_tail = &data[k * ld + k + 1..k * ld + m];
            let mut dot = b[k];
            for (&vi, &bi) in v_tail.iter().zip(&b[k + 1..]) {
                dot += vi * bi;
            }
            dot *= tau_k;
            b[k] -= dot;
            for (&vi, bi) in v_tail.iter().zip(&mut b[k + 1..]) {
                *bi -= vi * dot;
            }
        }
        Ok(())
    }

    /// Solves `min ||A x - b||` in place against the stored factors.
    ///
    /// `b` (length `m`) is overwritten with `Q^T b`; the solution lands in
    /// `x` (length `n`).  This is the allocation-free core the multi-RHS
    /// drivers are built on.
    pub fn solve_into(&self, b: &mut [f64], x: &mut [f64]) -> Result<()> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(MatError::dims(format!(
                "solve: rhs has {} entries, expected {m}",
                b.len()
            )));
        }
        if x.len() != n {
            return Err(MatError::dims(format!(
                "solve: solution has {} entries, expected {n}",
                x.len()
            )));
        }
        self.apply_qt(b)?;
        // Back substitution with R (row i of the upper triangle is a stride-ld
        // walk through the packed factors).
        let ld = self.factors.ld();
        let data = self.factors.as_slice();
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= data[j * ld + i] * x[j];
            }
            let d = data[i * ld + i];
            if d.abs() < 1e-300 {
                return Err(MatError::numerical(
                    "rank-deficient least-squares system (zero diagonal in R)",
                ));
            }
            x[i] = acc / d;
        }
        Ok(())
    }

    /// Solves the least-squares problem `min ||A x - b||` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut qtb = b.to_vec();
        let mut x = vec![0.0; self.cols()];
        self.solve_into(&mut qtb, &mut x)?;
        Ok(x)
    }

    /// Solves the least-squares problem for several right-hand sides against
    /// the factors of a **single** factorisation (the multi-RHS driver the
    /// fit engine uses: one QR, five back-solves).
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let n = self.cols();
        let mut qtb = vec![0.0; self.rows()];
        let mut solutions = Vec::with_capacity(rhs.len());
        for b in rhs {
            if b.len() != self.rows() {
                return Err(MatError::dims(format!(
                    "solve_many: rhs has {} entries, expected {}",
                    b.len(),
                    self.rows()
                )));
            }
            qtb.copy_from_slice(b);
            let mut x = vec![0.0; n];
            self.solve_into(&mut qtb, &mut x)?;
            solutions.push(x);
        }
        Ok(solutions)
    }

    /// QR factorisation of the ridge-regularised normal matrix
    /// `R^T R + lambda I` (which equals `A^T A + lambda I`, since `A = Q R`).
    ///
    /// This is the rank-deficient fallback: instead of re-reducing the
    /// original `m x n` matrix into fresh normal equations (`O(m n^2)` work
    /// plus a second traversal of `A`), the `n x n` normal matrix is derived
    /// from the already-computed `R` in `O(n^3)`.
    pub fn ridge_factorization(&self, lambda: f64) -> Result<QrFactorization> {
        let n = self.cols();
        let mut normal = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    acc += self.factors.get(k, i) * self.factors.get(k, j);
                }
                if i == j {
                    acc += lambda;
                }
                normal.set(i, j, acc);
            }
        }
        QrFactorization::new(normal)
    }

    /// Computes `R^T y` from the leading `n` entries of `qtb` into `out`.
    ///
    /// With `qtb = Q^T b` this is `A^T b`, i.e. the right-hand side of the
    /// normal equations, again without touching the original matrix.
    pub fn rt_apply(&self, qtb: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.cols();
        if qtb.len() < n || out.len() != n {
            return Err(MatError::dims(format!(
                "rt_apply: got {} rhs / {} out entries for n = {n}",
                qtb.len(),
                out.len()
            )));
        }
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &q) in qtb.iter().enumerate().take(j + 1) {
                acc += self.factors.get(k, j) * q;
            }
            *o = acc;
        }
        Ok(())
    }

    /// Estimates the rank of the factored matrix by counting diagonal entries
    /// of `R` that are larger than `tol * max_diag`.
    pub fn rank(&self, tol: f64) -> usize {
        let n = self.cols();
        let mut max_diag: f64 = 0.0;
        for i in 0..n {
            max_diag = max_diag.max(self.factors.get(i, i).abs());
        }
        if max_diag == 0.0 {
            return 0;
        }
        (0..n)
            .filter(|&i| self.factors.get(i, i).abs() > tol * max_diag)
            .count()
    }
}

/// Ridge parameter applied when a least-squares system is numerically rank
/// deficient (mirrors the robustness of SVD-based `lstsq`).
pub const LSTSQ_RIDGE_LAMBDA: f64 = 1e-10;

/// Solves the dense least-squares problem `min_x ||A x - b||_2`.
///
/// `a` is an `m x n` matrix with `m >= n` (consumed — the factorisation
/// overwrites it in place, so no defensive copy is taken); `b` has `m`
/// entries.  A thin regularisation is applied when the system is numerically
/// rank deficient so the Modeler never aborts mid-fit on a degenerate sample
/// set.
pub fn lstsq(a: Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let qr = QrFactorization::new(a)?;
    let mut qtb = b.to_vec();
    let mut x = vec![0.0; qr.cols()];
    match qr.solve_into(&mut qtb, &mut x) {
        Ok(()) => Ok(x),
        // `solve_into` fails only in back substitution, after `qtb` already
        // holds `Q^T b`, so the ridge fallback can reuse it as-is.
        Err(MatError::Numerical { .. }) => ridge_solve_from(&qr, &qtb, LSTSQ_RIDGE_LAMBDA),
        Err(e) => Err(e),
    }
}

/// Solves `min ||A x - b||_2` for several right-hand sides with a **single**
/// factorisation of `a` (consumed).
///
/// Equivalent to calling [`lstsq`] once per right-hand side — including the
/// ridge fallback for rank-deficient systems, whose regularised normal
/// factorisation is likewise computed only once — at a fifth of the cost for
/// the Modeler's five quantity fits.
pub fn lstsq_multi(a: Matrix, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let qr = QrFactorization::new(a)?;
    let n = qr.cols();
    let mut qtb = vec![0.0; qr.rows()];
    let mut ridge: Option<QrFactorization> = None;
    let mut solutions = Vec::with_capacity(rhs.len());
    for b in rhs {
        if b.len() != qr.rows() {
            return Err(MatError::dims(format!(
                "lstsq_multi: rhs has {} entries, expected {}",
                b.len(),
                qr.rows()
            )));
        }
        qtb.copy_from_slice(b);
        let mut x = vec![0.0; n];
        match qr.solve_into(&mut qtb, &mut x) {
            Ok(()) => solutions.push(x),
            Err(MatError::Numerical { .. }) => {
                // Rank deficiency is a property of `A` alone, so the ridge
                // factorisation is shared across every right-hand side.
                if ridge.is_none() {
                    ridge = Some(qr.ridge_factorization(LSTSQ_RIDGE_LAMBDA)?);
                }
                // lint: allow(unwrap): the ridge factorization was installed two lines above
                let rqr = ridge.as_ref().expect("just installed");
                let mut atb = vec![0.0; n];
                qr.rt_apply(&qtb, &mut atb)?;
                solutions.push(rqr.solve(&atb)?);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(solutions)
}

/// Ridge fallback shared by [`lstsq`] and [`lstsq_multi`]: solves
/// `(R^T R + lambda I) x = R^T (Q^T b)` from the stored factors.
fn ridge_solve_from(qr: &QrFactorization, qtb: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let rqr = qr.ridge_factorization(lambda)?;
    let mut atb = vec![0.0; qr.cols()];
    qr.rt_apply(qtb, &mut atb)?;
    rqr.solve(&atb)
}

/// Ridge-regularised least squares: solves `(A^T A + lambda I) x = A^T b`.
///
/// Directly useful for noisy fits with nearly collinear basis functions; the
/// rank-deficient fallback inside [`lstsq`] computes the same system from the
/// QR factors instead of re-reducing `a`.
pub fn lstsq_regularized(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(MatError::dims(format!(
            "lstsq: rhs has {} entries, expected {m}",
            b.len()
        )));
    }
    // Normal equations; fine for the small n (< 10) used by polynomial fits.
    let mut ata = Matrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..m {
                acc += a.get(k, i) * a.get(k, j);
            }
            ata.set(i, j, acc + if i == j { lambda } else { 0.0 });
        }
        let mut acc = 0.0;
        for k in 0..m {
            acc += a.get(k, i) * b[k];
        }
        atb[i] = acc;
    }
    // Cholesky-free: solve with QR of the (small) normal matrix.
    let qr = QrFactorization::new(ata)?;
    qr.solve(&atb)
}

/// A reusable Vandermonde design-matrix builder for a fixed monomial basis.
///
/// Row filling uses a per-point **power ladder**: for every dimension the
/// powers `x^0 .. x^max_exp` are produced with one multiplication each, and
/// every matrix entry is then a product of ladder lookups — no `powi` per
/// entry.  The ladder scratch lives in the builder, so filling a matrix of
/// any size performs no allocation.
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    dim: usize,
    /// Number of monomial terms (matrix columns).
    terms: usize,
    /// Term-major exponent table, `terms * dim` entries.
    exponents: Vec<u32>,
    /// Per-dimension largest exponent.
    max_exp: Vec<u32>,
    /// Ladder scratch, `dim * stride` entries with `stride = max(max_exp)+1`.
    pows: Vec<f64>,
    stride: usize,
    /// Power-column scratch for [`DesignBuilder::fill_matrix`]:
    /// `dim * stride` columns of `m` entries each, column `(d, e)` holding
    /// `x_d^e` for every point.
    powcols: Vec<f64>,
    /// Gather scratch for one coordinate column (`m` entries).
    xcol: Vec<f64>,
}

impl DesignBuilder {
    /// Creates a builder for the given monomial basis.
    ///
    /// Returns an error when the basis is empty or an exponent tuple does not
    /// match `dim`.  A zero-dimensional basis (the single empty tuple) is
    /// valid and produces all-ones columns, matching the constant fits the
    /// plain `powi` design loop supported.
    pub fn new(dim: usize, exponents: &[Vec<u32>]) -> Result<DesignBuilder> {
        if exponents.is_empty() {
            return Err(MatError::dims("design basis: empty input".to_string()));
        }
        let mut flat = Vec::with_capacity(exponents.len() * dim);
        let mut max_exp = vec![0u32; dim];
        for e in exponents {
            if e.len() != dim {
                return Err(MatError::dims(
                    "design_matrix: exponent arity does not match point dimension".to_string(),
                ));
            }
            for (d, &x) in e.iter().enumerate() {
                flat.push(x);
                max_exp[d] = max_exp[d].max(x);
            }
        }
        let stride = max_exp.iter().max().copied().unwrap_or(0) as usize + 1;
        Ok(DesignBuilder {
            dim,
            terms: exponents.len(),
            exponents: flat,
            max_exp,
            pows: vec![1.0; dim * stride],
            stride,
            powcols: Vec::new(),
            xcol: Vec::new(),
        })
    }

    /// Number of monomial terms (matrix columns).
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// Point dimensionality the basis expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Fills row `row` of `a` with the basis evaluated at `point`.
    ///
    /// Panics if the point arity or the matrix shape does not match the basis
    /// (`a` must have at least `row + 1` rows and exactly [`terms`] columns).
    ///
    /// [`terms`]: DesignBuilder::terms
    pub fn fill_row(&mut self, a: &mut Matrix, row: usize, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "design point has wrong arity");
        assert_eq!(a.cols(), self.terms(), "design matrix has wrong width");
        assert!(row < a.rows(), "design row out of range");
        for d in 0..self.dim {
            let ladder = &mut self.pows[d * self.stride..(d + 1) * self.stride];
            let mut p = 1.0;
            ladder[0] = 1.0;
            for e in 1..=self.max_exp[d] as usize {
                p *= point[d];
                ladder[e] = p;
            }
        }
        let ld = a.ld();
        let data = a.as_mut_slice();
        for t in 0..self.terms() {
            let exps = &self.exponents[t * self.dim..(t + 1) * self.dim];
            let mut v = 1.0;
            for (d, &e) in exps.iter().enumerate() {
                v *= self.pows[d * self.stride + e as usize];
            }
            data[t * ld + row] = v;
        }
    }

    /// Fills the whole design matrix from flat point-major coordinates
    /// (`a.rows() * dim` entries, point `i` at `points[i*dim..(i+1)*dim]`).
    ///
    /// Column-oriented counterpart of [`DesignBuilder::fill_row`] producing
    /// bit-identical values: per-dimension power **columns** are laddered once
    /// (`x^e = x^(e-1) * x`, the same multiplication chain as the row
    /// ladders), and each term column is then an elementwise product of power
    /// columns — contiguous loads and stores the optimiser can vectorise.
    pub fn fill_matrix(&mut self, a: &mut Matrix, points: &[f64]) {
        let m = a.rows();
        assert_eq!(points.len(), m * self.dim, "flat points have wrong length");
        assert_eq!(a.cols(), self.terms(), "design matrix has wrong width");
        self.powcols.clear();
        self.powcols.resize(self.dim * self.stride * m, 0.0);
        self.xcol.resize(m, 0.0);
        for d in 0..self.dim {
            for (i, x) in self.xcol.iter_mut().enumerate() {
                *x = points[i * self.dim + d];
            }
            let cols = &mut self.powcols[d * self.stride * m..(d + 1) * self.stride * m];
            let (ones, rest) = cols.split_at_mut(m);
            ones.fill(1.0);
            let mut prev: &[f64] = ones;
            let mut rest = rest;
            for _e in 1..=self.max_exp[d] as usize {
                let (cur, tail) = rest.split_at_mut(m);
                for ((c, &p), &x) in cur.iter_mut().zip(prev).zip(&self.xcol) {
                    *c = p * x;
                }
                prev = cur;
                rest = tail;
            }
        }
        let ld = a.ld();
        let data = a.as_mut_slice();
        for t in 0..self.terms() {
            let exps = &self.exponents[t * self.dim..(t + 1) * self.dim];
            let col = &mut data[t * ld..t * ld + m];
            let Some(&e0) = exps.first() else {
                // Zero-dimensional basis: the empty product is 1.
                col.fill(1.0);
                continue;
            };
            let first = &self.powcols[(e0 as usize) * m..(e0 as usize + 1) * m];
            col.copy_from_slice(first);
            for (d, &e) in exps.iter().enumerate().skip(1) {
                let offset = (d * self.stride + e as usize) * m;
                for (c, &p) in col.iter_mut().zip(&self.powcols[offset..offset + m]) {
                    *c *= p;
                }
            }
        }
    }
}

/// Builds the Vandermonde-style design matrix for a polynomial basis.
///
/// `points` holds one row per sample (each row is a point in `dim` dimensions)
/// and `exponents` lists the monomials as exponent tuples.  Entry `(s, t)` of
/// the result is `prod_d points[s][d] ^ exponents[t][d]`, computed via
/// [`DesignBuilder`]'s power ladder.
pub fn design_matrix(points: &[Vec<f64>], exponents: &[Vec<u32>]) -> Result<Matrix> {
    let m = points.len();
    let n = exponents.len();
    if m == 0 || n == 0 {
        return Err(MatError::dims("design_matrix: empty input".to_string()));
    }
    let dim = points[0].len();
    let mut builder = DesignBuilder::new(dim, exponents)?;
    let mut a = Matrix::zeros(m, n);
    for (s, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(MatError::dims(
                "design_matrix: inconsistent point dimension".to_string(),
            ));
        }
        builder.fill_row(&mut a, s, p);
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    #[test]
    fn qr_reconstruction_r_is_triangular() {
        let a = Matrix::from_rows(
            4,
            3,
            &[
                1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 10.0, //
                2.0, -1.0, 0.5,
            ],
        )
        .unwrap();
        let qr = QrFactorization::new(a).unwrap();
        let r = qr.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        assert_eq!(qr.rank(1e-12), 3);
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        assert!(QrFactorization::new(Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn exact_solve_square_system() {
        // A x = b with known x.
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = lstsq(a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn overdetermined_quadratic_fit() {
        // Fit y = 2 + 3t + 0.5 t^2 through exact samples; lstsq must recover it.
        let ts: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let points: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t]).collect();
        let exps = vec![vec![0u32], vec![1], vec![2]];
        let a = design_matrix(&points, &exps).unwrap();
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t + 0.5 * t * t).collect();
        let c = lstsq(a, &b).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] - 3.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a =
            Matrix::from_rows(5, 2, &[1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let b = vec![1.1, 1.9, 3.2, 3.9, 5.1];
        let x = lstsq(a.clone(), &b).unwrap();
        // residual r = b - A x must satisfy A^T r ~ 0
        let mut r = b.clone();
        for i in 0..5 {
            for j in 0..2 {
                r[i] -= a[(i, j)] * x[j];
            }
        }
        for j in 0..2 {
            let mut dot = 0.0;
            for i in 0..5 {
                dot += a[(i, j)] * r[i];
            }
            assert!(dot.abs() < 1e-10, "column {j} not orthogonal: {dot}");
        }
    }

    #[test]
    fn rank_deficient_falls_back_to_regularized() {
        // Two identical columns: plain QR solve would fail; lstsq must not.
        let a = Matrix::from_rows(4, 2, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]).unwrap();
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let x = lstsq(a.clone(), &b).unwrap();
        // Any solution with x0 + x1 = 2 is acceptable; check the fit quality.
        for i in 0..4 {
            let pred = a[(i, 0)] * x[0] + a[(i, 1)] * x[1];
            assert!((pred - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn factor_reusing_ridge_matches_normal_equation_ridge() {
        // The factor-derived ridge fallback (R^T R + lambda I) must agree with
        // the explicit normal-equation construction on the same system.
        let a = Matrix::from_rows(
            5,
            3,
            &[
                1.0, 1.0, 2.0, //
                1.0, 2.0, 4.0, //
                1.0, 3.0, 6.0, //
                1.0, 4.0, 8.0, //
                1.0, 5.0, 10.0,
            ],
        )
        .unwrap();
        let b = vec![1.0, 2.0, 2.5, 4.0, 5.5];
        let lambda = 1e-8;
        let via_factors = {
            let qr = QrFactorization::new(a.clone()).unwrap();
            let mut qtb = b.clone();
            qr.apply_qt(&mut qtb).unwrap();
            super::ridge_solve_from(&qr, &qtb, lambda).unwrap()
        };
        let via_normal = lstsq_regularized(&a, &b, lambda).unwrap();
        for (u, v) in via_factors.iter().zip(&via_normal) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn solve_many_matches_independent_solves() {
        let a = Matrix::from_fn(8, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).cos());
        let rhs: Vec<Vec<f64>> = (0..5)
            .map(|q| (0..8).map(|i| (i * q) as f64 * 0.3 - 1.0).collect())
            .collect();
        let qr = QrFactorization::new(a.clone()).unwrap();
        let many = qr.solve_many(&rhs).unwrap();
        assert_eq!(many.len(), 5);
        for (b, x_many) in rhs.iter().zip(&many) {
            let x_single = lstsq(a.clone(), b).unwrap();
            assert_eq!(&x_single, x_many, "multi-RHS solve must match lstsq");
        }
        assert!(qr.solve_many(&[vec![0.0; 3]]).is_err());
    }

    #[test]
    fn lstsq_multi_matches_lstsq_on_rank_deficient_systems() {
        // Duplicate columns force the ridge fallback; the shared-factor multi
        // driver must produce bit-identical solutions to per-RHS lstsq.
        let a = Matrix::from_rows(
            6,
            3,
            &[
                1.0, 2.0, 2.0, //
                1.0, 3.0, 3.0, //
                1.0, 4.0, 4.0, //
                1.0, 5.0, 5.0, //
                1.0, 6.0, 6.0, //
                1.0, 7.0, 7.0,
            ],
        )
        .unwrap();
        let rhs: Vec<Vec<f64>> = (0..5)
            .map(|q| (0..6).map(|i| ((i + q) as f64).sin() + 2.0).collect())
            .collect();
        let many = lstsq_multi(a.clone(), &rhs).unwrap();
        for (b, x_many) in rhs.iter().zip(&many) {
            let x_single = lstsq(a.clone(), b).unwrap();
            assert_eq!(&x_single, x_many);
        }
    }

    #[test]
    fn design_matrix_multivariate() {
        let points = vec![vec![2.0, 3.0], vec![1.0, 5.0]];
        let exps = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]];
        let a = design_matrix(&points, &exps).unwrap();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(0, 3)], 6.0);
        assert_eq!(a[(1, 3)], 5.0);
        assert!(design_matrix(&[], &exps).is_err());
        assert!(design_matrix(&points, &[vec![1]]).is_err());
    }

    #[test]
    fn design_builder_ladder_matches_powi() {
        let points = vec![vec![0.3, 1.7], vec![2.0, -0.5], vec![1.0, 0.0]];
        let exps = vec![
            vec![0u32, 0],
            vec![3, 1],
            vec![1, 4],
            vec![2, 2],
            vec![5, 0],
        ];
        let a = design_matrix(&points, &exps).unwrap();
        for (s, p) in points.iter().enumerate() {
            for (t, e) in exps.iter().enumerate() {
                let reference = p[0].powi(e[0] as i32) * p[1].powi(e[1] as i32);
                let rel = (a[(s, t)] - reference).abs() / reference.abs().max(1e-300);
                assert!(rel < 1e-12, "entry ({s},{t}): {} vs {reference}", a[(s, t)]);
            }
        }
        let mut b = DesignBuilder::new(2, &exps).unwrap();
        assert_eq!(b.terms(), 5);
        assert_eq!(b.dim(), 2);
        // Refilling with the same builder reuses the ladder scratch.
        let mut m = Matrix::zeros(1, 5);
        b.fill_row(&mut m, 0, &[0.3, 1.7]);
        for t in 0..5 {
            assert_eq!(m[(0, t)], a[(0, t)]);
        }
        assert!(DesignBuilder::new(0, &exps).is_err());
        assert!(DesignBuilder::new(3, &exps).is_err());
    }

    #[test]
    fn zero_dimensional_basis_builds_ones_column() {
        // A dim-0 basis (single empty exponent tuple) is the constant fit's
        // design: one all-ones column, on both fill paths.
        let exps = vec![vec![]];
        let points = vec![vec![], vec![], vec![]];
        let a = design_matrix(&points, &exps).unwrap();
        for s in 0..3 {
            assert_eq!(a[(s, 0)], 1.0);
        }
        let mut builder = DesignBuilder::new(0, &exps).unwrap();
        assert_eq!(builder.terms(), 1);
        let mut m = Matrix::zeros(3, 1);
        builder.fill_matrix(&mut m, &[]);
        for s in 0..3 {
            assert_eq!(m[(s, 0)], 1.0);
        }
        let x = lstsq(a, &[2.0, 4.0, 6.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fill_matrix_is_bit_identical_to_fill_row() {
        let points: Vec<Vec<f64>> = (0..7)
            .map(|i| vec![0.1 * i as f64, 1.0 - 0.13 * i as f64, (i as f64).sin()])
            .collect();
        let exps = vec![
            vec![0u32, 0, 0],
            vec![1, 0, 2],
            vec![2, 1, 0],
            vec![0, 3, 1],
            vec![2, 2, 2],
        ];
        let by_rows = design_matrix(&points, &exps).unwrap();
        let flat: Vec<f64> = points.iter().flatten().copied().collect();
        let mut builder = DesignBuilder::new(3, &exps).unwrap();
        let mut by_cols = Matrix::zeros(points.len(), exps.len());
        builder.fill_matrix(&mut by_cols, &flat);
        for s in 0..points.len() {
            for t in 0..exps.len() {
                assert_eq!(by_rows[(s, t)], by_cols[(s, t)], "entry ({s},{t})");
            }
        }
        // Refilling reuses the power-column scratch.
        builder.fill_matrix(&mut by_cols, &flat);
        assert_eq!(by_rows[(6, 4)], by_cols[(6, 4)]);
    }

    #[test]
    fn apply_qt_preserves_norm() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).sin());
        let qr = QrFactorization::new(a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let norm_before: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut qtb = b.clone();
        qr.apply_qt(&mut qtb).unwrap();
        let norm_after: f64 = qtb.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm_before - norm_after).abs() < 1e-10);
        assert!(qr.apply_qt(&mut [0.0; 3]).is_err());
    }

    #[test]
    fn qr_matches_naive_normal_equations_on_well_conditioned_fit() {
        // Cross-validate QR lstsq against the regularised normal-equation path.
        let points: Vec<Vec<f64>> = (1..30)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let exps = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![2, 0], vec![0, 2]];
        let a = design_matrix(&points, &exps).unwrap();
        let b: Vec<f64> = points
            .iter()
            .map(|p| 1.0 + 2.0 * p[0] + 3.0 * p[1] + 0.1 * p[0] * p[0] - 0.2 * p[1] * p[1])
            .collect();
        let x1 = lstsq(a.clone(), &b).unwrap();
        let x2 = lstsq_regularized(&a, &b, 1e-12).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
        let _ = matmul(1.0, &a, &Matrix::zeros(exps.len(), 1)).unwrap();
    }

    #[test]
    fn into_factors_recycles_the_backing_buffer() {
        let a = Matrix::from_fn(4, 2, |i, j| (i + 2 * j) as f64 + 0.5);
        let qr = QrFactorization::new(a).unwrap();
        let factors = qr.into_factors();
        assert_eq!(factors.rows(), 4);
        assert_eq!(factors.cols(), 2);
        let data = factors.into_data();
        assert_eq!(data.len(), 8);
        // Round-trip: the buffer can back a fresh matrix without copying.
        let again = Matrix::from_data(4, 2, data).unwrap();
        assert_eq!(again.rows(), 4);
        assert!(Matrix::from_data(3, 2, vec![0.0; 5]).is_err());
        assert!(Matrix::from_data(0, 2, vec![]).is_err());
    }
}
