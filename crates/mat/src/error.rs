//! Error type for matrix operations.

use std::fmt;

/// Errors raised by matrix construction and numerical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// A block descriptor does not fit inside its parent matrix.
    OutOfBounds {
        /// Human readable description of the offending block.
        detail: String,
    },
    /// The leading dimension is smaller than the number of rows.
    InvalidLeadingDimension {
        /// Provided leading dimension.
        ld: usize,
        /// Number of rows the leading dimension must cover.
        rows: usize,
    },
    /// A numerical routine failed (e.g. rank-deficient least-squares system).
    Numerical {
        /// Human readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            MatError::OutOfBounds { detail } => write!(f, "block out of bounds: {detail}"),
            MatError::InvalidLeadingDimension { ld, rows } => {
                write!(f, "invalid leading dimension {ld} for {rows} rows")
            }
            MatError::Numerical { detail } => write!(f, "numerical failure: {detail}"),
        }
    }
}

impl std::error::Error for MatError {}

impl MatError {
    /// Convenience constructor for [`MatError::DimensionMismatch`].
    pub fn dims(detail: impl Into<String>) -> Self {
        MatError::DimensionMismatch {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`MatError::OutOfBounds`].
    pub fn oob(detail: impl Into<String>) -> Self {
        MatError::OutOfBounds {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`MatError::Numerical`].
    pub fn numerical(detail: impl Into<String>) -> Self {
        MatError::Numerical {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = MatError::dims("A is 3x4, B is 5x6");
        assert!(e.to_string().contains("3x4"));
        let e = MatError::oob("block 10x10 at (5,5) in 8x8");
        assert!(e.to_string().contains("8x8"));
        let e = MatError::InvalidLeadingDimension { ld: 3, rows: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = MatError::numerical("singular");
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&MatError::dims("x"));
    }
}
