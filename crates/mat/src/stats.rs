//! Summary statistics for repeated measurements.
//!
//! The paper treats the performance of a routine not as a single number but as
//! a probability distribution, summarised by a handful of statistical
//! quantities (Section II-B).  This module provides that summary type; it is
//! shared by the Sampler (which produces summaries of measurements), the
//! Modeler (which fits one polynomial per quantity) and the Predictor (which
//! accumulates per-call estimates into per-algorithm predictions).

/// The statistical quantities tracked for every measured or predicted value.
///
/// The order matters: models are vector-valued with one polynomial per
/// quantity, and the repository serialises them in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantity {
    /// Smallest observed value.
    Min,
    /// Arithmetic mean.
    Mean,
    /// Median (50th percentile).
    Median,
    /// Largest observed value.
    Max,
    /// Sample standard deviation.
    StdDev,
}

impl Quantity {
    /// All quantities, in serialisation order.
    pub const ALL: [Quantity; 5] = [
        Quantity::Min,
        Quantity::Mean,
        Quantity::Median,
        Quantity::Max,
        Quantity::StdDev,
    ];

    /// Short lower-case name used in reports and the repository format.
    pub fn name(&self) -> &'static str {
        match self {
            Quantity::Min => "min",
            Quantity::Mean => "mean",
            Quantity::Median => "median",
            Quantity::Max => "max",
            Quantity::StdDev => "std",
        }
    }

    /// Parses a quantity from its short name.
    pub fn from_name(name: &str) -> Option<Quantity> {
        Quantity::ALL.into_iter().find(|q| q.name() == name)
    }

    /// Index of this quantity in [`Quantity::ALL`].
    pub fn index(&self) -> usize {
        Quantity::ALL
            .iter()
            .position(|q| q == self)
            // lint: allow(unwrap): Quantity::ALL lists every variant by definition
            .expect("quantity listed in ALL")
    }
}

/// Summary of a set of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean of the observations.
    pub mean: f64,
    /// Median of the observations.
    pub median: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Number of observations the summary was computed from.
    pub count: usize,
}

impl Summary {
    /// Computes a summary of the given observations.
    ///
    /// Returns `None` for an empty slice.  Small sample sets (up to 16
    /// observations — every Sampler repetition count the Modeler uses) are
    /// summarised in stack scratch without allocating.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        if samples.len() <= 16 {
            let mut buf = [0.0f64; 16];
            let scratch = &mut buf[..samples.len()];
            scratch.copy_from_slice(samples);
            // lint: allow(unwrap): summaries are computed from measured (finite) samples; NaN here is a harness bug worth a loud panic
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
            return Some(Summary::from_sorted(scratch));
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        // lint: allow(unwrap): summaries are computed from measured (finite) samples; NaN here is a harness bug worth a loud panic
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Some(Summary::from_sorted(&sorted))
    }

    /// Summary of an already ascending-sorted, non-empty sample slice.
    fn from_sorted(sorted: &[f64]) -> Summary {
        let n = sorted.len();
        let min = sorted[0];
        let max = sorted[n - 1];
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary {
            min,
            mean,
            median,
            max,
            std_dev,
            count: n,
        }
    }

    /// A summary describing a single exact value (used for analytic estimates).
    pub fn exact(value: f64) -> Summary {
        Summary {
            min: value,
            mean: value,
            median: value,
            max: value,
            std_dev: 0.0,
            count: 1,
        }
    }

    /// Reads the value of one statistical quantity.
    pub fn get(&self, q: Quantity) -> f64 {
        match q {
            Quantity::Min => self.min,
            Quantity::Mean => self.mean,
            Quantity::Median => self.median,
            Quantity::Max => self.max,
            Quantity::StdDev => self.std_dev,
        }
    }

    /// Builds a summary from explicit per-quantity values (count is synthetic).
    pub fn from_quantities(values: &[f64; 5]) -> Summary {
        Summary {
            min: values[Quantity::Min.index()],
            mean: values[Quantity::Mean.index()],
            median: values[Quantity::Median.index()],
            max: values[Quantity::Max.index()],
            std_dev: values[Quantity::StdDev.index()],
            count: 0,
        }
    }

    /// Returns the per-quantity values in [`Quantity::ALL`] order.
    pub fn to_quantities(&self) -> [f64; 5] {
        [self.min, self.mean, self.median, self.max, self.std_dev]
    }

    /// Accumulates another summary describing an *independent, sequential*
    /// stage of execution: minima, means, medians and maxima add, and the
    /// variances add (standard deviations combine in quadrature).
    ///
    /// This is exactly the accumulation the paper performs when summing the
    /// per-call estimates of an algorithm's trace into a whole-algorithm
    /// prediction.
    pub fn accumulate(&mut self, other: &Summary) {
        self.min += other.min;
        self.mean += other.mean;
        self.median += other.median;
        self.max += other.max;
        self.std_dev = (self.std_dev * self.std_dev + other.std_dev * other.std_dev).sqrt();
        self.count += other.count;
    }

    /// The zero summary, the identity element of [`Summary::accumulate`].
    pub fn zero() -> Summary {
        Summary {
            min: 0.0,
            mean: 0.0,
            median: 0.0,
            max: 0.0,
            std_dev: 0.0,
            count: 0,
        }
    }

    /// Scales every location quantity (and the spread) by a constant factor.
    pub fn scale(&self, factor: f64) -> Summary {
        Summary {
            min: self.min * factor,
            mean: self.mean * factor,
            median: self.median * factor,
            max: self.max * factor,
            std_dev: self.std_dev * factor.abs(),
            count: self.count,
        }
    }
}

/// Computes the `p`-quantile (0 <= p <= 1) of a sample set by linear
/// interpolation between order statistics.
pub fn quantile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    // lint: allow(unwrap): summaries are computed from measured (finite) samples; NaN here is a harness bug worth a loud panic
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Relative error `|estimate - reference| / |reference|`, with a guard for a
/// zero reference value (returns the absolute error in that case).
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        estimate.abs()
    } else {
        (estimate - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_samples() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.count, 4);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_odd_count_median() {
        let s = Summary::from_samples(&[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(s.median, 20.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn exact_and_quantity_roundtrip() {
        let s = Summary::exact(3.0);
        for q in Quantity::ALL {
            match q {
                Quantity::StdDev => assert_eq!(s.get(q), 0.0),
                _ => assert_eq!(s.get(q), 3.0),
            }
        }
        let vals = s.to_quantities();
        let back = Summary::from_quantities(&vals);
        assert_eq!(back.mean, 3.0);
        assert_eq!(back.std_dev, 0.0);
    }

    #[test]
    fn quantity_names_roundtrip() {
        for q in Quantity::ALL {
            assert_eq!(Quantity::from_name(q.name()), Some(q));
        }
        assert_eq!(Quantity::from_name("bogus"), None);
        assert_eq!(Quantity::Median.index(), 2);
    }

    #[test]
    fn accumulate_adds_and_combines_variance() {
        let mut acc = Summary::zero();
        let a = Summary {
            min: 1.0,
            mean: 2.0,
            median: 2.0,
            max: 3.0,
            std_dev: 3.0,
            count: 10,
        };
        let b = Summary {
            min: 10.0,
            mean: 20.0,
            median: 20.0,
            max: 30.0,
            std_dev: 4.0,
            count: 10,
        };
        acc.accumulate(&a);
        acc.accumulate(&b);
        assert_eq!(acc.min, 11.0);
        assert_eq!(acc.mean, 22.0);
        assert_eq!(acc.max, 33.0);
        assert!((acc.std_dev - 5.0).abs() < 1e-12);
        assert_eq!(acc.count, 20);
    }

    #[test]
    fn scale_summary() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap().scale(2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        let neg = Summary::exact(1.0).scale(-1.0);
        assert!(neg.std_dev >= 0.0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&[42.0], 0.9), Some(42.0));
    }

    #[test]
    fn relative_error_handles_zero_reference() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert_eq!(relative_error(-11.0, -10.0), 0.1);
    }
}
