//! Summary statistics for repeated measurements.
//!
//! The paper treats the performance of a routine not as a single number but as
//! a probability distribution, summarised by a handful of statistical
//! quantities (Section II-B).  This module provides that summary type; it is
//! shared by the Sampler (which produces summaries of measurements), the
//! Modeler (which fits one polynomial per quantity) and the Predictor (which
//! accumulates per-call estimates into per-algorithm predictions).

/// The statistical quantities tracked for every measured or predicted value.
///
/// The order matters: models are vector-valued with one polynomial per
/// quantity, and the repository serialises them in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantity {
    /// Smallest observed value.
    Min,
    /// Arithmetic mean.
    Mean,
    /// Median (50th percentile).
    Median,
    /// Largest observed value.
    Max,
    /// Sample standard deviation.
    StdDev,
}

impl Quantity {
    /// All quantities, in serialisation order.
    pub const ALL: [Quantity; 5] = [
        Quantity::Min,
        Quantity::Mean,
        Quantity::Median,
        Quantity::Max,
        Quantity::StdDev,
    ];

    /// Short lower-case name used in reports and the repository format.
    pub fn name(&self) -> &'static str {
        match self {
            Quantity::Min => "min",
            Quantity::Mean => "mean",
            Quantity::Median => "median",
            Quantity::Max => "max",
            Quantity::StdDev => "std",
        }
    }

    /// Parses a quantity from its short name.
    pub fn from_name(name: &str) -> Option<Quantity> {
        Quantity::ALL.into_iter().find(|q| q.name() == name)
    }

    /// Index of this quantity in [`Quantity::ALL`].
    pub fn index(&self) -> usize {
        Quantity::ALL
            .iter()
            .position(|q| q == self)
            // lint: allow(unwrap): Quantity::ALL lists every variant by definition
            .expect("quantity listed in ALL")
    }
}

/// Why a sample set could not be summarised.
///
/// Historically `Summary::from_samples` returned `Option` and panicked on NaN
/// input; with fault injection in the measurement path, empty and non-finite
/// sample sets are expected events and must surface as structured errors that
/// callers can retry on instead of silently producing NaN statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// No observations were provided.
    Empty,
    /// At least one observation was NaN or infinite.
    NonFinite {
        /// Total number of observations provided.
        total: usize,
        /// How many of them were non-finite.
        non_finite: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "no samples to summarise"),
            StatsError::NonFinite { total, non_finite } => {
                write!(f, "{non_finite} of {total} samples are non-finite")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Bookkeeping from [`Summary::from_samples_robust`]: how many observations
/// were discarded and why, plus the dispersion the trimming rule saw.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RobustTrim {
    /// Observations dropped because they were NaN or infinite.
    pub non_finite: usize,
    /// Finite observations dropped as outliers by the median/MAD rule.
    pub outliers: usize,
    /// Scaled (×1.4826) median-absolute-deviation of the finite observations
    /// *before* trimming; 0 for a single observation.  Callers use this as a
    /// contamination signal: median/MAD trimming breaks down at 50 %
    /// contamination (e.g. two spikes among four kept observations inflate
    /// the median *and* the MAD, so nothing gets trimmed), and a batch whose
    /// scaled MAD is a large fraction of its median is exactly that case —
    /// corrupted past what trimming can repair.
    pub scaled_mad: f64,
}

impl RobustTrim {
    /// Total number of discarded observations.
    pub fn discarded(&self) -> usize {
        self.non_finite + self.outliers
    }
}

/// Summary of a set of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean of the observations.
    pub mean: f64,
    /// Median of the observations.
    pub median: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Number of observations the summary was computed from.
    pub count: usize,
}

impl Summary {
    /// Fewest finite observations for which [`Summary::from_samples_robust`]
    /// attempts median/MAD outlier trimming; below this the set summarises
    /// untrimmed (a 2- or 3-point MAD is dominated by any outlier present).
    pub const MIN_ROBUST_SAMPLES: usize = 4;

    /// Computes a summary of the given observations.
    ///
    /// Returns [`StatsError::Empty`] for an empty slice and
    /// [`StatsError::NonFinite`] if any observation is NaN or infinite, so bad
    /// measurements surface as errors instead of propagating NaN statistics
    /// into fits.  Small sample sets (up to 16 observations — every Sampler
    /// repetition count the Modeler uses) are summarised in stack scratch
    /// without allocating.
    pub fn from_samples(samples: &[f64]) -> Result<Summary, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let non_finite = samples.iter().filter(|v| !v.is_finite()).count();
        if non_finite > 0 {
            return Err(StatsError::NonFinite {
                total: samples.len(),
                non_finite,
            });
        }
        if samples.len() <= 16 {
            let mut buf = [0.0f64; 16];
            let scratch = &mut buf[..samples.len()];
            scratch.copy_from_slice(samples);
            scratch.sort_by(f64::total_cmp);
            return Ok(Summary::from_sorted(scratch));
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary::from_sorted(&sorted))
    }

    /// Computes a summary robust to injected faults: non-finite observations
    /// are discarded, then finite observations farther than `mad_k` scaled
    /// median-absolute-deviations from the median are trimmed as outliers.
    ///
    /// The MAD is scaled by 1.4826 so that for Gaussian noise `mad_k` is
    /// comparable to a standard-deviation multiple.  When the MAD is zero
    /// (at least half the samples identical) a tiny relative tolerance around
    /// the median is used instead, so duplicate-heavy sample sets still shed
    /// isolated spikes.  The median itself always survives trimming, so a set
    /// with at least one finite observation always summarises.
    ///
    /// Fewer than [`Summary::MIN_ROBUST_SAMPLES`] finite observations carry
    /// too little information to estimate a scale at all — the MAD of 2 or 3
    /// points is dominated by the very outlier it is meant to detect — so
    /// small sets skip outlier trimming entirely (non-finite observations are
    /// still discarded) and summarise exactly like [`Summary::from_samples`].
    ///
    /// Returns the summary of the surviving observations together with a
    /// [`RobustTrim`] account of everything discarded.
    pub fn from_samples_robust(
        samples: &[f64],
        mad_k: f64,
    ) -> Result<(Summary, RobustTrim), StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let non_finite = samples.len() - finite.len();
        if finite.is_empty() {
            return Err(StatsError::NonFinite {
                total: samples.len(),
                non_finite,
            });
        }
        finite.sort_by(f64::total_cmp);
        let n = finite.len();
        let median = if n % 2 == 1 {
            finite[n / 2]
        } else {
            0.5 * (finite[n / 2 - 1] + finite[n / 2])
        };
        let mut deviations: Vec<f64> = finite.iter().map(|v| (v - median).abs()).collect();
        deviations.sort_by(f64::total_cmp);
        let mad = if n % 2 == 1 {
            deviations[n / 2]
        } else {
            0.5 * (deviations[n / 2 - 1] + deviations[n / 2])
        };
        // 1.4826 makes the MAD a consistent estimator of sigma under Gaussian
        // noise; the zero-MAD fallback keeps exact duplicates and trims spikes.
        let scaled_mad = 1.4826 * mad;
        if n < Summary::MIN_ROBUST_SAMPLES {
            return Ok((
                Summary::from_sorted(&finite),
                RobustTrim {
                    non_finite,
                    outliers: 0,
                    scaled_mad,
                },
            ));
        }
        let threshold = if mad > 0.0 {
            mad_k * scaled_mad
        } else {
            median.abs().max(1.0) * 1e-9
        };
        let kept: Vec<f64> = finite
            .iter()
            .copied()
            .filter(|v| (v - median).abs() <= threshold)
            .collect();
        let (summary, outliers) = if kept.is_empty() {
            // Degenerate threshold (e.g. two distinct duplicates straddling the
            // median): keep the observations closest to the median.
            let best = deviations[0];
            let closest: Vec<f64> = finite
                .iter()
                .copied()
                .filter(|v| (v - median).abs() <= best)
                .collect();
            let outliers = n - closest.len();
            (Summary::from_sorted(&closest), outliers)
        } else {
            let outliers = n - kept.len();
            (Summary::from_sorted(&kept), outliers)
        };
        Ok((
            summary,
            RobustTrim {
                non_finite,
                outliers,
                scaled_mad,
            },
        ))
    }

    /// Summary of an already ascending-sorted, non-empty sample slice.
    fn from_sorted(sorted: &[f64]) -> Summary {
        let n = sorted.len();
        let min = sorted[0];
        let max = sorted[n - 1];
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary {
            min,
            mean,
            median,
            max,
            std_dev,
            count: n,
        }
    }

    /// A summary describing a single exact value (used for analytic estimates).
    pub fn exact(value: f64) -> Summary {
        Summary {
            min: value,
            mean: value,
            median: value,
            max: value,
            std_dev: 0.0,
            count: 1,
        }
    }

    /// Reads the value of one statistical quantity.
    pub fn get(&self, q: Quantity) -> f64 {
        match q {
            Quantity::Min => self.min,
            Quantity::Mean => self.mean,
            Quantity::Median => self.median,
            Quantity::Max => self.max,
            Quantity::StdDev => self.std_dev,
        }
    }

    /// Builds a summary from explicit per-quantity values (count is synthetic).
    // lint: allow(panic-free): Quantity::index() is bounded by the five-quantity array
    pub fn from_quantities(values: &[f64; 5]) -> Summary {
        Summary {
            min: values[Quantity::Min.index()],
            mean: values[Quantity::Mean.index()],
            median: values[Quantity::Median.index()],
            max: values[Quantity::Max.index()],
            std_dev: values[Quantity::StdDev.index()],
            count: 0,
        }
    }

    /// Returns the per-quantity values in [`Quantity::ALL`] order.
    pub fn to_quantities(&self) -> [f64; 5] {
        [self.min, self.mean, self.median, self.max, self.std_dev]
    }

    /// Accumulates another summary describing an *independent, sequential*
    /// stage of execution: minima, means, medians and maxima add, and the
    /// variances add (standard deviations combine in quadrature).
    ///
    /// This is exactly the accumulation the paper performs when summing the
    /// per-call estimates of an algorithm's trace into a whole-algorithm
    /// prediction.
    pub fn accumulate(&mut self, other: &Summary) {
        self.min += other.min;
        self.mean += other.mean;
        self.median += other.median;
        self.max += other.max;
        self.std_dev = (self.std_dev * self.std_dev + other.std_dev * other.std_dev).sqrt();
        self.count += other.count;
    }

    /// The zero summary, the identity element of [`Summary::accumulate`].
    pub fn zero() -> Summary {
        Summary {
            min: 0.0,
            mean: 0.0,
            median: 0.0,
            max: 0.0,
            std_dev: 0.0,
            count: 0,
        }
    }

    /// Scales every location quantity (and the spread) by a constant factor.
    pub fn scale(&self, factor: f64) -> Summary {
        Summary {
            min: self.min * factor,
            mean: self.mean * factor,
            median: self.median * factor,
            max: self.max * factor,
            std_dev: self.std_dev * factor.abs(),
            count: self.count,
        }
    }
}

/// Computes the `p`-quantile (0 <= p <= 1) of a sample set by linear
/// interpolation between order statistics.
pub fn quantile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Relative error `|estimate - reference| / |reference|`, with a guard for a
/// zero reference value (returns the absolute error in that case).
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        estimate.abs()
    } else {
        (estimate - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_samples() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.count, 4);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_odd_count_median() {
        let s = Summary::from_samples(&[10.0, 30.0, 20.0]).unwrap();
        assert_eq!(s.median, 20.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn summary_empty_is_structured_error() {
        assert_eq!(Summary::from_samples(&[]), Err(StatsError::Empty));
    }

    #[test]
    fn summary_non_finite_is_structured_error() {
        assert_eq!(
            Summary::from_samples(&[1.0, f64::NAN, 2.0]),
            Err(StatsError::NonFinite {
                total: 3,
                non_finite: 1
            })
        );
        assert_eq!(
            Summary::from_samples(&[f64::INFINITY]),
            Err(StatsError::NonFinite {
                total: 1,
                non_finite: 1
            })
        );
        let msg = StatsError::NonFinite {
            total: 3,
            non_finite: 1,
        }
        .to_string();
        assert!(msg.contains("non-finite"));
    }

    #[test]
    fn robust_summary_trims_non_finite_and_spikes() {
        let samples = [10.0, 10.2, 9.8, f64::NAN, 10.1, 500.0, 9.9, f64::INFINITY];
        let (s, trim) = Summary::from_samples_robust(&samples, 5.0).unwrap();
        assert_eq!(trim.non_finite, 2);
        assert_eq!(trim.outliers, 1);
        assert_eq!(trim.discarded(), 3);
        assert_eq!(s.count, 5);
        assert!(s.max <= 10.2);
        assert!((s.median - 10.0).abs() < 1e-12);
    }

    #[test]
    fn robust_summary_zero_mad_sheds_isolated_spike() {
        // MAD is zero (three identical observations); the spike must still go.
        let (s, trim) = Summary::from_samples_robust(&[1.0, 1.0, 1.0, 100.0], 5.0).unwrap();
        assert_eq!(trim.outliers, 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 1.0);
    }

    #[test]
    fn robust_summary_keeps_clean_samples_intact() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let (robust, trim) = Summary::from_samples_robust(&samples, 5.0).unwrap();
        let plain = Summary::from_samples(&samples).unwrap();
        assert_eq!(trim.discarded(), 0);
        // median 2.5, deviations {0.5, 0.5, 1.5, 1.5}, MAD 1.0, scaled 1.4826.
        assert!((trim.scaled_mad - 1.4826).abs() < 1e-12);
        assert_eq!(robust, plain);
    }

    #[test]
    fn robust_summary_all_non_finite_is_error() {
        assert_eq!(
            Summary::from_samples_robust(&[f64::NAN, f64::NAN], 5.0),
            Err(StatsError::NonFinite {
                total: 2,
                non_finite: 2
            })
        );
        assert_eq!(
            Summary::from_samples_robust(&[], 5.0),
            Err(StatsError::Empty)
        );
    }

    #[test]
    fn exact_and_quantity_roundtrip() {
        let s = Summary::exact(3.0);
        for q in Quantity::ALL {
            match q {
                Quantity::StdDev => assert_eq!(s.get(q), 0.0),
                _ => assert_eq!(s.get(q), 3.0),
            }
        }
        let vals = s.to_quantities();
        let back = Summary::from_quantities(&vals);
        assert_eq!(back.mean, 3.0);
        assert_eq!(back.std_dev, 0.0);
    }

    #[test]
    fn quantity_names_roundtrip() {
        for q in Quantity::ALL {
            assert_eq!(Quantity::from_name(q.name()), Some(q));
        }
        assert_eq!(Quantity::from_name("bogus"), None);
        assert_eq!(Quantity::Median.index(), 2);
    }

    #[test]
    fn accumulate_adds_and_combines_variance() {
        let mut acc = Summary::zero();
        let a = Summary {
            min: 1.0,
            mean: 2.0,
            median: 2.0,
            max: 3.0,
            std_dev: 3.0,
            count: 10,
        };
        let b = Summary {
            min: 10.0,
            mean: 20.0,
            median: 20.0,
            max: 30.0,
            std_dev: 4.0,
            count: 10,
        };
        acc.accumulate(&a);
        acc.accumulate(&b);
        assert_eq!(acc.min, 11.0);
        assert_eq!(acc.mean, 22.0);
        assert_eq!(acc.max, 33.0);
        assert!((acc.std_dev - 5.0).abs() < 1e-12);
        assert_eq!(acc.count, 20);
    }

    #[test]
    fn scale_summary() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap().scale(2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        let neg = Summary::exact(1.0).scale(-1.0);
        assert!(neg.std_dev >= 0.0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&[42.0], 0.9), Some(42.0));
    }

    #[test]
    fn relative_error_handles_zero_reference() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert_eq!(relative_error(-11.0, -10.0), 0.1);
    }
}
