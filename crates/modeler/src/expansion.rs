//! Model Expansion (paper Section III-C1).

use std::collections::{HashSet, VecDeque};

use dla_machine::Executor;
use dla_mat::stats::Summary;
use dla_model::{error_order, FitWorkspace, PiecewiseModel, Region, RegionModel};

use crate::SampleOracle;

/// Direction in which regions are expanded across the parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Start near the origin and expand toward larger parameter values (the
    /// paper's ↗).
    AwayFromOrigin,
    /// Start at the far corner and expand toward the origin (the paper's ↙,
    /// which the authors found preferable).
    TowardOrigin,
}

/// Configuration of the Model Expansion strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionConfig {
    /// Relative error bound ε on the median fit.
    pub error_bound: f64,
    /// Expansion direction.
    pub direction: Direction,
    /// Initial (and per-step growth) size of regions, in parameter units.
    pub initial_size: usize,
    /// Number of grid points per dimension used when fitting a region.
    pub grid_per_dim: usize,
    /// Total degree of the fitted polynomials.
    pub degree: u32,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            error_bound: 0.10,
            direction: Direction::TowardOrigin,
            initial_size: 64,
            grid_per_dim: 4,
            degree: 2,
        }
    }
}

impl ExpansionConfig {
    /// The configuration used in the paper's Figure III.6a.
    pub fn paper_a() -> Self {
        ExpansionConfig {
            error_bound: 0.10,
            direction: Direction::AwayFromOrigin,
            initial_size: 64,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.6b.
    pub fn paper_b() -> Self {
        ExpansionConfig {
            error_bound: 0.10,
            direction: Direction::TowardOrigin,
            initial_size: 64,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.6c.
    pub fn paper_c() -> Self {
        ExpansionConfig {
            error_bound: 0.05,
            direction: Direction::TowardOrigin,
            initial_size: 64,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.6d.
    pub fn paper_d() -> Self {
        ExpansionConfig {
            error_bound: 0.05,
            direction: Direction::TowardOrigin,
            initial_size: 32,
            ..Default::default()
        }
    }

    /// Builds a piecewise model over `space` by Model Expansion, with a fresh
    /// fit workspace.
    pub fn build<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        space: &Region,
    ) -> PiecewiseModel {
        self.build_with(oracle, &mut FitWorkspace::new(), space)
    }

    /// Builds a piecewise model over `space` by Model Expansion, fitting
    /// every candidate region through the given [`FitWorkspace`].
    pub fn build_with<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        space: &Region,
    ) -> PiecewiseModel {
        let dim = space.dim();
        let step = oracle.grid_step();
        let cell = self.initial_size.max(step).max(1);

        // Number of cells along each dimension.
        let cells_per_dim: Vec<usize> = (0..dim)
            .map(|d| (space.extent(d) + cell - 1) / cell.max(1) + 1)
            .collect();

        // The seed cell sits in the corner opposite to the expansion direction.
        let seed: Vec<usize> = match self.direction {
            Direction::AwayFromOrigin => vec![0; dim],
            Direction::TowardOrigin => cells_per_dim.iter().map(|&c| c - 1).collect(),
        };

        let cell_region = |cell_idx: &[usize]| -> Region {
            let lo: Vec<usize> = (0..dim)
                .map(|d| (space.lo()[d] + cell_idx[d] * cell).min(space.hi()[d]))
                .collect();
            let hi: Vec<usize> = (0..dim)
                .map(|d| (space.lo()[d] + (cell_idx[d] + 1) * cell).min(space.hi()[d]))
                .collect();
            Region::new(lo, hi)
        };

        let mut covered: HashSet<Vec<usize>> = HashSet::new();
        let mut queue: VecDeque<Vec<usize>> = VecDeque::new();
        queue.push_back(seed);
        let mut regions: Vec<RegionModel> = Vec::new();
        let mut points: Vec<Vec<usize>> = Vec::new();
        let mut summaries: Vec<Summary> = Vec::new();

        while let Some(cell_idx) = queue.pop_front() {
            if covered.contains(&cell_idx) {
                continue;
            }
            // Skip cells already covered by an accepted region, but still
            // propagate the frontier through them.
            let this_cell = cell_region(&cell_idx);
            let already = regions.iter().any(|r| r.region.contains_region(&this_cell));
            if !already {
                let final_region = self.grow_region(
                    oracle,
                    workspace,
                    &mut points,
                    &mut summaries,
                    space,
                    this_cell.clone(),
                );
                let fitted = self.fit_region(
                    oracle,
                    workspace,
                    &mut points,
                    &mut summaries,
                    &final_region,
                );
                regions.push(fitted);
            }
            covered.insert(cell_idx.clone());
            // Push the neighbouring cells.
            for d in 0..dim {
                for delta in [-1isize, 1] {
                    let v = cell_idx[d] as isize + delta;
                    if v < 0 || v as usize >= cells_per_dim[d] {
                        continue;
                    }
                    let mut neighbour = cell_idx.clone();
                    neighbour[d] = v as usize;
                    if !covered.contains(&neighbour) {
                        queue.push_back(neighbour);
                    }
                }
            }
        }

        let total = oracle.unique_samples();
        // Order regions by fit error so diagnostics read naturally; NaN fit
        // errors (degenerate fits) sort last instead of panicking mid-sort.
        regions.sort_by(|a, b| error_order(a.error, b.error));
        PiecewiseModel::new(space.clone(), regions, total)
    }

    /// Expands a region dimension by dimension while the fit error stays below
    /// the bound.
    fn grow_region<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        points: &mut Vec<Vec<usize>>,
        summaries: &mut Vec<Summary>,
        space: &Region,
        start: Region,
    ) -> Region {
        let dim = space.dim();
        let forward = matches!(self.direction, Direction::AwayFromOrigin);
        let mut region = start;
        let mut blocked = vec![false; dim];
        let growth = self.initial_size.max(oracle.grid_step());

        while blocked.iter().any(|&b| !b) {
            let mut progressed = false;
            for (d, blocked_d) in blocked.iter_mut().enumerate() {
                if *blocked_d {
                    continue;
                }
                let candidate = region.grown(d, growth, forward, space);
                if candidate == region {
                    *blocked_d = true;
                    continue;
                }
                let fitted = self.fit_region(oracle, workspace, points, summaries, &candidate);
                if fitted.error <= self.error_bound {
                    region = candidate;
                    progressed = true;
                } else {
                    *blocked_d = true;
                }
            }
            if !progressed {
                break;
            }
        }
        region
    }

    /// Fits one region through the workspace; regions too small for the
    /// requested degree (fringe cells) fall back to a constant fit inside
    /// [`RegionModel::fit_with_fallback`] without re-preparing the samples.
    fn fit_region<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        points: &mut Vec<Vec<usize>>,
        summaries: &mut Vec<Summary>,
        region: &Region,
    ) -> RegionModel {
        let step = oracle.grid_step();
        region.sample_grid_into(self.grid_per_dim, step, points);
        oracle.measure_into(points, summaries);
        RegionModel::fit_with_fallback(workspace, region.clone(), points, summaries, self.degree)
            // lint: allow(unwrap): fit_with_fallback degrades to a constant fit, which cannot fail with >= 1 sample
            .expect("constant fit always succeeds with >= 1 sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Call, Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_sampler::{Sampler, SamplerConfig};

    fn build_with(config: ExpansionConfig, space: Region) -> (PiecewiseModel, usize) {
        let mut sampler = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(1),
        );
        let template = if space.dim() == 1 {
            Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8)
        } else {
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                0.5,
            )
        };
        let mut oracle = SampleOracle::new(&mut sampler, template, 8);
        let model = config.build(&mut oracle, &space);
        let samples = oracle.unique_samples();
        (model, samples)
    }

    #[test]
    fn covers_small_space_1d() {
        let space = Region::new(vec![8], vec![512]);
        let (model, samples) = build_with(
            ExpansionConfig {
                initial_size: 64,
                ..Default::default()
            },
            space,
        );
        assert!(model.region_count() >= 1);
        assert!(model.covers_space(17));
        assert!(samples > 0);
        assert_eq!(model.total_samples, samples);
        // Every grid point evaluates to a positive tick estimate.
        for n in (8..=512).step_by(64) {
            let est = model.eval(&[n]).unwrap();
            assert!(est.median > 0.0, "median at {n} is {}", est.median);
        }
    }

    #[test]
    fn covers_2d_space_both_directions() {
        let space = Region::new(vec![8, 8], vec![384, 384]);
        for direction in [Direction::AwayFromOrigin, Direction::TowardOrigin] {
            let (model, _) = build_with(
                ExpansionConfig {
                    direction,
                    initial_size: 96,
                    grid_per_dim: 4,
                    ..Default::default()
                },
                space.clone(),
            );
            assert!(
                model.covers_space(7),
                "direction {direction:?} left holes in the space"
            );
            assert!(model.region_count() >= 1);
        }
    }

    #[test]
    fn tighter_error_bound_uses_more_samples() {
        let space = Region::new(vec![8, 8], vec![384, 384]);
        let (loose_model, loose_samples) = build_with(
            ExpansionConfig {
                error_bound: 0.25,
                initial_size: 96,
                ..Default::default()
            },
            space.clone(),
        );
        let (tight_model, tight_samples) = build_with(
            ExpansionConfig {
                error_bound: 0.02,
                initial_size: 96,
                ..Default::default()
            },
            space,
        );
        assert!(tight_samples >= loose_samples);
        assert!(tight_model.region_count() >= loose_model.region_count());
    }

    #[test]
    fn estimates_track_the_cost_model() {
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let (model, _) = build_with(ExpansionConfig::default(), space);
        // Compare the model's median estimate with the noiseless simulator.
        let machine = harpertown_openblas();
        let template = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            0.5,
        )
        .with_leading_dims(2500);
        let mut worst: f64 = 0.0;
        for &m in &[64usize, 128, 256, 384, 512] {
            for &n in &[64usize, 128, 256, 384, 512] {
                let call = template.with_sizes(&[m, n]);
                let truth = dla_machine::cost::estimate_ticks(
                    &machine,
                    &call,
                    dla_machine::Locality::InCache,
                );
                let est = model.eval(&[m, n]).unwrap().median;
                worst = worst.max((est - truth).abs() / truth);
            }
        }
        assert!(worst < 0.35, "worst relative error {worst}");
    }

    #[test]
    fn paper_configurations_differ() {
        assert_eq!(
            ExpansionConfig::paper_a().direction,
            Direction::AwayFromOrigin
        );
        assert_eq!(
            ExpansionConfig::paper_b().direction,
            Direction::TowardOrigin
        );
        assert!(ExpansionConfig::paper_c().error_bound < ExpansionConfig::paper_b().error_bound);
        assert!(ExpansionConfig::paper_d().initial_size < ExpansionConfig::paper_c().initial_size);
    }
}
