//! # dla-modeler
//!
//! The **Modeler** (paper Section III-C): a tool that automatically generates
//! piecewise-polynomial performance models by driving the Sampler.
//!
//! Two model-generation strategies are implemented, exactly mirroring the
//! paper:
//!
//! * [`ExpansionConfig`] — **Model Expansion**: start from a small region in a
//!   corner of the integer parameter space, expand it dimension by dimension
//!   while the polynomial's relative fit error stays below the bound, then
//!   seed new adjacent regions until the whole space is covered.  Options: the
//!   error bound ε, the expansion direction (towards or away from the origin)
//!   and the initial region size.
//! * [`RefinementConfig`] — **Adaptive Refinement**: start from one coarse
//!   region spanning the whole space and recursively split regions whose fit
//!   error exceeds ε, until the error bound is met or the minimum region size
//!   is reached.  Options: the error bound ε and the minimum region size.
//!
//! The [`Modeler`] orchestrates a strategy over a routine: it groups template
//! calls by flag combination, builds one piecewise submodel per combination,
//! fixes all leading dimensions to a large constant (2500, as in the paper)
//! and records how many distinct sample points were spent.
//!
//! Construction runs through the compiled fit engine: the Modeler owns one
//! [`dla_model::FitWorkspace`] that persists across every region, submodel
//! and routine it builds (`build_with` on either strategy), and the
//! [`SampleOracle`] caches measurements under fixed-size, allocation-free
//! point keys.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod expansion;
mod modeler;
pub mod online;
mod oracle;
mod refinement;

pub use expansion::{Direction, ExpansionConfig};
pub use modeler::{Modeler, ModelingReport, Strategy};
pub use online::{OnlineRefiner, OnlineRefinerConfig, QuarantinedCell, RefineOutcome};
pub use oracle::{SampleCache, SampleOracle};
pub use refinement::RefinementConfig;
