//! Online adaptive refinement: closing the loop from serving telemetry back
//! to the Sampler.
//!
//! Offline, Adaptive Refinement (Section III-C2) spends samples where the
//! *fit* is bad.  Online, the interesting signal is where the fit is bad
//! **and** traffic actually lands: the serving layer's
//! [`RefinementReport`](dla_model::RefinementReport) ranks the served
//! `(routine, flags, region)` cells by `queries × fit_error`, and the
//! [`OnlineRefiner`] walks that ranking with a fixed sample budget,
//! re-samples only the offending regions through the existing fast paths
//! (the [`SampleOracle`]'s cached, allocation-free measurement loop and the
//! compiled fit engine's [`FitWorkspace`]), and produces a **delta
//! repository** holding just the rebuilt flag-variant submodels.  Publishing
//! the delta through the serving layer's submodel-granular merge
//! (`ModelService::merge` → `ModelRepository::merge_models`) hot-swaps the
//! refreshed regions in without disturbing in-flight readers — the paper's
//! error-driven sampling, running continuously under load.
//!
//! Rebuilt regions carry their provenance: each replacement region's
//! [`revision`](dla_model::RegionModel::revision) is the replaced region's
//! revision plus one, so a repeatedly-rebuilt region is visible in later
//! reports.

use std::collections::BTreeMap;

use dla_blas::{Call, Routine};
use dla_machine::{Executor, Locality};
use dla_mat::stats::Summary;
use dla_model::{
    error_order, submodel_key, FitWorkspace, ModelRepository, PiecewiseModel, RefinementReport,
    Region, RepositoryValidator, RoutineModel,
};
use dla_sampler::{SampleTelemetry, Sampler, SamplerConfig};

use crate::{RefinementConfig, SampleCache, SampleOracle};

/// Configuration of one online-refinement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineRefinerConfig {
    /// How rebuilt regions are re-fitted (error bound, minimum region size,
    /// fit grid, degree) — the offending region is treated as the space of a
    /// fresh Adaptive Refinement run, so a badly-fitting region may come
    /// back as several smaller, tighter regions.
    pub fit: RefinementConfig,
    /// Budget of *distinct* sample points per [`OnlineRefiner::refine`]
    /// round (the paper's currency for comparing strategies).  Refinement
    /// stops taking on new cells once the budget is spent; the cell being
    /// refined when the budget runs out is completed, so the budget may be
    /// overshot by at most one region rebuild.
    pub sample_budget: usize,
    /// Upper bound on the number of report cells refined per round.
    pub max_cells: usize,
    /// Cells with fewer queries than this are ignored (traffic too cold to
    /// justify spending samples on).
    pub min_queries: u64,
    /// Consecutive rebuild failures after which a cell's circuit breaker
    /// opens and the cell is quarantined (skipped instead of rebuilt).
    pub quarantine_threshold: u32,
    /// Rounds a quarantined cell sits out before a half-open probe rebuild
    /// is allowed.  A successful probe closes the breaker; a failed probe
    /// re-opens it for another cooldown.
    pub quarantine_cooldown: u32,
    /// A rebuilt fit is counted as failed when any replacement region's fit
    /// error is non-finite or exceeds `max_error_factor` times the *larger*
    /// of `fit.error_bound` and the replaced region's own error.  Refinement
    /// legitimately accepts errors above the bound for minimum-size regions
    /// (a discontinuity inside an unsplittable region), so the gate is
    /// relative to the error precedent the cell already set: only fits
    /// catastrophically worse than both the bound and what they replace —
    /// the signature of corrupt measurements — trip the breaker.
    pub max_error_factor: f64,
    /// Build attempts per cell and round before the failure counts as a
    /// strike.  The round's sample cache survives a failed build — every
    /// point measured before the failure stays cached — so a reattempt pays
    /// only for the points still missing.  Against independent per-
    /// measurement faults this compounds fast: a cell needing dozens of grid
    /// points is all-or-nothing within one attempt, but near-certain across
    /// two.  Values below 1 behave as 1.
    pub rebuild_attempts: usize,
}

impl OnlineRefinerConfig {
    /// The same configuration with the given per-round distinct-sample
    /// budget — the builder the fleet's budget arbitration uses when
    /// constructing per-shard refiners from one shared template.
    pub fn with_sample_budget(mut self, samples: usize) -> OnlineRefinerConfig {
        self.sample_budget = samples;
        self
    }
}

impl Default for OnlineRefinerConfig {
    fn default() -> Self {
        OnlineRefinerConfig {
            fit: RefinementConfig::default(),
            sample_budget: 512,
            max_cells: 16,
            min_queries: 1,
            quarantine_threshold: 2,
            quarantine_cooldown: 2,
            max_error_factor: 10.0,
            rebuild_attempts: 2,
        }
    }
}

/// Provenance of one quarantined `(routine, flags, region)` cell, reported in
/// [`RefineOutcome::quarantined`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// The routine of the quarantined cell.
    pub routine: Routine,
    /// The flag combination (submodel key) of the quarantined cell.
    pub flags: Vec<usize>,
    /// The offending region.
    pub region: Region,
    /// Consecutive rebuild failures recorded for the cell.
    pub failures: u32,
    /// Rounds remaining before a half-open probe; `0` means the next report
    /// of this cell triggers a probe rebuild.
    pub cooldown_remaining: u32,
}

/// What one [`OnlineRefiner::refine`] round did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefineOutcome {
    /// Report cells examined (in ranking order).
    pub cells_examined: usize,
    /// Cells whose region was actually rebuilt.
    pub cells_refined: usize,
    /// Regions removed from their submodels (one per refined cell).
    pub regions_rebuilt: usize,
    /// Replacement regions produced (≥ `regions_rebuilt`; a rebuild may
    /// split the offending region).
    pub regions_added: usize,
    /// Distinct sample points spent across all rebuilds (including rebuilds
    /// that then failed — budget is spent whether or not the fit lands).
    pub samples_used: usize,
    /// Cells skipped because the snapshot no longer contains the reported
    /// region (the report outlived a swap/merge).
    pub skipped_stale: usize,
    /// Cells skipped because no registered template covers their
    /// routine/flag combination.
    pub skipped_no_template: usize,
    /// Rebuild attempts that failed this round (unrecoverable sample errors
    /// or fits rejected by the validator/error bound); the failed cell keeps
    /// its old regions and is **never** merged.
    pub fit_failures: usize,
    /// Cells whose circuit breaker newly opened this round.
    pub cells_quarantined: usize,
    /// Cells skipped because their breaker was open and still cooling down.
    pub skipped_quarantined: usize,
    /// Half-open probe rebuilds attempted on cooled-down quarantined cells.
    pub probes: usize,
    /// Quarantined cells whose probe rebuild succeeded (breaker closed).
    pub cells_recovered: usize,
    /// Sampler retry attempts performed during this round.
    pub sample_retries: u64,
    /// Measurements discarded during this round (non-finite + outliers).
    pub samples_discarded: u64,
    /// Every cell still quarantined after this round, with provenance.
    pub quarantined: Vec<QuarantinedCell>,
}

/// Re-samples and rebuilds the regions a [`RefinementReport`] names, within
/// a sample budget.
///
/// The refiner owns a [`Sampler`] (with its own executor — typically a fork
/// of the build executor, or one observing the *current* machine behaviour
/// when the machine has drifted) and one [`FitWorkspace`] that persists
/// across rounds, exactly like the offline [`Modeler`](crate::Modeler).
/// Templates registered via [`with_templates`](OnlineRefiner::with_templates)
/// tell it how to turn a `(routine, flags)` cell back into a concrete call.
pub struct OnlineRefiner<E: Executor> {
    sampler: Sampler<E>,
    workspace: FitWorkspace,
    grid_step: usize,
    templates: Vec<Call>,
    config: OnlineRefinerConfig,
    /// Circuit-breaker state per `(routine, flags, region)` cell, persisted
    /// across rounds.  Keyed by the routine discriminant plus the flag and
    /// region coordinates (all `Ord`); the state carries the original typed
    /// cell for provenance reporting.
    quarantine: BTreeMap<QuarantineKey, QuarantineState>,
}

type QuarantineKey = (u32, Vec<usize>, Vec<usize>, Vec<usize>);

#[derive(Debug, Clone)]
struct QuarantineState {
    routine: Routine,
    flags: Vec<usize>,
    region: Region,
    /// Consecutive rebuild failures; the breaker is open once this reaches
    /// the configured threshold.
    failures: u32,
    /// Rounds left before a half-open probe is allowed (only meaningful
    /// while the breaker is open).
    cooldown: u32,
}

fn quarantine_key(routine: Routine, flags: &[usize], region: &Region) -> QuarantineKey {
    (
        routine as u32,
        flags.to_vec(),
        region.lo().to_vec(),
        region.hi().to_vec(),
    )
}

impl<E: Executor> OnlineRefiner<E> {
    /// Creates a refiner measuring through `executor` under `locality`, with
    /// `repetitions` measurements per sample point.
    pub fn new(
        executor: E,
        locality: Locality,
        repetitions: usize,
        config: OnlineRefinerConfig,
    ) -> OnlineRefiner<E> {
        let sampler_config = SamplerConfig {
            locality,
            repetitions,
            warmup_discard: 1,
        };
        OnlineRefiner {
            sampler: Sampler::new(executor, sampler_config),
            workspace: FitWorkspace::new(),
            grid_step: 8,
            templates: Vec::new(),
            config,
            quarantine: BTreeMap::new(),
        }
    }

    /// Registers the call templates the refiner may be asked to re-sample
    /// (one representative call per routine/flag combination; extra
    /// templates are harmless).  Returns `self` for chaining.
    pub fn with_templates(mut self, templates: &[Call]) -> OnlineRefiner<E> {
        self.templates.extend_from_slice(templates);
        self
    }

    /// Changes the grid step sample points are aligned to (default 8).
    pub fn set_grid_step(&mut self, step: usize) {
        self.grid_step = step.max(1);
    }

    /// The refiner's configuration.
    pub fn config(&self) -> OnlineRefinerConfig {
        self.config
    }

    /// Replaces the configuration for subsequent rounds (a long-lived
    /// refiner keeps its sampler, templates and fit workspace across rounds;
    /// the budget/fit parameters may still vary per round).
    pub fn set_config(&mut self, config: OnlineRefinerConfig) {
        self.config = config;
    }

    /// Sets only the per-round distinct-sample budget, keeping every other
    /// knob (and all cross-round state: quarantine breakers, sampler,
    /// templates, fit workspace) in place.  This is the fleet tier's budget
    /// arbitration hook: each round, the fleet splits one shared measurement
    /// budget across its shards proportionally to drift × traffic
    /// (`FleetService::arbitrate_refinement_budget`) and hands every shard's
    /// refiner its slice through this method.
    pub fn set_sample_budget(&mut self, samples: usize) {
        self.config.sample_budget = samples;
    }

    /// The machine id of the refiner's executor.
    pub fn machine_id(&self) -> String {
        self.sampler.machine().id()
    }

    /// The locality scenario rebuilt models describe.
    pub fn locality(&self) -> Locality {
        self.sampler.config().locality
    }

    /// Total raw measurements taken across all rounds.
    pub fn measurements_taken(&self) -> usize {
        self.sampler.samples_taken()
    }

    /// One refinement round: walks `report` hottest-first, rebuilds up to
    /// `max_cells` offending regions within the sample budget, and returns a
    /// **delta repository** holding only the routine models whose submodels
    /// changed (and, inside them, only the changed flag variants).
    ///
    /// The delta is meant for a submodel-granular publish:
    /// `service.merge(delta)` replaces exactly the rebuilt flag variants and
    /// leaves everything else serving untouched.  `snapshot` must be the
    /// repository generation the report was produced against; cells whose
    /// region no longer exists in the snapshot are counted as stale and
    /// skipped.  The refiner's machine id and locality must match the
    /// report's (a report from a different machine is answered with an empty
    /// delta).
    pub fn refine(
        &mut self,
        snapshot: &ModelRepository,
        report: &RefinementReport,
    ) -> (ModelRepository, RefineOutcome) {
        let mut outcome = RefineOutcome::default();
        if report.machine_id != self.machine_id() || report.locality != self.locality() {
            return (ModelRepository::new(), outcome);
        }
        let telemetry_before = self.sampler.telemetry();
        // One round has passed for every open breaker: tick the cooldowns.
        // A cell quarantined with cooldown `k` is skipped for `k - 1` full
        // rounds and probed (half-open) in the `k`-th.
        for state in self.quarantine.values_mut() {
            if state.failures >= self.config.quarantine_threshold && state.cooldown > 0 {
                state.cooldown -= 1;
            }
        }
        // Working set of *rebuilt flag variants only*, keyed by routine: a
        // later cell of the same submodel must see the earlier cell's
        // rebuild, and the delta must carry nothing but what changed —
        // emitting untouched sibling variants (or models merely examined and
        // then skipped) would let the merge roll back anything published
        // concurrently since the snapshot was taken.
        let mut rebuilt: BTreeMap<&'static str, RoutineModel> = BTreeMap::new();
        // One measurement cache per (routine, flags) for the whole round:
        // adjacent regions of one submodel share grid-aligned boundary
        // points, which must be measured and budgeted once, not once per
        // cell.  Scoped to this round so every round takes fresh
        // measurements (the machine may still be drifting).
        let mut caches: BTreeMap<(u32, Vec<usize>), SampleCache> = BTreeMap::new();
        let mut budget = self.config.sample_budget;

        for cell in &report.cells {
            if outcome.cells_refined >= self.config.max_cells || budget == 0 {
                break;
            }
            outcome.cells_examined += 1;
            if cell.queries < self.config.min_queries {
                continue;
            }
            let Some(template) = self
                .templates
                .iter()
                .find(|t| t.routine() == cell.routine && submodel_key(t) == cell.flags)
                .cloned()
            else {
                outcome.skipped_no_template += 1;
                continue;
            };
            let Some(snapshot_model) =
                snapshot.get(cell.routine, &report.machine_id, report.locality)
            else {
                outcome.skipped_stale += 1;
                continue;
            };
            // The current state of this flag variant: rebuilt earlier in
            // this round, or straight from the snapshot.
            let Some(submodel) = rebuilt
                .get(cell.routine.name())
                .and_then(|m| m.submodel(&cell.flags))
                .or_else(|| snapshot_model.submodel(&cell.flags))
            else {
                outcome.skipped_stale += 1;
                continue;
            };
            let Some(position) = submodel
                .regions
                .iter()
                .position(|r| r.region == cell.region)
            else {
                outcome.skipped_stale += 1;
                continue;
            };

            // Circuit breaker: an open breaker skips the cell while cooling
            // down, and turns the first rebuild after cooldown into a
            // half-open probe (success closes the breaker, failure re-opens
            // it for another cooldown).
            let key = quarantine_key(cell.routine, &cell.flags, &cell.region);
            let mut probing = false;
            if let Some(state) = self.quarantine.get(&key) {
                if state.failures >= self.config.quarantine_threshold {
                    if state.cooldown > 0 {
                        outcome.skipped_quarantined += 1;
                        continue;
                    }
                    probing = true;
                    outcome.probes += 1;
                }
            }

            // Re-sample and re-fit the offending region: a fresh Adaptive
            // Refinement run over just this region, through the fallible
            // retrying measurement path, the shared fit workspace and the
            // round's shared per-submodel point cache.
            let revision = submodel.regions[position].revision + 1;
            let space = submodel.space.clone();
            let total_samples = submodel.total_samples;
            let mut regions = submodel.regions.clone();
            let cache_key = (cell.routine as u32, cell.flags.clone());
            let cache = caches.remove(&cache_key).unwrap_or_default();
            let (built, samples) = {
                let mut oracle = SampleOracle::with_cache(
                    &mut self.sampler,
                    template.clone(),
                    self.grid_step,
                    cache,
                );
                let already_measured = oracle.unique_samples();
                let mut built =
                    self.config
                        .fit
                        .try_build_with(&mut oracle, &mut self.workspace, &cell.region);
                // Failed builds keep their measured points in the oracle's
                // cache, so each reattempt only pays for the missing ones.
                for _ in 1..self.config.rebuild_attempts.max(1) {
                    if built.is_ok() {
                        break;
                    }
                    built = self.config.fit.try_build_with(
                        &mut oracle,
                        &mut self.workspace,
                        &cell.region,
                    );
                }
                let samples = oracle.unique_samples() - already_measured;
                caches.insert(cache_key, oracle.into_cache());
                (built, samples)
            };
            // Budget is spent whether or not the rebuild lands: failed
            // attempts consumed real measurements.
            budget = budget.saturating_sub(samples);
            outcome.samples_used += samples;

            let replaced_error = submodel.regions[position].error;
            let acceptable = built
                .as_ref()
                .map(|fresh| self.fit_acceptable(fresh, replaced_error))
                .unwrap_or(false);
            let Some(fresh) = built.ok().filter(|_| acceptable) else {
                // Rebuild failed — record a strike; the cell keeps its old
                // regions and nothing of this attempt reaches the delta.
                outcome.fit_failures += 1;
                let threshold = self.config.quarantine_threshold;
                let cooldown = self.config.quarantine_cooldown;
                let state = self
                    .quarantine
                    .entry(key)
                    .or_insert_with(|| QuarantineState {
                        routine: cell.routine,
                        flags: cell.flags.clone(),
                        region: cell.region.clone(),
                        failures: 0,
                        cooldown: 0,
                    });
                state.failures += 1;
                if state.failures >= threshold {
                    if state.failures == threshold {
                        outcome.cells_quarantined += 1;
                    }
                    state.cooldown = cooldown;
                }
                continue;
            };
            // Success: close the breaker (and clear sub-threshold strikes).
            if self.quarantine.remove(&key).is_some() && probing {
                outcome.cells_recovered += 1;
            }
            outcome.cells_refined += 1;
            outcome.regions_rebuilt += 1;
            outcome.regions_added += fresh.region_count();

            regions.remove(position);
            for mut region in fresh.regions {
                region.revision = revision;
                regions.push(region);
            }
            regions.sort_by(|a, b| error_order(a.error, b.error));
            let updated = PiecewiseModel::new(space, regions, total_samples + samples);
            rebuilt
                .entry(cell.routine.name())
                .or_insert_with(|| {
                    RoutineModel::new(
                        cell.routine,
                        report.machine_id.clone(),
                        report.locality,
                        snapshot_model.space.clone(),
                    )
                })
                .insert_submodel(cell.flags.clone(), updated);
        }

        // The delta carries only the routine models — and within them, only
        // the flag variants — that were actually rebuilt; the consumer
        // merges them at submodel granularity.
        let mut delta = ModelRepository::new();
        for (_, model) in rebuilt {
            delta.insert(model);
        }
        let round_telemetry = self.sampler.telemetry().since(&telemetry_before);
        outcome.sample_retries = round_telemetry.retries;
        outcome.samples_discarded = round_telemetry.discarded();
        outcome.quarantined = self.quarantined_cells();
        (delta, outcome)
    }

    /// Whether a rebuilt submodel is fit to serve: structurally valid
    /// (finite coefficients, full cover of the rebuilt region — see
    /// [`RepositoryValidator`]) and with every region's fit error finite and
    /// under `max_error_factor × max(fit.error_bound, replaced_error)` — the
    /// replaced region's own error is the precedent a legitimate rebuild is
    /// allowed to match (see [`OnlineRefinerConfig::max_error_factor`]).
    fn fit_acceptable(&self, fresh: &PiecewiseModel, replaced_error: f64) -> bool {
        if RepositoryValidator::new().validate_submodel(fresh).is_err() {
            return false;
        }
        let baseline = if replaced_error.is_finite() {
            self.config.fit.error_bound.max(replaced_error)
        } else {
            self.config.fit.error_bound
        };
        let bound = self.config.max_error_factor * baseline;
        fresh
            .regions
            .iter()
            .all(|r| r.error.is_finite() && r.error <= bound)
    }

    /// Every cell whose circuit breaker is currently open, with provenance.
    pub fn quarantined_cells(&self) -> Vec<QuarantinedCell> {
        self.quarantine
            .values()
            .filter(|s| s.failures >= self.config.quarantine_threshold)
            .map(|s| QuarantinedCell {
                routine: s.routine,
                flags: s.flags.clone(),
                region: s.region.clone(),
                failures: s.failures,
                cooldown_remaining: s.cooldown,
            })
            .collect()
    }

    /// The sampler's monotone fault-handling counters (see
    /// [`SampleTelemetry`]); per-round deltas are already reported in
    /// [`RefineOutcome`].
    pub fn sample_telemetry(&self) -> SampleTelemetry {
        self.sampler.telemetry()
    }

    /// Mutable access to the underlying executor — chaos scenarios use this
    /// to change fault schedules between refinement rounds.
    pub fn executor_mut(&mut self) -> &mut E {
        self.sampler.executor_mut()
    }

    /// Raises (or lowers) the sampler's per-point retry budget.  A refiner
    /// running against a fault-prone harness wants more attempts per point:
    /// one transient failure anywhere in a measurement batch fails the whole
    /// attempt, so the per-cell failure probability compounds quickly with
    /// the number of grid points.
    pub fn set_max_retries(&mut self, max_retries: usize) {
        self.sampler.set_max_retries(max_retries);
    }

    /// Convenience probe: the refiner's current estimate of a call's cost,
    /// measured directly (not modelled).  Used by tests and examples to
    /// compare served predictions against the machine's present behaviour.
    pub fn measure(&mut self, call: &Call) -> Summary {
        self.sampler.sample_ticks(call)
    }
}

/// Collects every distinct `(routine, flags)` template from a list of call
/// templates, keyed for the refiner: the first call with a given submodel
/// key wins, mirroring [`Modeler::build_routine_model`](crate::Modeler).
pub fn dedupe_templates(templates: &[Call]) -> Vec<Call> {
    let mut by_key: BTreeMap<(u32, Vec<usize>), Call> = BTreeMap::new();
    for t in templates {
        by_key
            .entry((t.routine() as u32, submodel_key(t)))
            .or_insert_with(|| t.clone());
    }
    by_key.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Routine, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_model::{HotRegion, Region};

    fn trsm_template() -> Call {
        Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            1.0,
        )
    }

    /// A one-routine repository built offline with the given executor.
    fn build_snapshot(executor: SimExecutor) -> ModelRepository {
        let mut modeler = crate::Modeler::new(
            executor,
            Locality::InCache,
            1,
            crate::Strategy::Refinement(RefinementConfig {
                error_bound: 0.15,
                min_region_size: 128,
                grid_per_dim: 3,
                degree: 2,
            }),
        );
        let mut repo = ModelRepository::new();
        modeler.populate_repository(
            &mut repo,
            &[(
                vec![trsm_template()],
                Region::new(vec![8, 8], vec![512, 512]),
            )],
        );
        repo
    }

    fn report_for(snapshot: &ModelRepository, machine_id: &str, queries: u64) -> RefinementReport {
        let model = snapshot
            .get(Routine::Trsm, machine_id, Locality::InCache)
            .unwrap();
        let flags = submodel_key(&trsm_template());
        let submodel = model.submodel(&flags).unwrap();
        let cells = submodel
            .regions
            .iter()
            .map(|r| HotRegion {
                routine: Routine::Trsm,
                flags: flags.clone(),
                region: r.region.clone(),
                fit_error: r.error,
                revision: r.revision,
                queries,
            })
            .collect();
        RefinementReport::ranked(machine_id.to_string(), Locality::InCache, 0, queries, cells)
    }

    #[test]
    fn refine_rebuilds_only_reported_regions_and_bumps_revisions() {
        let machine = harpertown_openblas();
        let snapshot = build_snapshot(SimExecutor::noiseless(machine.clone()));
        let machine_id = machine.id();
        let report = report_for(&snapshot, &machine_id, 10);
        let region_count_before = snapshot
            .get(Routine::Trsm, &machine_id, Locality::InCache)
            .unwrap()
            .submodel(&submodel_key(&trsm_template()))
            .unwrap()
            .region_count();

        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            OnlineRefinerConfig {
                max_cells: 1,
                ..Default::default()
            },
        )
        .with_templates(&[trsm_template()]);
        let (delta, outcome) = refiner.refine(&snapshot, &report);

        assert_eq!(outcome.cells_refined, 1);
        assert_eq!(outcome.regions_rebuilt, 1);
        assert!(outcome.regions_added >= 1);
        assert!(outcome.samples_used > 0);
        assert_eq!(refiner.measurements_taken(), 2 * outcome.samples_used);
        assert_eq!(delta.len(), 1);

        let rebuilt = delta
            .get(Routine::Trsm, &machine_id, Locality::InCache)
            .unwrap();
        let submodel = rebuilt.submodel(&submodel_key(&trsm_template())).unwrap();
        // The untouched regions are still revision 0; the rebuilt ones are 1.
        let revised: Vec<u32> = submodel.regions.iter().map(|r| r.revision).collect();
        assert!(revised.contains(&1));
        assert!(revised.contains(&0), "untouched regions keep revision 0");
        assert_eq!(
            submodel.region_count(),
            region_count_before - outcome.regions_rebuilt + outcome.regions_added
        );
        // Coverage is preserved: the rebuilt submodel still answers
        // everywhere the old one did.
        assert!(submodel.covers_space(7));
    }

    #[test]
    fn refine_respects_budget_and_skips_cold_or_stale_cells() {
        let machine = harpertown_openblas();
        let snapshot = build_snapshot(SimExecutor::noiseless(machine.clone()));
        let machine_id = machine.id();
        let mut report = report_for(&snapshot, &machine_id, 10);
        // Add a stale cell (bounds that no region has) and a cold cell.
        report.cells.push(HotRegion {
            routine: Routine::Trsm,
            flags: submodel_key(&trsm_template()),
            region: Region::new(vec![1, 1], vec![3, 3]),
            fit_error: 9.0,
            revision: 0,
            queries: 10,
        });
        report.cells.push(HotRegion {
            routine: Routine::Trsm,
            flags: submodel_key(&trsm_template()),
            region: Region::new(vec![8, 8], vec![512, 512]),
            fit_error: 9.0,
            revision: 0,
            queries: 0,
        });

        // Zero budget: nothing is refined, the delta is empty.
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            OnlineRefinerConfig {
                sample_budget: 0,
                ..Default::default()
            },
        )
        .with_templates(&[trsm_template()]);
        let (delta, outcome) = refiner.refine(&snapshot, &report);
        assert!(delta.is_empty());
        assert_eq!(outcome.cells_refined, 0);

        // With budget: stale and cold cells are skipped, the rest refined.
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            OnlineRefinerConfig {
                min_queries: 2,
                ..Default::default()
            },
        )
        .with_templates(&[trsm_template()]);
        let (_, outcome) = refiner.refine(&snapshot, &report);
        assert!(outcome.cells_refined >= 1);
        assert!(outcome.skipped_stale >= 1);

        // No template for the cell's routine: counted, not refined.
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            OnlineRefinerConfig::default(),
        );
        let (delta, outcome) = refiner.refine(&snapshot, &report);
        assert!(delta.is_empty());
        assert!(outcome.skipped_no_template >= 1);

        // A report from another machine is refused outright.
        let mut foreign = report_for(&snapshot, &machine_id, 5);
        foreign.machine_id = "other-machine".to_string();
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine),
            Locality::InCache,
            1,
            OnlineRefinerConfig::default(),
        )
        .with_templates(&[trsm_template()]);
        let (delta, outcome) = refiner.refine(&snapshot, &foreign);
        assert!(delta.is_empty());
        assert_eq!(outcome.cells_examined, 0);
    }

    #[test]
    fn delta_carries_only_rebuilt_flag_variants() {
        // Regression: the delta used to hold full clones of every touched
        // routine model (all flag variants, even models merely examined and
        // then skipped as stale), so merging it could roll back sibling
        // variants published concurrently since the snapshot.
        let machine = harpertown_openblas();
        let right_template = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            1.0,
        );
        let mut modeler = crate::Modeler::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            crate::Strategy::Refinement(RefinementConfig {
                error_bound: 0.15,
                min_region_size: 128,
                grid_per_dim: 3,
                degree: 2,
            }),
        );
        let mut snapshot = ModelRepository::new();
        modeler.populate_repository(
            &mut snapshot,
            &[(
                vec![trsm_template(), right_template.clone()],
                Region::new(vec![8, 8], vec![512, 512]),
            )],
        );
        let machine_id = machine.id();
        assert_eq!(
            snapshot
                .get(Routine::Trsm, &machine_id, Locality::InCache)
                .unwrap()
                .submodel_count(),
            2
        );

        // Report: one valid cell for the *left* variant only, plus a stale
        // cell for a routine the snapshot does not hold.
        let mut report = report_for(&snapshot, &machine_id, 10);
        report.cells.truncate(1);
        report.cells.push(HotRegion {
            routine: Routine::Gemm,
            flags: vec![0, 0],
            region: Region::new(vec![8, 8, 8], vec![64, 64, 64]),
            fit_error: 1.0,
            revision: 0,
            queries: 5,
        });
        let gemm_template = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine),
            Locality::InCache,
            1,
            OnlineRefinerConfig::default(),
        )
        .with_templates(&[trsm_template(), right_template, gemm_template]);
        let (delta, outcome) = refiner.refine(&snapshot, &report);

        assert_eq!(outcome.cells_refined, 1);
        assert_eq!(outcome.skipped_stale, 1);
        // The delta holds exactly one routine model with exactly the one
        // rebuilt flag variant — no untouched sibling, no stale gemm model.
        assert_eq!(delta.len(), 1);
        let model = delta
            .get(Routine::Trsm, &machine_id, Locality::InCache)
            .unwrap();
        assert_eq!(model.submodel_count(), 1);
        assert!(model.submodel(&submodel_key(&trsm_template())).is_some());
        assert!(delta
            .get(Routine::Gemm, &machine_id, Locality::InCache)
            .is_none());
    }

    #[test]
    fn shared_round_cache_measures_boundary_points_once() {
        // Two adjacent cells of one submodel share grid-aligned boundary
        // points; with the per-round shared cache those points are measured
        // and budgeted once.
        let machine = harpertown_openblas();
        let snapshot = build_snapshot(SimExecutor::noiseless(machine.clone()));
        let machine_id = machine.id();
        let report = report_for(&snapshot, &machine_id, 10);
        assert!(report.cells.len() >= 2, "need adjacent regions to share");
        let mut refiner = OnlineRefiner::new(
            SimExecutor::noiseless(machine),
            Locality::InCache,
            1,
            OnlineRefinerConfig::default(),
        )
        .with_templates(&[trsm_template()]);
        let (_, outcome) = refiner.refine(&snapshot, &report);
        assert!(outcome.cells_refined >= 2);
        // Every distinct point is measured exactly once (repetitions 1 +
        // warm-up 1 = 2 raw measurements per distinct point): if boundary
        // points were re-measured per cell, measurements would exceed this.
        assert_eq!(refiner.measurements_taken(), 2 * outcome.samples_used);
    }

    #[test]
    fn failing_cells_are_quarantined_cooled_down_probed_and_recovered() {
        use dla_machine::{ChaosConfig, ChaosExecutor};

        let machine = harpertown_openblas();
        let snapshot = build_snapshot(SimExecutor::noiseless(machine.clone()));
        let machine_id = machine.id();
        let mut report = report_for(&snapshot, &machine_id, 10);
        report.cells.truncate(1);
        let hot = report.cells[0].clone();

        // Every measurement fails until the schedule is lifted below.
        let chaos = ChaosExecutor::new(
            SimExecutor::noiseless(machine.clone()),
            ChaosConfig {
                seed: 7,
                transient_probability: 1.0,
                ..Default::default()
            },
        );
        let mut refiner = OnlineRefiner::new(
            chaos,
            Locality::InCache,
            1,
            OnlineRefinerConfig {
                quarantine_threshold: 2,
                quarantine_cooldown: 2,
                ..Default::default()
            },
        )
        .with_templates(&[trsm_template()]);

        // Round 1: rebuild fails — first strike, breaker still closed.
        let (delta, o1) = refiner.refine(&snapshot, &report);
        assert_eq!(delta.len(), 0, "a failed rebuild must not reach the delta");
        assert_eq!(o1.fit_failures, 1);
        assert_eq!(o1.cells_quarantined, 0);
        assert!(o1.quarantined.is_empty());
        assert!(o1.sample_retries > 0, "retries must be accounted");

        // Round 2: second strike opens the breaker with full provenance.
        let (delta, o2) = refiner.refine(&snapshot, &report);
        assert_eq!(delta.len(), 0);
        assert_eq!(o2.fit_failures, 1);
        assert_eq!(o2.cells_quarantined, 1);
        assert_eq!(o2.quarantined.len(), 1);
        let q = &o2.quarantined[0];
        assert_eq!(q.routine, Routine::Trsm);
        assert_eq!(q.flags, hot.flags);
        assert_eq!(q.region, hot.region);
        assert_eq!(q.failures, 2);
        assert_eq!(q.cooldown_remaining, 2);
        assert_eq!(refiner.quarantined_cells(), o2.quarantined);

        // Round 3: breaker open — the cell is skipped without sampling.
        let (delta, o3) = refiner.refine(&snapshot, &report);
        assert_eq!(delta.len(), 0);
        assert_eq!(o3.skipped_quarantined, 1);
        assert_eq!(o3.fit_failures, 0);
        assert_eq!(o3.probes, 0);
        assert_eq!(o3.samples_used, 0);

        // Round 4: cooldown expired — half-open probe fails and re-opens.
        let (delta, o4) = refiner.refine(&snapshot, &report);
        assert_eq!(delta.len(), 0);
        assert_eq!(o4.probes, 1);
        assert_eq!(o4.fit_failures, 1);
        assert_eq!(o4.cells_quarantined, 0, "re-opening is not a new cell");
        assert_eq!(o4.quarantined[0].failures, 3);
        assert_eq!(o4.quarantined[0].cooldown_remaining, 2);

        // Round 5: cooling down again.
        let (_, o5) = refiner.refine(&snapshot, &report);
        assert_eq!(o5.skipped_quarantined, 1);

        // Lift the faults: the machine has recovered.
        refiner.executor_mut().config_mut().transient_probability = 0.0;

        // Round 6: the probe succeeds — breaker closes, the cell is rebuilt
        // and the delta finally carries the refreshed submodel.
        let (delta, o6) = refiner.refine(&snapshot, &report);
        assert_eq!(o6.probes, 1);
        assert_eq!(o6.cells_recovered, 1);
        assert_eq!(o6.cells_refined, 1);
        assert!(o6.quarantined.is_empty());
        assert!(refiner.quarantined_cells().is_empty());
        assert_eq!(delta.len(), 1);
        let rebuilt = delta
            .get(Routine::Trsm, &machine_id, Locality::InCache)
            .unwrap();
        assert!(rebuilt.submodel(&hot.flags).unwrap().covers_space(5));
    }

    #[test]
    fn sub_threshold_strikes_clear_on_success() {
        use dla_machine::{ChaosConfig, ChaosExecutor};

        let machine = harpertown_openblas();
        let snapshot = build_snapshot(SimExecutor::noiseless(machine.clone()));
        let machine_id = machine.id();
        let mut report = report_for(&snapshot, &machine_id, 10);
        report.cells.truncate(1);

        let chaos = ChaosExecutor::new(
            SimExecutor::noiseless(machine.clone()),
            ChaosConfig {
                seed: 11,
                transient_probability: 1.0,
                ..Default::default()
            },
        );
        let mut refiner = OnlineRefiner::new(
            chaos,
            Locality::InCache,
            1,
            OnlineRefinerConfig {
                quarantine_threshold: 2,
                quarantine_cooldown: 2,
                ..Default::default()
            },
        )
        .with_templates(&[trsm_template()]);

        // One strike, then a clean round: the strike record is cleared, so
        // two later failures are needed to quarantine (no stale strikes).
        let (_, o1) = refiner.refine(&snapshot, &report);
        assert_eq!(o1.fit_failures, 1);
        refiner.executor_mut().config_mut().transient_probability = 0.0;
        let (_, o2) = refiner.refine(&snapshot, &report);
        assert_eq!(o2.cells_refined, 1);
        assert_eq!(o2.cells_recovered, 0, "closed breaker means no recovery");
        refiner.executor_mut().config_mut().transient_probability = 1.0;
        let (_, o3) = refiner.refine(&snapshot, &report);
        assert_eq!(o3.fit_failures, 1);
        assert_eq!(o3.cells_quarantined, 0, "strike count restarted from zero");
    }

    #[test]
    fn dedupe_templates_keeps_one_call_per_submodel_key() {
        let a = trsm_template();
        let b = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            16,
            16,
            -1.0,
        );
        let c = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            1.0,
        );
        let gemm = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
        let deduped = dedupe_templates(&[a.clone(), b, c.clone(), gemm.clone()]);
        // a and b share a key (diag folded): 3 distinct templates remain.
        assert_eq!(deduped.len(), 3);
        assert!(deduped.iter().any(|t| submodel_key(t) == submodel_key(&a)));
        assert!(deduped.iter().any(|t| submodel_key(t) == submodel_key(&c)));
        assert!(deduped.iter().any(|t| t.routine() == Routine::Gemm));
    }
}
