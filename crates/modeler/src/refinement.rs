//! Adaptive Refinement (paper Section III-C2).

use dla_machine::Executor;
use dla_mat::stats::Summary;
use dla_model::{error_order, FitWorkspace, PiecewiseModel, Region, RegionModel};
use dla_sampler::SampleError;

use crate::SampleOracle;

/// Configuration of the Adaptive Refinement strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementConfig {
    /// Relative error bound ε on the median fit.
    pub error_bound: f64,
    /// Minimum region extent; regions are not split below this size even if
    /// their fit error exceeds the bound (they are accepted anyway, as in the
    /// paper).
    pub min_region_size: usize,
    /// Number of grid points per dimension used when fitting a region.
    pub grid_per_dim: usize,
    /// Total degree of the fitted polynomials.
    pub degree: u32,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            error_bound: 0.10,
            min_region_size: 32,
            grid_per_dim: 4,
            degree: 2,
        }
    }
}

impl RefinementConfig {
    /// The configuration used in the paper's Figure III.7a.
    pub fn paper_a() -> Self {
        RefinementConfig {
            error_bound: 0.10,
            min_region_size: 64,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.7b.
    pub fn paper_b() -> Self {
        RefinementConfig {
            error_bound: 0.05,
            min_region_size: 64,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.7c — the configuration
    /// the paper selects for all later experiments (ε = 10 %, s_min = 32).
    pub fn paper_c() -> Self {
        RefinementConfig {
            error_bound: 0.10,
            min_region_size: 32,
            ..Default::default()
        }
    }

    /// The configuration used in the paper's Figure III.7d.
    pub fn paper_d() -> Self {
        RefinementConfig {
            error_bound: 0.05,
            min_region_size: 32,
            ..Default::default()
        }
    }

    /// Builds a piecewise model over `space` by Adaptive Refinement, with a
    /// fresh fit workspace.
    pub fn build<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        space: &Region,
    ) -> PiecewiseModel {
        self.build_with(oracle, &mut FitWorkspace::new(), space)
    }

    /// Builds a piecewise model over `space` by Adaptive Refinement, fitting
    /// every region through the given [`FitWorkspace`] (the Modeler passes
    /// one workspace across the whole region stack and all submodels).
    pub fn build_with<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        space: &Region,
    ) -> PiecewiseModel {
        let mut stack = vec![space.clone()];
        let mut regions: Vec<RegionModel> = Vec::new();
        let step = oracle.grid_step();
        let mut points: Vec<Vec<usize>> = Vec::new();
        let mut summaries: Vec<Summary> = Vec::new();

        while let Some(region) = stack.pop() {
            let fitted = self.fit_region(oracle, workspace, &mut points, &mut summaries, &region);
            let splittable_children = region.split(self.min_region_size, step);
            let can_split = splittable_children.len() > 1;
            if fitted.error <= self.error_bound || !can_split {
                regions.push(fitted);
            } else {
                stack.extend(splittable_children);
            }
        }

        let total = oracle.unique_samples();
        // NaN fit errors (degenerate fits) sort last instead of panicking
        // mid-sort in `partial_cmp(...).expect(...)`.
        regions.sort_by(|a, b| error_order(a.error, b.error));
        PiecewiseModel::new(space.clone(), regions, total)
    }

    /// Fault-tolerant variant of [`RefinementConfig::build_with`]: measures
    /// through the oracle's fallible, retrying path and propagates the first
    /// unrecoverable [`SampleError`] instead of panicking on bad samples.
    ///
    /// The split/accept loop is identical to the infallible path; only the
    /// measurement calls differ, so on a fault-free executor both produce the
    /// same model (modulo the robust path's outlier trimming).  On error,
    /// everything measured so far stays in the oracle's cache — a retried
    /// build pays only for the missing points.
    pub fn try_build_with<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        space: &Region,
    ) -> Result<PiecewiseModel, SampleError> {
        let mut stack = vec![space.clone()];
        let mut regions: Vec<RegionModel> = Vec::new();
        let step = oracle.grid_step();
        let mut points: Vec<Vec<usize>> = Vec::new();
        let mut summaries: Vec<Summary> = Vec::new();

        while let Some(region) = stack.pop() {
            let fitted =
                self.try_fit_region(oracle, workspace, &mut points, &mut summaries, &region)?;
            let splittable_children = region.split(self.min_region_size, step);
            let can_split = splittable_children.len() > 1;
            if fitted.error <= self.error_bound || !can_split {
                regions.push(fitted);
            } else {
                stack.extend(splittable_children);
            }
        }

        let total = oracle.unique_samples();
        regions.sort_by(|a, b| error_order(a.error, b.error));
        Ok(PiecewiseModel::new(space.clone(), regions, total))
    }

    fn try_fit_region<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        points: &mut Vec<Vec<usize>>,
        summaries: &mut Vec<Summary>,
        region: &Region,
    ) -> Result<RegionModel, SampleError> {
        let step = oracle.grid_step();
        region.sample_grid_into(self.grid_per_dim, step, points);
        oracle.try_measure_into(points, summaries)?;
        Ok(RegionModel::fit_with_fallback(
            workspace,
            region.clone(),
            points,
            summaries,
            self.degree,
        )
        // lint: allow(unwrap): fit_with_fallback degrades to a constant fit, which cannot fail with >= 1 sample
        .expect("constant fit succeeds with at least one sample"))
    }

    fn fit_region<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        points: &mut Vec<Vec<usize>>,
        summaries: &mut Vec<Summary>,
        region: &Region,
    ) -> RegionModel {
        let step = oracle.grid_step();
        region.sample_grid_into(self.grid_per_dim, step, points);
        oracle.measure_into(points, summaries);
        RegionModel::fit_with_fallback(workspace, region.clone(), points, summaries, self.degree)
            // lint: allow(unwrap): fit_with_fallback degrades to a constant fit, which cannot fail with >= 1 sample
            .expect("constant fit succeeds with at least one sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Call, Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_sampler::{Sampler, SamplerConfig};

    fn build_with(config: RefinementConfig, space: Region) -> (PiecewiseModel, usize) {
        let mut sampler = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(1),
        );
        let template = if space.dim() == 1 {
            Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8)
        } else {
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                0.5,
            )
        };
        let mut oracle = SampleOracle::new(&mut sampler, template, 8);
        let model = config.build(&mut oracle, &space);
        let samples = oracle.unique_samples();
        (model, samples)
    }

    #[test]
    fn always_covers_the_space() {
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let (model, samples) = build_with(RefinementConfig::default(), space);
        assert!(model.covers_space(9));
        assert!(model.region_count() >= 1);
        assert!(samples >= model.region_count());
        assert_eq!(model.total_samples, samples);
    }

    #[test]
    fn regions_partition_without_overlap_violations() {
        // Refinement regions never overlap except along shared boundaries;
        // verify by checking a probe grid is covered by at least one region
        // and that region areas sum to roughly the space area.
        let space = Region::new(vec![8, 8], vec![520, 520]);
        let (model, _) = build_with(RefinementConfig::default(), space.clone());
        let space_area = ((space.extent(0) + 1) * (space.extent(1) + 1)) as f64;
        let area_sum: f64 = model
            .regions
            .iter()
            .map(|r| ((r.region.extent(0) + 1) * (r.region.extent(1) + 1)) as f64)
            .sum();
        // Shared boundaries double-count one row/column per cut, so the sum
        // slightly exceeds the area but must stay in the same ballpark.
        assert!(area_sum >= space_area * 0.99);
        assert!(
            area_sum <= space_area * 1.25,
            "area sum {area_sum} vs {space_area}"
        );
    }

    #[test]
    fn tighter_bound_creates_more_regions_and_samples() {
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let (loose, loose_samples) = build_with(RefinementConfig::paper_a(), space.clone());
        let (tight, tight_samples) = build_with(RefinementConfig::paper_d(), space);
        assert!(tight.region_count() >= loose.region_count());
        assert!(tight_samples >= loose_samples);
        assert!(tight.average_error() <= loose.average_error() + 1e-9);
    }

    #[test]
    fn smaller_min_region_size_allows_finer_regions() {
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let coarse_cfg = RefinementConfig {
            error_bound: 0.0005,
            min_region_size: 256,
            ..Default::default()
        };
        let fine_cfg = RefinementConfig {
            error_bound: 0.0005,
            min_region_size: 32,
            ..Default::default()
        };
        let (coarse, _) = build_with(coarse_cfg, space.clone());
        let (fine, _) = build_with(fine_cfg, space);
        let min_extent_coarse = coarse
            .regions
            .iter()
            .map(|r| r.region.min_extent())
            .min()
            .unwrap();
        let min_extent_fine = fine
            .regions
            .iter()
            .map(|r| r.region.min_extent())
            .min()
            .unwrap();
        assert!(min_extent_fine <= min_extent_coarse);
        assert!(fine.region_count() >= coarse.region_count());
    }

    #[test]
    fn one_dimensional_space_works() {
        let space = Region::new(vec![8], vec![1024]);
        let (model, _) = build_with(
            RefinementConfig {
                error_bound: 0.05,
                min_region_size: 64,
                grid_per_dim: 5,
                degree: 2,
            },
            space,
        );
        assert!(model.covers_space(33));
        for n in [8usize, 96, 250, 768, 1024] {
            assert!(model.eval(&[n]).unwrap().median > 0.0);
        }
    }

    #[test]
    fn nan_error_regions_sort_last_in_region_order() {
        // Regression for the `partial_cmp(...).expect("finite errors")` sort:
        // a degenerate fit can leave a NaN error, and the most-accurate-first
        // region order must tolerate it (NaN last) instead of panicking.
        let space = Region::new(vec![8, 8], vec![256, 256]);
        let (model, _) = build_with(RefinementConfig::default(), space);
        let mut regions: Vec<_> = model.regions.clone();
        let mut poisoned = regions[0].clone();
        poisoned.error = f64::NAN;
        regions.insert(0, poisoned);
        regions.sort_by(|a, b| dla_model::error_order(a.error, b.error));
        assert!(regions.last().unwrap().error.is_nan());
        assert!(regions[..regions.len() - 1]
            .windows(2)
            .all(|w| w[0].error <= w[1].error));
    }

    #[test]
    fn paper_configurations_differ() {
        assert_eq!(RefinementConfig::paper_a().min_region_size, 64);
        assert_eq!(RefinementConfig::paper_c().min_region_size, 32);
        assert!(RefinementConfig::paper_b().error_bound < RefinementConfig::paper_a().error_bound);
        assert_eq!(RefinementConfig::paper_d().error_bound, 0.05);
    }
}
