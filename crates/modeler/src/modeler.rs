//! The Modeler orchestrator.

use std::collections::BTreeMap;

use dla_blas::{Call, Routine};
use dla_machine::{Executor, Locality};
use dla_model::{
    submodel_key, FitWorkspace, ModelRepository, PiecewiseModel, Region, RoutineModel,
};
use dla_sampler::{Sampler, SamplerConfig};

use crate::{ExpansionConfig, RefinementConfig, SampleOracle};

/// A model-generation strategy (one of the two described in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Model Expansion.
    Expansion(ExpansionConfig),
    /// Adaptive Refinement.
    Refinement(RefinementConfig),
}

impl Strategy {
    /// The strategy the paper selects for its prediction experiments:
    /// Adaptive Refinement with ε = 10 % and a minimum region size of 32.
    pub fn paper_default() -> Strategy {
        Strategy::Refinement(RefinementConfig::paper_c())
    }

    /// Builds a piecewise model for one flag combination over `space`.
    pub fn build<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        space: &Region,
    ) -> PiecewiseModel {
        self.build_with(oracle, &mut FitWorkspace::new(), space)
    }

    /// Builds a piecewise model for one flag combination over `space`,
    /// fitting through the given [`FitWorkspace`].
    pub fn build_with<E: Executor>(
        &self,
        oracle: &mut SampleOracle<'_, E>,
        workspace: &mut FitWorkspace,
        space: &Region,
    ) -> PiecewiseModel {
        match self {
            Strategy::Expansion(cfg) => cfg.build_with(oracle, workspace, space),
            Strategy::Refinement(cfg) => cfg.build_with(oracle, workspace, space),
        }
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Expansion(_) => "model-expansion",
            Strategy::Refinement(_) => "adaptive-refinement",
        }
    }
}

/// Summary of one model-generation run (what the paper's Figures III.6–III.8
/// tabulate per configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelingReport {
    /// The modelled routine.
    pub routine: Routine,
    /// The strategy used.
    pub strategy_name: String,
    /// Number of distinct sample points taken.
    pub samples: usize,
    /// Number of regions in the resulting model(s).
    pub regions: usize,
    /// Extent-weighted average relative fit error across regions.
    pub average_error: f64,
}

/// The Modeler: builds routine models by driving a Sampler with a strategy.
///
/// The Modeler owns one [`FitWorkspace`] that persists across every region,
/// submodel and routine it builds, so monomial plans and fit buffers are
/// allocated once per Modeler rather than once per fit.
pub struct Modeler<E: Executor> {
    sampler: Sampler<E>,
    strategy: Strategy,
    grid_step: usize,
    workspace: FitWorkspace,
}

impl<E: Executor> Modeler<E> {
    /// Creates a Modeler.
    ///
    /// `locality` selects the memory-locality scenario the models describe;
    /// `repetitions` is how many measurements the Sampler takes per point.
    pub fn new(
        executor: E,
        locality: Locality,
        repetitions: usize,
        strategy: Strategy,
    ) -> Modeler<E> {
        let config = SamplerConfig {
            locality,
            repetitions,
            warmup_discard: 1,
        };
        Modeler {
            sampler: Sampler::new(executor, config),
            strategy,
            grid_step: 8,
            workspace: FitWorkspace::new(),
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Changes the grid step sample points are aligned to (default 8, as in
    /// the paper).
    pub fn set_grid_step(&mut self, step: usize) {
        self.grid_step = step.max(1);
    }

    /// The identifier of the machine configuration being modelled.
    pub fn machine_id(&self) -> String {
        self.sampler.machine().id()
    }

    /// The locality scenario the models are built for.
    pub fn locality(&self) -> Locality {
        self.sampler.config().locality
    }

    /// Total number of raw measurements the Sampler has performed.
    pub fn measurements_taken(&self) -> usize {
        self.sampler.samples_taken()
    }

    /// Builds the piecewise model for a single call template (one flag
    /// combination) over `space`, returning the model and the number of
    /// distinct points sampled for it.
    pub fn build_submodel(&mut self, template: &Call, space: &Region) -> (PiecewiseModel, usize) {
        let mut oracle = SampleOracle::new(&mut self.sampler, template.clone(), self.grid_step);
        let model = self
            .strategy
            .build_with(&mut oracle, &mut self.workspace, space);
        let samples = oracle.unique_samples();
        (model, samples)
    }

    /// Builds a [`RoutineModel`] covering every distinct flag combination that
    /// appears in `templates` (all templates must invoke the same routine).
    ///
    /// Returns the model together with a [`ModelingReport`].
    pub fn build_routine_model(
        &mut self,
        templates: &[Call],
        space: &Region,
    ) -> (RoutineModel, ModelingReport) {
        assert!(!templates.is_empty(), "at least one template call required");
        let routine = templates[0].routine();
        assert!(
            templates.iter().all(|t| t.routine() == routine),
            "all templates must invoke the same routine"
        );
        assert_eq!(
            space.dim(),
            routine.size_count(),
            "parameter space dimension must match the routine's size count"
        );

        // One representative template per distinct submodel key.
        let mut by_key: BTreeMap<Vec<usize>, Call> = BTreeMap::new();
        for t in templates {
            by_key.entry(submodel_key(t)).or_insert_with(|| t.clone());
        }

        let mut model =
            RoutineModel::new(routine, self.machine_id(), self.locality(), space.clone());
        let mut total_samples = 0;
        let mut total_regions = 0;
        let mut error_acc = 0.0;
        for (key, template) in by_key {
            let (submodel, samples) = self.build_submodel(&template, space);
            total_samples += samples;
            total_regions += submodel.region_count();
            error_acc += submodel.average_error();
            model.insert_submodel(key, submodel);
        }
        let submodel_count = model.submodel_count().max(1);
        let report = ModelingReport {
            routine,
            strategy_name: self.strategy.name().to_string(),
            samples: total_samples,
            regions: total_regions,
            average_error: error_acc / submodel_count as f64,
        };
        (model, report)
    }

    /// Builds routine models for several routines (given one template list per
    /// routine with its parameter space) and stores them in `repository`.
    ///
    /// Returns the per-routine reports.
    pub fn populate_repository(
        &mut self,
        repository: &mut ModelRepository,
        routines: &[(Vec<Call>, Region)],
    ) -> Vec<ModelingReport> {
        let mut reports = Vec::with_capacity(routines.len());
        for (templates, space) in routines {
            let (model, report) = self.build_routine_model(templates, space);
            repository.insert(model);
            reports.push(report);
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;

    fn modeler(strategy: Strategy) -> Modeler<SimExecutor> {
        Modeler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            Locality::InCache,
            1,
            strategy,
        )
    }

    fn trsm_templates() -> Vec<Call> {
        vec![
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                1.0,
            ),
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::Unit,
                8,
                8,
                -1.0,
            ),
            Call::trsm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                1.0,
            ),
        ]
    }

    #[test]
    fn routine_model_has_one_submodel_per_flag_combination() {
        let mut m = modeler(Strategy::Refinement(RefinementConfig {
            error_bound: 0.15,
            min_region_size: 128,
            grid_per_dim: 3,
            degree: 2,
        }));
        let space = Region::new(vec![8, 8], vec![384, 384]);
        let (model, report) = m.build_routine_model(&trsm_templates(), &space);
        // Unit and NonUnit left-lower templates share a submodel (diag folded),
        // the right-side template gets its own.
        assert_eq!(model.submodel_count(), 2);
        assert_eq!(report.routine, Routine::Trsm);
        assert!(report.samples > 0);
        assert!(report.regions >= 2);
        assert_eq!(report.strategy_name, "adaptive-refinement");
        // Estimates exist for all three templates.
        for t in trsm_templates() {
            let call = t.with_sizes(&[256, 256]);
            assert!(model.estimate(&call).unwrap().median > 0.0);
        }
        assert!(m.measurements_taken() > 0);
        assert_eq!(model.machine_id, m.machine_id());
    }

    #[test]
    fn both_strategies_produce_usable_models() {
        let space = Region::new(vec![8, 8], vec![256, 256]);
        for strategy in [
            Strategy::Expansion(ExpansionConfig {
                initial_size: 64,
                grid_per_dim: 3,
                ..Default::default()
            }),
            Strategy::Refinement(RefinementConfig {
                min_region_size: 64,
                grid_per_dim: 3,
                ..Default::default()
            }),
        ] {
            let mut m = modeler(strategy);
            let template = Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                1.0,
            );
            let (submodel, samples) = m.build_submodel(&template, &space);
            assert!(samples > 0, "{} took no samples", strategy.name());
            assert!(submodel.covers_space(5));
        }
    }

    #[test]
    fn populate_repository_stores_models_for_lookup() {
        let mut m = modeler(Strategy::Refinement(RefinementConfig {
            error_bound: 0.2,
            min_region_size: 128,
            grid_per_dim: 3,
            degree: 2,
        }));
        let mut repo = ModelRepository::new();
        let gemm_space = Region::new(vec![8, 8, 8], vec![128, 128, 128]);
        let trsm_space = Region::new(vec![8, 8], vec![256, 256]);
        let reports = m.populate_repository(
            &mut repo,
            &[
                (
                    vec![Call::gemm(
                        Trans::NoTrans,
                        Trans::NoTrans,
                        8,
                        8,
                        8,
                        1.0,
                        1.0,
                    )],
                    gemm_space,
                ),
                (
                    vec![Call::trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    )],
                    trsm_space,
                ),
            ],
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(repo.len(), 2);
        let id = m.machine_id();
        assert!(repo.get(Routine::Gemm, &id, Locality::InCache).is_some());
        assert!(repo.get(Routine::Trsm, &id, Locality::InCache).is_some());
        assert!(repo.get(Routine::Trmm, &id, Locality::InCache).is_none());
    }

    #[test]
    #[should_panic(expected = "same routine")]
    fn mixed_routines_panic() {
        let mut m = modeler(Strategy::paper_default());
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let _ = m.build_routine_model(
            &[
                Call::trsm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::NoTrans,
                    Diag::NonUnit,
                    8,
                    8,
                    1.0,
                ),
                Call::trmm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::NoTrans,
                    Diag::NonUnit,
                    8,
                    8,
                    1.0,
                ),
            ],
            &space,
        );
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn wrong_space_dimension_panics() {
        let mut m = modeler(Strategy::paper_default());
        let space = Region::new(vec![8], vec![64]);
        let _ = m.build_routine_model(
            &[Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                8,
                8,
                1.0,
            )],
            &space,
        );
    }

    #[test]
    fn strategy_names_and_default() {
        assert_eq!(Strategy::paper_default().name(), "adaptive-refinement");
        assert_eq!(
            Strategy::Expansion(ExpansionConfig::default()).name(),
            "model-expansion"
        );
    }
}
