//! The sampling oracle used by the modeling strategies.

use std::collections::HashMap;

use dla_blas::Call;
use dla_machine::Executor;
use dla_mat::stats::Summary;
use dla_sampler::Sampler;

/// Leading dimension the paper fixes all operands to during model generation.
pub const MODEL_LEADING_DIM: usize = 2500;

/// A caching front end between a modeling strategy and the Sampler.
///
/// The oracle owns the call template (routine + flags + scalars); a strategy
/// asks for measurements at integer-parameter points, and the oracle
/// instantiates the template at that point, fixes the leading dimensions,
/// samples it, and caches the summary so revisiting a point is free.  The
/// number of *distinct* points sampled is the "number of samples" the paper
/// reports when comparing strategies.
pub struct SampleOracle<'a, E: Executor> {
    sampler: &'a mut Sampler<E>,
    template: Call,
    cache: HashMap<Vec<usize>, Summary>,
    grid_step: usize,
}

impl<'a, E: Executor> SampleOracle<'a, E> {
    /// Creates an oracle for a call template.
    pub fn new(sampler: &'a mut Sampler<E>, template: Call, grid_step: usize) -> Self {
        SampleOracle {
            sampler,
            template: template.with_leading_dims(MODEL_LEADING_DIM),
            cache: HashMap::new(),
            grid_step: grid_step.max(1),
        }
    }

    /// The grid step the strategies should align sample points to (the paper
    /// samples only multiples of 8 to avoid small-scale fluctuations).
    pub fn grid_step(&self) -> usize {
        self.grid_step
    }

    /// The call template (with normalised leading dimensions).
    pub fn template(&self) -> &Call {
        &self.template
    }

    /// Measures the template at an integer-parameter point (cached).
    pub fn measure(&mut self, point: &[usize]) -> Summary {
        if let Some(s) = self.cache.get(point) {
            return *s;
        }
        let call = self.template.with_sizes(point);
        let result = self.sampler.sample(&call);
        let summary = result.ticks;
        self.cache.insert(point.to_vec(), summary);
        summary
    }

    /// Measures a whole set of points and returns `(point, summary)` pairs.
    pub fn measure_all(&mut self, points: &[Vec<usize>]) -> Vec<(Vec<usize>, Summary)> {
        points
            .iter()
            .map(|p| (p.clone(), self.measure(p)))
            .collect()
    }

    /// Number of distinct points sampled so far.
    pub fn unique_samples(&self) -> usize {
        self.cache.len()
    }

    /// All cached samples (used to hand already-acquired data to a fit).
    pub fn cached_samples(&self) -> Vec<(Vec<usize>, Summary)> {
        self.cache.iter().map(|(p, s)| (p.clone(), *s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_sampler::SamplerConfig;

    fn template() -> Call {
        Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            0.5,
        )
    }

    #[test]
    fn caches_points_and_counts_unique_samples() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 3),
            SamplerConfig::in_cache(4),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let a = oracle.measure(&[64, 64]);
        let b = oracle.measure(&[64, 64]);
        assert_eq!(a, b, "second lookup must come from the cache");
        assert_eq!(oracle.unique_samples(), 1);
        let _ = oracle.measure(&[128, 64]);
        assert_eq!(oracle.unique_samples(), 2);
        assert_eq!(oracle.cached_samples().len(), 2);
        // Only the first point triggered executor work beyond its repetitions.
        assert_eq!(sampler.samples_taken(), 2 * 5);
    }

    #[test]
    fn template_leading_dims_are_normalised() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 3),
            SamplerConfig::in_cache(2),
        );
        let oracle = SampleOracle::new(&mut sampler, template(), 8);
        assert!(oracle
            .template()
            .leading_dims()
            .iter()
            .all(|&ld| ld == MODEL_LEADING_DIM));
        assert_eq!(oracle.grid_step(), 8);
    }

    #[test]
    fn larger_sizes_take_longer() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 5),
            SamplerConfig::in_cache(4),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let small = oracle.measure(&[64, 64]).median;
        let large = oracle.measure(&[512, 512]).median;
        assert!(large > small * 10.0);
    }

    #[test]
    fn measure_all_returns_pairs_in_order() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 5),
            SamplerConfig::in_cache(2),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let points = vec![vec![32, 32], vec![64, 32], vec![32, 32]];
        let results = oracle.measure_all(&points);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].0, vec![32, 32]);
        assert_eq!(results[0].1, results[2].1);
        assert_eq!(oracle.unique_samples(), 2);
    }
}
