//! The sampling oracle used by the modeling strategies.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use dla_blas::Call;
use dla_machine::Executor;
use dla_mat::stats::Summary;
use dla_sampler::{SampleError, Sampler};

/// Leading dimension the paper fixes all operands to during model generation.
pub const MODEL_LEADING_DIM: usize = 2500;

/// Fixed-size cache key for a sample point (mirrors `Call::sizes_fixed`: no
/// routine takes more than [`Call::MAX_SIZES`] integer sizes, so points are
/// padded with zeros instead of heap-allocated).
type PointKey = [usize; Call::MAX_SIZES];

/// Multiply-mix hasher for the point cache.
///
/// The cache key is three machine words, hashed on every single grid lookup
/// of every region fit; the default SipHash costs more than the arithmetic it
/// guards against here (the keys are trusted internal sample coordinates, so
/// HashDoS resistance buys nothing).
#[derive(Default)]
struct PointHasher(u64);

impl Hasher for PointHasher {
    // lint: allow(panic-free): chunks(8) yields at most 8 bytes, the scratch word's size
    fn write(&mut self, bytes: &[u8]) {
        // Fixed-size integer keys arrive here as one raw-byte write; fold
        // them a word at a time.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(word)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        // Final avalanche so grid-aligned (multiple-of-8) coordinates spread
        // across the table's low bits.
        let mut h = self.0;
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^ (h >> 32)
    }
}

type PointCache = HashMap<PointKey, Summary, BuildHasherDefault<PointHasher>>;

/// An opaque, detachable cache of measured points.
///
/// An oracle's cache can be taken out ([`SampleOracle::into_cache`]) and
/// threaded into a later oracle over the *same template*
/// ([`SampleOracle::with_cache`]), so several oracles created in sequence —
/// e.g. one per refined region of one submodel within an online-refinement
/// round — share measurements instead of re-measuring shared grid points
/// (and instead of double-counting them as distinct samples).
#[derive(Default)]
pub struct SampleCache(PointCache);

/// A caching front end between a modeling strategy and the Sampler.
///
/// The oracle owns the call template (routine + flags + scalars); a strategy
/// asks for measurements at integer-parameter points, and the oracle
/// instantiates the template at that point, fixes the leading dimensions,
/// samples it, and caches the summary so revisiting a point is free.  The
/// number of *distinct* points sampled is the "number of samples" the paper
/// reports when comparing strategies.
///
/// The cache is keyed by fixed-size arrays and populated through the map's
/// entry API, so a lookup — hit or miss — hashes the point exactly once and
/// never allocates.
pub struct SampleOracle<'a, E: Executor> {
    sampler: &'a mut Sampler<E>,
    template: Call,
    cache: PointCache,
    grid_step: usize,
    dim: usize,
}

impl<'a, E: Executor> SampleOracle<'a, E> {
    /// Creates an oracle for a call template.
    pub fn new(sampler: &'a mut Sampler<E>, template: Call, grid_step: usize) -> Self {
        SampleOracle::with_cache(sampler, template, grid_step, SampleCache::default())
    }

    /// Creates an oracle seeded with a previously detached cache (see
    /// [`SampleCache`]); cached points answer without touching the sampler.
    /// The cache must come from an oracle over the same template — points
    /// are keyed by sizes only.
    pub fn with_cache(
        sampler: &'a mut Sampler<E>,
        template: Call,
        grid_step: usize,
        cache: SampleCache,
    ) -> Self {
        let dim = template.routine().size_count();
        debug_assert!(dim <= Call::MAX_SIZES);
        SampleOracle {
            sampler,
            template: template.with_leading_dims(MODEL_LEADING_DIM),
            cache: cache.0,
            grid_step: grid_step.max(1),
            dim,
        }
    }

    /// Detaches the measured-point cache for reuse by a later oracle over
    /// the same template.
    pub fn into_cache(self) -> SampleCache {
        SampleCache(self.cache)
    }

    /// The grid step the strategies should align sample points to (the paper
    /// samples only multiples of 8 to avoid small-scale fluctuations).
    pub fn grid_step(&self) -> usize {
        self.grid_step
    }

    /// The call template (with normalised leading dimensions).
    pub fn template(&self) -> &Call {
        &self.template
    }

    /// Measures the template at an integer-parameter point (cached).
    pub fn measure(&mut self, point: &[usize]) -> Summary {
        assert_eq!(
            point.len(),
            self.dim,
            "sample point arity does not match the template routine"
        );
        let mut key: PointKey = [0; Call::MAX_SIZES];
        key[..point.len()].copy_from_slice(point);
        // Split borrows: the entry holds `cache` while the closure drives the
        // sampler, so a miss instantiates the template and samples exactly
        // once, and a hit touches nothing else.
        let SampleOracle {
            sampler,
            template,
            cache,
            ..
        } = self;
        *cache
            .entry(key)
            .or_insert_with(|| sampler.sample_ticks(&template.with_sizes(point)))
    }

    /// Fault-tolerant variant of [`SampleOracle::measure`]: drives the
    /// sampler's fallible, retrying, robustly-aggregating path
    /// ([`Sampler::try_sample_ticks`]).  Failed points are **not** cached, so
    /// a later attempt re-measures them; cached successes answer without
    /// touching the sampler, exactly like the infallible path.
    pub fn try_measure(&mut self, point: &[usize]) -> Result<Summary, SampleError> {
        assert_eq!(
            point.len(),
            self.dim,
            "sample point arity does not match the template routine"
        );
        let mut key: PointKey = [0; Call::MAX_SIZES];
        key[..point.len()].copy_from_slice(point);
        use std::collections::hash_map::Entry;
        match self.cache.entry(key) {
            Entry::Occupied(e) => Ok(*e.get()),
            Entry::Vacant(v) => {
                let summary = self
                    .sampler
                    .try_sample_ticks(&self.template.with_sizes(point))?;
                Ok(*v.insert(summary))
            }
        }
    }

    /// Fault-tolerant variant of [`SampleOracle::measure_into`]: stops at the
    /// first point whose measurement fails (after the sampler's retries), so
    /// a fit is either given a complete sample set or none at all.
    pub fn try_measure_into(
        &mut self,
        points: &[Vec<usize>],
        out: &mut Vec<Summary>,
    ) -> Result<(), SampleError> {
        out.clear();
        out.reserve(points.len());
        for p in points {
            let s = self.try_measure(p)?;
            out.push(s);
        }
        Ok(())
    }

    /// Measures a whole set of points, returning the summaries in point order.
    pub fn measure_all(&mut self, points: &[Vec<usize>]) -> Vec<Summary> {
        let mut out = Vec::with_capacity(points.len());
        self.measure_into(points, &mut out);
        out
    }

    /// Measures a whole set of points into a reusable buffer (cleared first);
    /// `out[i]` is the summary for `points[i]`.
    pub fn measure_into(&mut self, points: &[Vec<usize>], out: &mut Vec<Summary>) {
        out.clear();
        out.reserve(points.len());
        for p in points {
            let s = self.measure(p);
            out.push(s);
        }
    }

    /// Number of distinct points sampled so far.
    pub fn unique_samples(&self) -> usize {
        self.cache.len()
    }

    /// All cached samples (used to hand already-acquired data to a fit).
    pub fn cached_samples(&self) -> Vec<(Vec<usize>, Summary)> {
        self.cache
            .iter()
            .map(|(p, s)| (p[..self.dim].to_vec(), *s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_sampler::SamplerConfig;

    fn template() -> Call {
        Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            8,
            8,
            0.5,
        )
    }

    #[test]
    fn caches_points_and_counts_unique_samples() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 3),
            SamplerConfig::in_cache(4),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let a = oracle.measure(&[64, 64]);
        let b = oracle.measure(&[64, 64]);
        assert_eq!(a, b, "second lookup must come from the cache");
        assert_eq!(oracle.unique_samples(), 1);
        let _ = oracle.measure(&[128, 64]);
        assert_eq!(oracle.unique_samples(), 2);
        let cached = oracle.cached_samples();
        assert_eq!(cached.len(), 2);
        // Cached points come back at the routine's arity, not key-padded.
        assert!(cached.iter().all(|(p, _)| p.len() == 2));
        // Only the first point triggered executor work beyond its repetitions.
        assert_eq!(sampler.samples_taken(), 2 * 5);
    }

    #[test]
    fn template_leading_dims_are_normalised() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 3),
            SamplerConfig::in_cache(2),
        );
        let oracle = SampleOracle::new(&mut sampler, template(), 8);
        assert!(oracle
            .template()
            .leading_dims()
            .iter()
            .all(|&ld| ld == MODEL_LEADING_DIM));
        assert_eq!(oracle.grid_step(), 8);
    }

    #[test]
    fn larger_sizes_take_longer() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 5),
            SamplerConfig::in_cache(4),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let small = oracle.measure(&[64, 64]).median;
        let large = oracle.measure(&[512, 512]).median;
        assert!(large > small * 10.0);
    }

    #[test]
    fn measure_all_returns_summaries_in_point_order() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 5),
            SamplerConfig::in_cache(2),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let points = vec![vec![32, 32], vec![64, 32], vec![32, 32]];
        let results = oracle.measure_all(&points);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[2], "same point, same cached summary");
        assert_eq!(oracle.unique_samples(), 2);
        // The buffer-reusing variant agrees and reuses its allocation.
        let mut buf = Vec::new();
        oracle.measure_into(&points, &mut buf);
        assert_eq!(buf, results);
        oracle.measure_into(&points[..1], &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0], results[0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_point_panics() {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 3),
            SamplerConfig::in_cache(2),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template(), 8);
        let _ = oracle.measure(&[64]);
    }
}
