//! Seeded legacy-rule violations.  `corpus.rs` pins the exact finding set;
//! if a rule regresses, the golden assertions say which one.

pub fn eval(coeffs: &[f64], x: f64) -> f64 {
    // lint: hot-path begin
    let scratch = vec![0.0; 8];
    let label = format!("x = {x}");
    // lint: hot-path end
    drop((scratch, label));
    coeffs.first().copied().unwrap_or(0.0) * x
}

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn take(slot: Option<u32>) -> u32 {
    slot.unwrap()
}
