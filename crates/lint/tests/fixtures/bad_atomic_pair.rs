//! Seeded publish-protocol orphans: a Release store no Acquire ever
//! observes, and an Acquire load no Release ever publishes to.  The
//! `// ordering:` comments keep the legacy rule silent so the corpus sees
//! the pairing analysis alone.

pub struct Handoff {
    ready: AtomicBool,
    ghost_epoch: AtomicU64,
}

impl Handoff {
    pub fn publish(&self) {
        // ordering: Release - publishes the payload, but no reader pairs with it
        self.ready.store(true, Ordering::Release);
    }

    pub fn observe(&self) -> u64 {
        // ordering: Acquire - expects a publish protocol no writer implements
        self.ghost_epoch.load(Ordering::Acquire)
    }
}
