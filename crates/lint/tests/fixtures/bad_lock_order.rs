//! Two locks acquired in conflicting orders across two methods: the
//! classic deadlock recipe the lock-order analysis denies.

impl Fixture {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop((a, b));
    }
}
