//! A crate root that forgot the unsafe audit attribute — the forbid is
//! missing, and so is the documented waiver.  (The audit is string-based,
//! so this prose must not spell the attribute out.)

pub mod legacy;
