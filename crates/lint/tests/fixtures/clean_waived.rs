//! Every waiver form, exercised once: the corpus pins that each one
//! silences exactly its rule and nothing leaks through.

pub fn eval(xs: &[f64]) -> f64 {
    // lint: hot-path begin
    let scratch = xs.to_vec(); // lint: allow(hot-path): one-time warmup fill
    // lint: allow(panic-free): the entry validates arity before indexing
    let head = xs[0];
    // lint: hot-path end
    scratch.len() as f64 + head
}

// lint: panic-free
pub fn query(slot: Option<u32>) -> u32 {
    // lint: allow(unwrap): the slot is populated at startup, before serving
    slot.unwrap()
}

pub struct Shared {
    flag: AtomicBool,
}

impl Shared {
    pub fn publish(&self) {
        // ordering: Release - handshake with a reader outside this corpus
        // lint: allow(atomic-pair): the acquire half lives outside the corpus
        self.flag.store(true, Ordering::Release);
    }

    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        // lint: allow(lock-order): alpha is a read-only recheck, never blocks here
        let a = self.alpha.lock();
        drop((a, b));
    }
}
