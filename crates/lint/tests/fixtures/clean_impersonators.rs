//! Trigger text that must stay inert: `Ordering::Acquire`, `.unwrap()`,
//! `vec![]`, `format!`, and `std::sync` in prose are documentation, not
//! code.  This is the false-positive class the token-based engine
//! eliminates; the corpus asserts zero findings here.

/// Prose about `.unwrap()` and `Vec::new` — words, not calls.  Even
/// `self.flag.store(true, Ordering::Release)` spelled out in a doc comment
/// is inert.
#[doc = "more prose: Ordering::SeqCst, std::sync::Mutex, panic!(now)"]
pub fn advice() -> &'static str {
    let a = "Ordering::Relaxed in a string is data, not an atomic op";
    let b = "never call .unwrap() on the serving path, says the review";
    let c = r#"raw strings keep vec![Box::new(0)] and format!("x") as data"#;
    // lint: hot-path begin
    let hot = "inside a region too: Vec::with_capacity(8) and .clone() are words";
    // lint: hot-path end
    drop((b, c, hot));
    a
}
