//! An allocation hidden behind a call out of a hot-path region: invisible
//! to the line-level `hot-path` rule, caught by the reachability analysis.

pub fn eval() -> f64 {
    // lint: hot-path begin
    let s = kernel();
    // lint: hot-path end
    s
}

fn kernel() -> f64 {
    scratch().len() as f64
}

fn scratch() -> Vec<f64> {
    Vec::with_capacity(8)
}
