//! A serving entry point that transitively reaches a panic source two
//! calls down.  The corpus pins the full witness chain.

// lint: panic-free
pub fn query() {
    step();
}

fn step() {
    deep();
}

fn deep() {
    panic!("seeded: a panic hiding two calls below the entry");
}
