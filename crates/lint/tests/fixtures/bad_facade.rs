//! Direct `std::sync` use in a file the model checker requires to go
//! through the `dla_sync` facade.  The corpus scans this content under the
//! router's workspace path to pin the facade list.

use std::sync::Mutex;

pub struct FixtureRouter {
    table: Mutex<u64>,
}
