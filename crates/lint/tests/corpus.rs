//! Golden-corpus tests: the seeded-bad fixtures must fire exactly their
//! rules (with the expected chains), and the impersonator/waiver fixtures
//! must stay clean.
//!
//! The fixtures live under `tests/fixtures/`, a directory the workspace
//! scanner deliberately skips, so the corpus drives [`scan_sources`]
//! directly with workspace-shaped relative paths.  Line expectations are
//! located by content, not hard-coded numbers, so editing a fixture's
//! header cannot silently shift a golden.

use dla_lint::{scan_sources, Finding, SourceSpec, LEGACY_RULES, SEMANTIC_RULES};
use std::collections::BTreeSet;

const BAD_LEGACY: &str = include_str!("fixtures/bad_legacy.rs");
const BAD_ROOT: &str = include_str!("fixtures/bad_root.rs");
const BAD_FACADE: &str = include_str!("fixtures/bad_facade.rs");
const BAD_PANIC_ENTRY: &str = include_str!("fixtures/bad_panic_entry.rs");
const BAD_ALLOC_REACH: &str = include_str!("fixtures/bad_alloc_reach.rs");
const BAD_ATOMIC_PAIR: &str = include_str!("fixtures/bad_atomic_pair.rs");
const BAD_LOCK_ORDER: &str = include_str!("fixtures/bad_lock_order.rs");
const CLEAN_IMPERSONATORS: &str = include_str!("fixtures/clean_impersonators.rs");
const CLEAN_WAIVED: &str = include_str!("fixtures/clean_waived.rs");

fn spec(rel: &str, content: &str) -> SourceSpec {
    SourceSpec {
        rel: rel.to_string(),
        content: content.to_string(),
    }
}

/// 1-indexed line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> usize {
    src.lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("fixture lost its `{needle}` line"))
}

fn chain_names(f: &Finding) -> Vec<&str> {
    f.chain.iter().map(|s| s.function.as_str()).collect()
}

fn all_bad_specs() -> Vec<SourceSpec> {
    vec![
        spec("crates/fixture_bad/src/legacy.rs", BAD_LEGACY),
        spec("crates/fixture_bad/src/lib.rs", BAD_ROOT),
        spec("crates/predict/src/router.rs", BAD_FACADE),
        spec("crates/fixture_bad/src/panic_entry.rs", BAD_PANIC_ENTRY),
        spec("crates/fixture_bad/src/alloc_reach.rs", BAD_ALLOC_REACH),
        spec("crates/fixture_bad/src/atomic_pair.rs", BAD_ATOMIC_PAIR),
        spec("crates/fixture_bad/src/lock_order.rs", BAD_LOCK_ORDER),
    ]
}

#[test]
fn legacy_fixture_fires_exactly_the_seeded_rules() {
    let findings = scan_sources(&[spec("crates/fixture_bad/src/legacy.rs", BAD_LEGACY)]);
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let expected = vec![
        ("hot-path", line_of(BAD_LEGACY, "vec![0.0; 8]")),
        ("hot-path", line_of(BAD_LEGACY, "format!(\"x = {x}\")")),
        ("ordering", line_of(BAD_LEGACY, "fetch_add")),
        ("unwrap", line_of(BAD_LEGACY, "slot.unwrap()")),
    ];
    assert_eq!(got, expected, "{findings:?}");
    assert!(findings[0].message.contains("vec!["), "{findings:?}");
    assert!(findings[1].message.contains("format!"), "{findings:?}");
}

#[test]
fn crate_root_without_the_unsafe_audit_is_reported() {
    let findings = scan_sources(&[spec("crates/fixture_bad/src/lib.rs", BAD_ROOT)]);
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, [("unsafe-crate", 1)], "{findings:?}");
}

#[test]
fn std_sync_under_a_facade_path_is_reported() {
    let findings = scan_sources(&[spec("crates/predict/src/router.rs", BAD_FACADE)]);
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let expected = vec![("sync-facade", line_of(BAD_FACADE, "use std::sync::Mutex"))];
    assert_eq!(got, expected, "{findings:?}");
    // The same content under a non-facade path is free to use std::sync.
    let elsewhere = scan_sources(&[spec("crates/fixture_bad/src/elsewhere.rs", BAD_FACADE)]);
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn panic_entry_fixture_reports_the_full_witness_chain() {
    let findings = scan_sources(&[spec(
        "crates/fixture_bad/src/panic_entry.rs",
        BAD_PANIC_ENTRY,
    )]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "panic-free");
    assert_eq!(f.line, line_of(BAD_PANIC_ENTRY, "panic!("));
    assert!(f.message.contains("`panic!`"), "{}", f.message);
    assert_eq!(chain_names(f), ["query", "step", "deep"]);
}

#[test]
fn alloc_reach_fixture_reports_the_hidden_allocation_with_its_chain() {
    let findings = scan_sources(&[spec(
        "crates/fixture_bad/src/alloc_reach.rs",
        BAD_ALLOC_REACH,
    )]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "alloc-reach");
    assert_eq!(f.line, line_of(BAD_ALLOC_REACH, "Vec::with_capacity(8)"));
    assert!(f.message.contains("Vec::with_capacity"), "{}", f.message);
    assert_eq!(chain_names(f), ["eval", "kernel", "scratch"]);
}

#[test]
fn atomic_pair_fixture_reports_both_orphan_halves() {
    let findings = scan_sources(&[spec(
        "crates/fixture_bad/src/atomic_pair.rs",
        BAD_ATOMIC_PAIR,
    )]);
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let expected = vec![
        ("atomic-pair", line_of(BAD_ATOMIC_PAIR, "self.ready.store")),
        (
            "atomic-pair",
            line_of(BAD_ATOMIC_PAIR, "self.ghost_epoch.load"),
        ),
    ];
    assert_eq!(got, expected, "{findings:?}");
    assert!(
        findings[0].message.contains("`ready`") && findings[0].message.contains("no Acquire load"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[1].message.contains("`ghost_epoch`")
            && findings[1].message.contains("no Release store"),
        "{}",
        findings[1].message
    );
}

#[test]
fn lock_order_fixture_reports_one_cycle_with_both_witnesses() {
    let findings = scan_sources(&[spec("crates/fixture_bad/src/lock_order.rs", BAD_LOCK_ORDER)]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "lock-order");
    assert!(
        f.message.contains("`alpha`") && f.message.contains("`beta`"),
        "{}",
        f.message
    );
    assert_eq!(f.chain.len(), 2, "{f:?}");
    assert!(f
        .chain
        .iter()
        .any(|s| s.function.contains("Fixture::forward")));
    assert!(f
        .chain
        .iter()
        .any(|s| s.function.contains("Fixture::backward")));
}

#[test]
fn the_bad_corpus_covers_every_rule() {
    let findings = scan_sources(&all_bad_specs());
    let fired: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    let mut every: BTreeSet<&str> = LEGACY_RULES.iter().copied().collect();
    every.extend(SEMANTIC_RULES);
    assert_eq!(fired, every, "{findings:?}");
    // 4 legacy + 1 root + 1 facade + 1 panic + 1 alloc + 2 atomic + 1 lock.
    assert_eq!(findings.len(), 11, "{findings:?}");
}

#[test]
fn impersonator_fixture_is_clean() {
    let findings = scan_sources(&[spec(
        "crates/fixture_clean/src/impersonators.rs",
        CLEAN_IMPERSONATORS,
    )]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn waiver_fixture_is_clean() {
    let findings = scan_sources(&[spec("crates/fixture_clean/src/waived.rs", CLEAN_WAIVED)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn removing_the_waivers_resurfaces_the_findings() {
    // The waiver fixture is only clean *because* of its waivers: strip the
    // standalone waiver lines and every rule they silenced fires again.
    // This guards against waiver matching degrading into "this file is
    // never scanned".  (The hot-path waiver rides on the offending line
    // itself, so it survives the strip.)
    let stripped: String = CLEAN_WAIVED
        .lines()
        .filter(|l| !l.trim_start().starts_with("// lint: allow("))
        .map(|l| format!("{l}\n"))
        .collect();
    let findings = scan_sources(&[spec("crates/fixture_clean/src/waived.rs", &stripped)]);
    let fired: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    let expected: BTreeSet<&str> = ["panic-free", "unwrap", "atomic-pair", "lock-order"]
        .into_iter()
        .collect();
    assert_eq!(fired, expected, "{findings:?}");
}
