//! The workspace must stay `dla-lint` clean.
//!
//! This puts the analyzer's clean-tree gate into the ordinary `cargo test`
//! run: any new allocation in a `// lint: hot-path` region, undocumented
//! atomic ordering, stray `unwrap()` in library code, direct `std::sync` use
//! in the facade files, or crate root without an unsafe-code policy fails
//! this test with the full finding list.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = dla_lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "dla-lint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
