//! The workspace-wide call graph the semantic analyses walk.
//!
//! Resolution is name-based — no type inference, no trait dispatch — with a
//! locality preference that keeps the over-approximation useful: a call to
//! `name` resolves to the workspace functions called `name`, preferring
//! definitions in the **same file**, then the **same crate**, then anywhere
//! in the workspace.  Calls qualified as `Type::name` prefer definitions
//! whose impl context matches `Type` within the chosen locality tier.
//! Unresolved names (std, vendored deps) have no outgoing semantics of
//! their own; the analyses classify them directly from their denylists
//! instead.
//!
//! The graph reports *call chains*: for every function reachable from an
//! entry point, a shortest witness path entry → … → function with the call
//! site lines, so a finding deep in a callee explains how the hot path
//! reaches it.

use crate::syntax::{Event, FnDef, SourceFile};
use std::collections::{HashMap, VecDeque};

/// Index of a function node in the graph.
pub type FnId = usize;

/// One function node: which file and [`FnDef`] it came from.
#[derive(Debug, Clone, Copy)]
pub struct FnNode {
    /// Index into the file list the graph was built over.
    pub file: usize,
    /// Index into that file's `functions`.
    pub def: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// The callee.
    pub callee: FnId,
    /// 1-indexed line of the call site in the caller's file.
    pub line: u32,
    /// Code-token position of the call site (matches
    /// [`CallEvent::cidx`](crate::syntax::CallEvent::cidx)).
    pub cidx: usize,
}

/// One step of a reported call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// Workspace-relative file of the function.
    pub file: String,
    /// 1-indexed line: the call site within this function that takes the
    /// chain to the next step (or the function's own line for the last
    /// step).
    pub line: u32,
    /// Qualified function name (`Type::name`).
    pub function: String,
}

/// The workspace call graph over a set of parsed files.
pub struct CallGraph {
    nodes: Vec<FnNode>,
    edges: Vec<Vec<CallEdge>>,
}

/// The crate a workspace-relative path belongs to (`crates/model`,
/// `vendor/rand`, or `src` for the root facade).
fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some(a @ ("crates" | "vendor")), Some(b)) => format!("{a}/{b}"),
        (Some(a), _) => a.to_string(),
        _ => String::new(),
    }
}

impl CallGraph {
    /// Builds the graph over `files`, restricted to the files for which
    /// `include` returns true (library code — not tests, binaries, or
    /// vendored crates).  Test-gated functions neither resolve as callees
    /// nor call anything (the analyses are about library code).
    pub fn build(files: &[SourceFile], include: impl Fn(usize) -> bool) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            if !include(fi) {
                continue;
            }
            for (di, def) in file.functions.iter().enumerate() {
                if def.in_test {
                    continue;
                }
                let id = nodes.len();
                nodes.push(FnNode { file: fi, def: di });
                by_name.entry(def.name.as_str()).or_default().push(id);
            }
        }

        let crate_keys: Vec<String> = files.iter().map(|f| crate_key(&f.rel)).collect();
        let mut edges = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let def = &files[node.file].functions[node.def];
            for event in &def.events {
                let Event::Call(call) = event else { continue };
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                // Shape filter: a `.name(…)` method call can only dispatch
                // to an associated function with a `self` receiver (so
                // neither `ptr.add(i)` nor an iterator's `.all(…)` resolves
                // to a workspace `fn add` / associated `fn all()`); a bare
                // unqualified `name(…)` call can only be a free function in
                // scope.
                let candidates: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let cd = &files[nodes[c].file].functions[nodes[c].def];
                        let associated = cd.qual.contains("::");
                        if call.method {
                            associated && cd.has_self
                        } else if call.qualifier.is_none() {
                            !associated
                        } else {
                            true
                        }
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                // Locality preference: same file, else same crate, else the
                // whole workspace.
                let same_file: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| nodes[c].file == node.file)
                    .collect();
                let chosen: Vec<FnId> = if !same_file.is_empty() {
                    same_file
                } else {
                    let same_crate: Vec<FnId> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| crate_keys[nodes[c].file] == crate_keys[node.file])
                        .collect();
                    if !same_crate.is_empty() {
                        same_crate
                    } else {
                        candidates.clone()
                    }
                };
                // Within the tier, a `Type::name` qualifier narrows to
                // matching impl contexts when any match.
                let narrowed: Vec<FnId> = match &call.qualifier {
                    Some(q) => {
                        let matching: Vec<FnId> = chosen
                            .iter()
                            .copied()
                            .filter(|&c| {
                                let cd = &files[nodes[c].file].functions[nodes[c].def];
                                cd.qual.rsplit_once("::").is_some_and(|(ty, _)| ty == q)
                            })
                            .collect();
                        if matching.is_empty() {
                            chosen
                        } else {
                            matching
                        }
                    }
                    None => chosen,
                };
                for callee in narrowed {
                    if callee != id {
                        edges[id].push(CallEdge {
                            callee,
                            line: call.line,
                            cidx: call.cidx,
                        });
                    }
                }
            }
        }
        CallGraph { nodes, edges }
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = FnId> + '_ {
        0..self.nodes.len()
    }

    /// The node's file/def indices.
    pub fn node(&self, id: FnId) -> FnNode {
        self.nodes[id]
    }

    /// The node for a given (file index, def index), if in the graph.
    pub fn id_of(&self, file: usize, def: usize) -> Option<FnId> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.def == def)
    }

    /// Outgoing resolved edges of `id`.
    pub fn edges(&self, id: FnId) -> &[CallEdge] {
        &self.edges[id]
    }

    /// BFS from `entries`, skipping functions for which `trusted` returns
    /// true (their bodies are vouched for by a function-level waiver).
    /// Returns, for every reached node, the id of the (parent, call line)
    /// that first reached it — enough to rebuild shortest chains.
    pub fn reach(
        &self,
        entries: &[FnId],
        trusted: impl Fn(FnId) -> bool,
    ) -> HashMap<FnId, Option<(FnId, u32)>> {
        let mut parent: HashMap<FnId, Option<(FnId, u32)>> = HashMap::new();
        let mut queue = VecDeque::new();
        for &e in entries {
            if trusted(e) || parent.contains_key(&e) {
                continue;
            }
            parent.insert(e, None);
            queue.push_back(e);
        }
        while let Some(id) = queue.pop_front() {
            for edge in &self.edges[id] {
                if trusted(edge.callee) || parent.contains_key(&edge.callee) {
                    continue;
                }
                parent.insert(edge.callee, Some((id, edge.line)));
                queue.push_back(edge.callee);
            }
        }
        parent
    }

    /// Rebuilds the entry → `id` witness chain from a [`CallGraph::reach`]
    /// parent map.
    pub fn chain(
        &self,
        files: &[SourceFile],
        parents: &HashMap<FnId, Option<(FnId, u32)>>,
        id: FnId,
    ) -> Vec<ChainStep> {
        let step = |id: FnId, line: u32| {
            let node = self.nodes[id];
            let def: &FnDef = &files[node.file].functions[node.def];
            ChainStep {
                file: files[node.file].rel.clone(),
                line,
                function: def.qual.clone(),
            }
        };
        // The last step points at the function itself; every earlier step
        // points at the call site (in its own file) that descends the chain.
        let mut steps = Vec::new();
        let mut cursor = id;
        let mut visited = std::collections::HashSet::new();
        {
            let node = self.nodes[cursor];
            let line = files[node.file].functions[node.def].line;
            steps.push(step(cursor, line));
            visited.insert(cursor);
        }
        while let Some(Some((p, line))) = parents.get(&cursor) {
            if !visited.insert(*p) {
                // Defensive: a malformed parent map must not hang the tool.
                break;
            }
            steps.push(step(*p, *line));
            cursor = *p;
        }
        steps.reverse();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;

    fn files(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect()
    }

    fn id_by_name(graph: &CallGraph, files: &[SourceFile], name: &str) -> FnId {
        graph
            .ids()
            .find(|&id| {
                let n = graph.node(id);
                files[n.file].functions[n.def].name == name
            })
            .unwrap_or_else(|| panic!("fn {name} not in graph"))
    }

    #[test]
    fn same_file_definitions_win_over_same_crate() {
        let fs = files(&[
            (
                "crates/a/src/one.rs",
                "fn caller() { helper(); }\nfn helper() { local(); }\nfn local() {}\n",
            ),
            (
                "crates/a/src/two.rs",
                "fn helper() { other(); }\nfn other() {}\n",
            ),
        ]);
        let g = CallGraph::build(&fs, |_| true);
        let caller = id_by_name(&g, &fs, "caller");
        let edges = g.edges(caller);
        assert_eq!(edges.len(), 1);
        let callee = g.node(edges[0].callee);
        assert_eq!(fs[callee.file].rel, "crates/a/src/one.rs");
    }

    #[test]
    fn cross_crate_calls_resolve_when_nothing_local_matches() {
        let fs = files(&[
            ("crates/a/src/lib.rs", "fn caller() { remote(); }\n"),
            ("crates/b/src/lib.rs", "fn remote() {}\n"),
        ]);
        let g = CallGraph::build(&fs, |_| true);
        let caller = id_by_name(&g, &fs, "caller");
        assert_eq!(g.edges(caller).len(), 1);
    }

    #[test]
    fn qualifiers_narrow_among_ambiguous_candidates() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn caller() { Good::build(); }\n\
                 impl Good { fn build() {} }\nimpl Bad { fn build() {} }\n",
        )]);
        let g = CallGraph::build(&fs, |_| true);
        let caller = id_by_name(&g, &fs, "caller");
        let edges = g.edges(caller);
        assert_eq!(edges.len(), 1);
        let callee = g.node(edges[0].callee);
        assert_eq!(fs[callee.file].functions[callee.def].qual, "Good::build");
    }

    #[test]
    fn test_gated_functions_stay_out_of_the_graph() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn caller() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        let g = CallGraph::build(&fs, |_| true);
        let caller = id_by_name(&g, &fs, "caller");
        assert!(g.edges(caller).is_empty());
    }

    #[test]
    fn reach_reports_shortest_chains_and_honors_trust() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\n\
             // lint: allow(panic-free): audited\nfn trusted_leaf() { deep(); }\n",
        )]);
        let g = CallGraph::build(&fs, |_| true);
        let entry = id_by_name(&g, &fs, "entry");
        let deep = id_by_name(&g, &fs, "deep");
        let parents = g.reach(&[entry], |_| false);
        assert!(parents.contains_key(&deep));
        let chain = g.chain(&fs, &parents, deep);
        let names: Vec<&str> = chain.iter().map(|s| s.function.as_str()).collect();
        assert_eq!(names, ["entry", "mid", "deep"]);
        // Trusting `mid` cuts the path.
        let mid = id_by_name(&g, &fs, "mid");
        let parents = g.reach(&[entry], |id| id == mid);
        assert!(!parents.contains_key(&deep));
    }
}
