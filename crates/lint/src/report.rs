//! Output serializers for `dla-lint` findings.
//!
//! * [`to_json`] — a stable machine-readable schema for tooling:
//!   `{"version": 1, "count": N, "findings": [{file, line, rule, message,
//!   chain: [{file, line, function}]}]}`.  The schema is versioned; fields
//!   are only ever added.
//! * [`to_github`] — one `::error file=…,line=…,title=…::…` workflow
//!   command per finding, so CI failures annotate the offending lines in
//!   the pull-request diff.  Call chains ride along in the message body as
//!   `%0A`-separated lines.

use crate::Finding;
use std::fmt::Write;

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings to the versioned JSON schema (one finding per line,
/// so diffs and greps stay readable).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": 1,\n  \"count\": {},\n  \"findings\": [",
        findings.len()
    );
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let mut chain = String::new();
        for (j, step) in f.chain.iter().enumerate() {
            let csep = if j == 0 { "" } else { ", " };
            let _ = write!(
                chain,
                "{csep}{{\"file\": \"{}\", \"line\": {}, \"function\": \"{}\"}}",
                json_escape(&step.file),
                step.line,
                json_escape(&step.function)
            );
        }
        let _ = write!(
            out,
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"chain\": [{chain}]}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message)
        );
    }
    out.push_str(if findings.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// Escapes a GitHub workflow-command *property* value (`file=`, `title=`).
fn github_property(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Escapes a GitHub workflow-command message body.
fn github_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Serializes findings as GitHub Actions error annotations.
pub fn to_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let mut message = f.message.clone();
        if !f.chain.is_empty() {
            message.push_str("\ncall chain:");
            for (i, step) in f.chain.iter().enumerate() {
                let _ = write!(
                    message,
                    "\n  {}. {} ({}:{})",
                    i + 1,
                    step.function,
                    step.file,
                    step.line
                );
            }
        }
        let _ = writeln!(
            out,
            "::error file={},line={},title=dla-lint({})::{}",
            github_property(&f.file),
            f.line,
            github_property(f.rule),
            github_message(&message)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::ChainStep;

    fn finding() -> Finding {
        Finding {
            file: "crates/a/src/lib.rs".to_string(),
            line: 7,
            rule: "panic-free",
            message: "`.unwrap()` reachable on the panic-free path from `query`".to_string(),
            chain: vec![
                ChainStep {
                    file: "crates/a/src/lib.rs".to_string(),
                    line: 2,
                    function: "query".to_string(),
                },
                ChainStep {
                    file: "crates/a/src/lib.rs".to_string(),
                    line: 7,
                    function: "deep".to_string(),
                },
            ],
        }
    }

    #[test]
    fn json_schema_is_stable_and_parseable_shaped() {
        let out = to_json(&[finding()]);
        assert!(out.contains("\"version\": 1"));
        assert!(out.contains("\"count\": 1"));
        assert!(out.contains("\"rule\": \"panic-free\""));
        assert!(out.contains("\"line\": 7"));
        assert!(out.contains("\"function\": \"query\""));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the dependency-free crate).
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn json_empty_input_serializes_to_an_empty_list() {
        let out = to_json(&[]);
        assert!(out.contains("\"count\": 0"));
        assert!(out.contains("\"findings\": []"));
    }

    #[test]
    fn json_escapes_quotes_backslashes_and_newlines() {
        let mut f = finding();
        f.message = "say \"hi\"\\ and\nbreak".to_string();
        let out = to_json(&[f]);
        assert!(out.contains(r#"say \"hi\"\\ and\nbreak"#));
    }

    #[test]
    fn github_annotations_carry_the_chain_with_encoded_newlines() {
        let out = to_github(&[finding()]);
        let line = out.lines().next().unwrap_or("");
        assert!(line
            .starts_with("::error file=crates/a/src/lib.rs,line=7,title=dla-lint(panic-free)::"));
        assert!(line.contains("%0Acall chain:%0A  1. query (crates/a/src/lib.rs:2)"));
        // One annotation per finding, one line each.
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn github_property_escaping_keeps_commands_unbreakable() {
        assert_eq!(github_property("a,b:c%d\n"), "a%2Cb%3Ac%25d%0A");
        assert_eq!(github_message("50%\ndone"), "50%25%0Adone");
    }
}
