//! `dla-lint`: the workspace's correctness analyzer, gating the serving hot
//! path and the concurrency conventions in CI.
//!
//! A deliberately dependency-free, text-level analyzer (no syn, no rustc
//! internals — the container and CI must need nothing but std).  It walks the
//! workspace sources and enforces five deny-by-default rules:
//!
//! | rule            | what it denies                                               |
//! |-----------------|--------------------------------------------------------------|
//! | `hot-path`      | allocation, `powi`/`powf`, `format!`, `.clone()` inside `// lint: hot-path begin/end` regions |
//! | `ordering`      | atomic `Ordering::*` uses without a `// ordering:` justification |
//! | `unwrap`        | `.unwrap()` / `.expect(` in library code outside tests/bins   |
//! | `sync-facade`   | direct `std::sync` use in the files routed through `dla_sync` |
//! | `unsafe-crate`  | workspace crate roots without `#![forbid(unsafe_code)]`       |
//!
//! Waivers are explicit and carry a reason, so every exception is grep-able:
//!
//! * `// lint: allow(hot-path): <reason>` — on the offending line;
//! * `// lint: allow(unwrap): <reason>` — on the line or the line above;
//! * `// lint: allow(unsafe-crate): <reason>` — in the crate root, next to
//!   the lint level that *is* in force (e.g. `#![deny(unsafe_code)]` with
//!   per-module `#[allow]`s).
//!
//! Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]` regions) is
//! exempt from `ordering` and `unwrap`; binaries (`main.rs`, `src/bin/`) are
//! exempt from `unwrap`.  Vendored crates (`vendor/`) are exempt from
//! everything except the crate-root unsafe audit — they are stand-ins for
//! external dependencies, not owned code, but they still must not smuggle
//! `unsafe` into the build.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `hot-path`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The atomic ordering variants the `ordering` rule covers.  Matching on the
/// qualified variant (not bare `Ordering::`) keeps `std::cmp::Ordering`
/// (`Less`/`Equal`/`Greater`) out of scope.
const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Constructs denied inside `// lint: hot-path begin/end` regions: heap
/// allocation, the slow `powi`/`powf` intrinsics (the fused evaluators use
/// incremental multiplication), string formatting and clones.
const HOT_PATH_BANNED: [(&str, &str); 13] = [
    ("format!", "string formatting allocates"),
    (".powi(", "powi is slower than incremental multiplication"),
    (".powf(", "powf is slower than incremental multiplication"),
    (".clone()", "clone on the hot path"),
    (".to_vec()", "to_vec allocates"),
    (".to_string()", "to_string allocates"),
    (".to_owned()", "to_owned allocates"),
    ("vec![", "vec! allocates"),
    ("Vec::new", "Vec::new allocates on first push"),
    ("Vec::with_capacity", "Vec::with_capacity allocates"),
    ("Box::new", "Box::new allocates"),
    ("String::", "String construction allocates"),
    (".collect(", "collect allocates"),
];

/// The files required to take every concurrency primitive through the
/// `dla_sync` facade (`dla_model::sync`) instead of `std::sync`, so the
/// model checker sees the real serving code under `--cfg interleave`.
const FACADE_FILES: [&str; 5] = [
    "crates/model/src/shared.rs",
    "crates/model/src/telemetry.rs",
    "crates/predict/src/fleet.rs",
    "crates/predict/src/health.rs",
    "crates/predict/src/service.rs",
];

/// Per-line classification computed once per file.
struct FileText {
    lines: Vec<String>,
    /// Line is entirely comment (line comment or inside a block comment).
    comment: Vec<bool>,
    /// Line is inside a `#[cfg(test)]`-gated region.
    test: Vec<bool>,
}

impl FileText {
    fn parse(content: &str) -> FileText {
        let lines: Vec<String> = content.lines().map(str::to_string).collect();
        let mut comment = vec![false; lines.len()];
        let mut in_block = false;
        for (i, line) in lines.iter().enumerate() {
            let trimmed = line.trim();
            if in_block {
                comment[i] = true;
                if trimmed.contains("*/") {
                    in_block = false;
                }
                continue;
            }
            if trimmed.starts_with("//") {
                comment[i] = true;
            } else if trimmed.starts_with("/*") {
                comment[i] = true;
                if !trimmed.contains("*/") {
                    in_block = true;
                }
            }
        }
        // `#[cfg(test)]` regions: from the attribute until the brace opened
        // by the item it gates closes again.  Brace counting is textual —
        // good enough for rustfmt-formatted sources, which this workspace
        // enforces in CI.
        let mut test = vec![false; lines.len()];
        let mut depth: i32 = 0;
        let mut region_floor: Option<i32> = None;
        let mut pending_attr = false;
        for (i, line) in lines.iter().enumerate() {
            if comment[i] {
                if region_floor.is_some() {
                    test[i] = true;
                }
                continue;
            }
            let code = strip_line_comment(line);
            if region_floor.is_none() && code.contains("#[cfg(test)]") {
                pending_attr = true;
            }
            if pending_attr {
                test[i] = true;
            }
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_attr && region_floor.is_none() {
                            region_floor = Some(depth);
                            pending_attr = false;
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if let Some(floor) = region_floor {
                            if depth < floor {
                                region_floor = None;
                            }
                        }
                    }
                    _ => {}
                }
            }
            if region_floor.is_some() {
                test[i] = true;
            }
        }
        FileText {
            lines,
            comment,
            test,
        }
    }

    /// The code portion of a line (no trailing `// ...` comment), or `""`
    /// for whole-line comments.
    fn code(&self, i: usize) -> &str {
        if self.comment[i] {
            ""
        } else {
            strip_line_comment(&self.lines[i])
        }
    }

    /// Whether the statement at line `i` carries `marker` — on the line
    /// itself, or in the contiguous run of comment lines and statement
    /// continuations directly above it.
    fn justified(&self, i: usize, marker: &str) -> bool {
        if self.lines[i].contains(marker) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let line = &self.lines[j];
            if line.trim().is_empty() {
                return false;
            }
            if line.contains(marker) {
                return true;
            }
            if self.comment[j] {
                continue;
            }
            // A preceding code line ending a statement (or opening a block)
            // ends the search; anything else is a continuation of the same
            // multi-line call and the walk continues past it.
            let code = strip_line_comment(line);
            let trimmed = code.trim_end();
            if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
                return false;
            }
        }
        false
    }
}

/// Strips a trailing `// ...` comment, respecting string literals well
/// enough for this codebase (a `//` inside a string stays).
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// What kind of source a file is, for rule scoping.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Library code: all rules apply.
    Library,
    /// Binary targets (`main.rs`, `src/bin/`): `unwrap` exempt.
    Binary,
    /// Integration tests / benches / examples: `ordering` and `unwrap`
    /// exempt.
    Test,
}

fn classify(rel: &str) -> FileKind {
    let is_test_tree = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel == "build.rs"
        || rel.ends_with("/build.rs");
    if is_test_tree {
        FileKind::Test
    } else if rel.ends_with("/main.rs") || rel.contains("/src/bin/") {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

/// Runs every line-level rule over one file.
fn scan_file(rel: &str, content: &str, findings: &mut Vec<Finding>) {
    let kind = classify(rel);
    let text = FileText::parse(content);
    let vendored = rel.starts_with("vendor/");

    let mut hot_since: Option<usize> = None;
    for i in 0..text.lines.len() {
        let line = &text.lines[i];

        // Hot-path region bookkeeping runs on comment lines (the markers
        // *are* comments).  Matching the exact comment prefix keeps doc
        // prose that merely *mentions* the marker from opening a region.
        let trimmed = line.trim_start();
        if trimmed.starts_with("// lint: hot-path begin") {
            if let Some(open) = hot_since {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "hot-path",
                    message: format!(
                        "nested hot-path begin (region open since line {})",
                        open + 1
                    ),
                });
            }
            hot_since = Some(i);
            continue;
        }
        if trimmed.starts_with("// lint: hot-path end") {
            if hot_since.take().is_none() {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "hot-path",
                    message: "hot-path end without a matching begin".to_string(),
                });
            }
            continue;
        }

        let code = text.code(i);
        if code.is_empty() {
            continue;
        }

        if hot_since.is_some() && !line.contains("lint: allow(hot-path):") {
            for (token, why) in HOT_PATH_BANNED {
                if code.contains(token) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: "hot-path",
                        message: format!("`{token}` in a hot-path region: {why}"),
                    });
                }
            }
        }

        if vendored {
            continue;
        }

        if kind == FileKind::Library && !text.test[i] {
            // ordering: every atomic ordering choice needs a written-down why.
            if ATOMIC_ORDERINGS.iter().any(|v| code.contains(v))
                && !text.justified(i, "// ordering:")
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "ordering",
                    message: "atomic Ordering without a `// ordering:` justification".to_string(),
                });
            }

            // unwrap: library code must handle or waive, never assume.
            if (code.contains(".unwrap()") || code.contains(".expect("))
                && !text.justified(i, "lint: allow(unwrap):")
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "unwrap",
                    message:
                        "unwrap/expect in library code (waive with `// lint: allow(unwrap): why`)"
                            .to_string(),
                });
            }
        }

        // sync-facade: the model-checked files take primitives through
        // `dla_sync` only (tests inside those files may use std directly).
        if FACADE_FILES.contains(&rel) && !text.test[i] && code.contains("std::sync") {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "sync-facade",
                message: "direct std::sync use in a dla_sync-routed file".to_string(),
            });
        }
    }
    if let Some(open) = hot_since {
        findings.push(Finding {
            file: rel.to_string(),
            line: open + 1,
            rule: "hot-path",
            message: "hot-path begin without a matching end".to_string(),
        });
    }
}

/// The crate-root unsafe audit: `#![forbid(unsafe_code)]`, or a documented
/// lint level + waiver explaining why forbidding is impossible.
fn scan_crate_root(rel: &str, content: &str, findings: &mut Vec<Finding>) {
    if content.contains("#![forbid(unsafe_code)]") {
        return;
    }
    if content.contains("lint: allow(unsafe-crate):") {
        // The waiver must still pin down a lint level: a crate that cannot
        // forbid must at least deny, scoping its `unsafe` to allow-listed
        // modules.
        if content.contains("#![deny(unsafe_code)]") {
            return;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: "unsafe-crate",
            message: "unsafe-crate waiver without `#![deny(unsafe_code)]`".to_string(),
        });
        return;
    }
    findings.push(Finding {
        file: rel.to_string(),
        line: 1,
        rule: "unsafe-crate",
        message: "crate root lacks `#![forbid(unsafe_code)]` (waive with `// lint: allow(unsafe-crate): why` plus `#![deny(unsafe_code)]`)"
            .to_string(),
    });
}

/// Workspace member paths, parsed from the root `Cargo.toml` members list
/// (the list is literal paths, no globs).
fn workspace_members(root: &Path) -> Result<Vec<String>, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("Cargo.toml").display()))?;
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("members") && trimmed.contains('[') {
            in_members = true;
            continue;
        }
        if in_members {
            if trimmed.starts_with(']') {
                break;
            }
            if let Some(member) = trimmed.split('"').nth(1) {
                members.push(member.to_string());
            }
        }
    }
    if members.is_empty() {
        return Err("no workspace members found in Cargo.toml".to_string());
    }
    Ok(members)
}

/// Collects the `.rs` files under `dir`, recursively, sorted for
/// deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Never descend into build output.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans the whole workspace rooted at `root` and returns every finding.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let members = workspace_members(root)?;
    let mut findings = Vec::new();

    // Owned code: every member outside vendor/, plus the root facade crate.
    // The lint crate itself is excluded from the line rules: its source is
    // wall-to-wall banned-token tables and rule fixtures, every one of which
    // would self-match.  Its crate root stays in the unsafe audit below.
    let mut scan_dirs: Vec<PathBuf> = vec![root.join("src")];
    for member in &members {
        if !member.starts_with("vendor/") && member != "crates/lint" {
            scan_dirs.push(root.join(member));
        }
    }
    let mut files = Vec::new();
    for dir in &scan_dirs {
        rust_files(dir, &mut files);
    }
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        scan_file(&rel, &content, &mut findings);
    }

    // The unsafe audit covers every member's crate root, vendor included.
    let mut roots: Vec<String> = members.iter().map(|m| format!("{m}/src/lib.rs")).collect();
    roots.push("src/lib.rs".to_string());
    for rel in roots {
        let path = root.join(&rel);
        if !path.is_file() {
            continue;
        }
        let content = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        scan_crate_root(&rel, &content, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// CLI entry point: `dla-lint [workspace-root]` (defaults to the current
/// directory).  Prints findings and exits non-zero when any rule fired.
pub fn run_cli(mut args: impl Iterator<Item = String>) -> ExitCode {
    let root = args.next().unwrap_or_else(|| ".".to_string());
    if args.next().is_some() {
        eprintln!("usage: dla-lint [workspace-root]");
        return ExitCode::FAILURE;
    }
    match scan_workspace(Path::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("dla-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("dla-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("dla-lint: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, content: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        scan_file(rel, content, &mut findings);
        findings
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hot_path_rule_fires_on_each_banned_construct() {
        let fixture = r#"
fn eval() {
    // lint: hot-path begin
    let v = vec![1.0];
    let s = format!("{v:?}");
    let p = x.powi(3);
    let c = coeffs.clone();
    // lint: hot-path end
}
"#;
        let findings = scan("crates/model/src/eval.rs", fixture);
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "hot-path"));
    }

    #[test]
    fn hot_path_rule_is_silent_outside_regions_and_on_waived_lines() {
        let fixture = r#"
fn build() {
    let v = vec![1.0]; // fine: not a hot-path region
    // lint: hot-path begin
    let w = scratch.to_vec(); // lint: allow(hot-path): one-time setup
    let y = horner(x);
    // lint: hot-path end
}
"#;
        assert!(scan("crates/model/src/eval.rs", fixture).is_empty());
    }

    #[test]
    fn hot_path_rule_reports_unbalanced_markers() {
        let unclosed = "// lint: hot-path begin\nfn f() {}\n";
        assert_eq!(rules(&scan("a.rs", unclosed)), ["hot-path"]);
        let unopened = "fn f() {}\n// lint: hot-path end\n";
        assert_eq!(rules(&scan("a.rs", unopened)), ["hot-path"]);
    }

    #[test]
    fn ordering_rule_requires_a_justification() {
        let bare = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
        assert_eq!(rules(&scan("crates/x/src/a.rs", bare)), ["ordering"]);

        let same_line = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed - standalone stat
}
"#;
        assert!(scan("crates/x/src/a.rs", same_line).is_empty());

        let preceding = r#"
fn bump(c: &AtomicU64) {
    // ordering: Relaxed - standalone statistic, nothing published through it
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
        assert!(scan("crates/x/src/a.rs", preceding).is_empty());
    }

    #[test]
    fn ordering_rule_sees_through_multiline_calls() {
        let continued = r#"
fn bump(c: &AtomicU64) {
    // ordering: Relaxed on both halves - lossy by design
    c.store(
        c.load(Ordering::Relaxed) + 1,
        Ordering::Relaxed,
    );
}
"#;
        assert!(scan("crates/x/src/a.rs", continued).is_empty());
    }

    #[test]
    fn ordering_rule_skips_tests_and_cmp_ordering() {
        let fixture = r#"
fn compare(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less // not an atomic ordering
}

#[cfg(test)]
mod tests {
    #[test]
    fn atomics_in_tests_are_free() {
        c.fetch_add(1, Ordering::SeqCst);
    }
}
"#;
        assert!(scan("crates/x/src/a.rs", fixture).is_empty());
    }

    #[test]
    fn unwrap_rule_fires_in_library_code_only() {
        let fixture = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        assert_eq!(rules(&scan("crates/x/src/a.rs", fixture)), ["unwrap"]);
        // Bins, tests directories and #[cfg(test)] regions are exempt.
        assert!(scan("crates/x/src/main.rs", fixture).is_empty());
        assert!(scan("crates/x/tests/a.rs", fixture).is_empty());
        let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n{fixture}}}\n");
        assert!(scan("crates/x/src/a.rs", &in_test_mod).is_empty());
        // unwrap_or_else is not unwrap.
        let recovered = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n";
        assert!(scan("crates/x/src/a.rs", recovered).is_empty());
    }

    #[test]
    fn unwrap_rule_accepts_reasoned_waivers() {
        let waived = "fn f(x: Option<u32>) -> u32 {\n    \
                      // lint: allow(unwrap): x is Some by construction above\n    \
                      x.unwrap()\n}\n";
        assert!(scan("crates/x/src/a.rs", waived).is_empty());
        let expect = "fn f(x: Option<u32>) -> u32 {\n    \
                      x.expect(\"always present\") // lint: allow(unwrap): invariant\n}\n";
        assert!(scan("crates/x/src/a.rs", expect).is_empty());
    }

    #[test]
    fn sync_facade_rule_guards_the_model_checked_files() {
        let offending = "use std::sync::RwLock;\nfn f() {}\n";
        assert_eq!(
            rules(&scan("crates/model/src/shared.rs", offending)),
            ["sync-facade"]
        );
        // Other files may use std::sync freely.
        assert!(scan("crates/model/src/repo.rs", offending).is_empty());
        // And tests inside a facade file may too.
        let in_tests = "#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        assert!(scan("crates/predict/src/service.rs", in_tests).is_empty());
    }

    #[test]
    fn unsafe_crate_rule_requires_forbid_or_documented_exception() {
        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "//! Docs.\npub fn f() {}\n",
            &mut findings,
        );
        assert_eq!(rules(&findings), ["unsafe-crate"]);

        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n",
            &mut findings,
        );
        assert!(findings.is_empty());

        // A waiver alone is not enough: the crate must still deny by default.
        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "// lint: allow(unsafe-crate): raw-pointer views\n",
            &mut findings,
        );
        assert_eq!(rules(&findings), ["unsafe-crate"]);

        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "// lint: allow(unsafe-crate): raw-pointer views\n#![deny(unsafe_code)]\n",
            &mut findings,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn vendored_code_is_exempt_from_owned_code_rules() {
        let fixture = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
                       fn g(c: &A) { c.load(Ordering::SeqCst); }\n";
        assert!(scan("vendor/rand/src/lib.rs", fixture).is_empty());
    }

    #[test]
    fn line_comment_stripping_respects_strings() {
        assert_eq!(strip_line_comment("let x = 1; // tail"), "let x = 1; ");
        assert_eq!(
            strip_line_comment(r#"let url = "https://example.com";"#),
            r#"let url = "https://example.com";"#
        );
    }
}
