//! `dla-lint`: the workspace's correctness analyzer, gating the serving hot
//! path and the concurrency conventions in CI.
//!
//! A deliberately dependency-free analyzer (no syn, no rustc internals —
//! the container and CI must need nothing but std), built in layers:
//!
//! 1. [`lexer`] — a std-only Rust lexer (raw strings, nested block
//!    comments, char/lifetime disambiguation, doc comments);
//! 2. [`syntax`] — an item/brace-tree parser recovering `fn` items, impl
//!    contexts, calls, indexing, atomic ops, and guard-scoped lock
//!    acquisitions;
//! 3. [`callgraph`] — a workspace-wide, name-resolved call graph with
//!    witness chains;
//! 4. the rules: five line-level legacy rules on the token stream, and four
//!    call-graph-driven semantic analyses in [`analyses`].
//!
//! | rule           | what it denies                                               |
//! |----------------|--------------------------------------------------------------|
//! | `hot-path`     | allocation, `powi`/`powf`, `format!`, `.clone()` inside marked hot-path regions |
//! | `ordering`     | atomic `Ordering::*` uses without a `// ordering:` justification |
//! | `unwrap`       | `.unwrap()` / `.expect(` in library code outside tests/bins   |
//! | `sync-facade`  | direct `std::sync` use in the files routed through `dla_sync` |
//! | `unsafe-crate` | workspace crate roots without `#![forbid(unsafe_code)]`       |
//! | `panic-free`   | panic sources transitively reachable from hot-path regions or `// lint: panic-free` entry points, with call chains |
//! | `alloc-reach`  | banned constructs reachable through calls out of a hot-path region |
//! | `atomic-pair`  | `Release` publishes with no matching `Acquire` observer on the same field (and vice versa) |
//! | `lock-order`   | cycles in the workspace lock-acquisition-order graph          |
//!
//! Waivers are explicit and carry a reason, so every exception is grep-able:
//!
//! * `// lint: allow(hot-path): <reason>` — on the offending line (and, in
//!   the comment block above a `fn`, vouching for it and its callees in the
//!   reachability analysis);
//! * `// lint: allow(unwrap): <reason>` — on the line or the line above
//!   (also satisfies `panic-free` at that site);
//! * `// lint: allow(panic-free): <reason>` — at a site, or above a `fn` to
//!   trust its whole subtree;
//! * `// lint: allow(atomic-pair): <reason>` / `// lint:
//!   allow(lock-order): <reason>` — at the orphan or inner-acquisition
//!   site;
//! * `// lint: allow(unsafe-crate): <reason>` — in the crate root, next to
//!   the lint level that *is* in force (e.g. `#![deny(unsafe_code)]` with
//!   per-module `#[allow]`s).
//!
//! `// lint: panic-free` above a `fn` marks it as a serving entry point the
//! panic-freedom analysis must verify end-to-end.
//!
//! Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]` regions) is
//! exempt from everything except hot-path region scanning; binaries
//! (`main.rs`, `src/bin/`) are additionally exempt from `unwrap`.  Vendored
//! crates (`vendor/`) are exempt from everything except the crate-root
//! unsafe audit — they are stand-ins for external dependencies, not owned
//! code, but they still must not smuggle `unsafe` into the build.
//! Everything runs on tokens, so string literals, doc comments, and
//! `#[doc]` attributes can no longer impersonate code (or comments).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyses;
pub mod callgraph;
pub mod lexer;
pub mod report;
mod rules;
pub mod syntax;

use callgraph::{CallGraph, ChainStep};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use syntax::SourceFile;

/// The five token-ported legacy rules.
pub const LEGACY_RULES: [&str; 5] = [
    "hot-path",
    "ordering",
    "unwrap",
    "sync-facade",
    "unsafe-crate",
];

/// The four call-graph-driven semantic analyses.
pub const SEMANTIC_RULES: [&str; 4] = ["panic-free", "alloc-reach", "atomic-pair", "lock-order"];

/// One rule violation at a file/line, with the witness call chain when the
/// rule is reachability-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `hot-path`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Entry → … → offending function, empty for line-local rules.
    pub chain: Vec<ChainStep>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        for (i, step) in self.chain.iter().enumerate() {
            write!(
                f,
                "\n    {}. {} ({}:{})",
                i + 1,
                step.function,
                step.file,
                step.line
            )?;
        }
        Ok(())
    }
}

/// One source file handed to [`scan_sources`]: a workspace-relative path
/// (which determines rule scoping) and its contents.
pub struct SourceSpec {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/model/src/eval.rs`).
    pub rel: String,
    /// The file's full contents.
    pub content: String,
}

/// What kind of source a file is, for rule scoping.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum FileKind {
    /// Library code: all rules apply.
    Library,
    /// Binary targets (`main.rs`, `src/bin/`): `unwrap` exempt.
    Binary,
    /// Integration tests / benches / examples: only hot-path region
    /// scanning applies.
    Test,
}

pub(crate) fn classify(rel: &str) -> FileKind {
    let is_test_tree = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel == "build.rs"
        || rel.ends_with("/build.rs");
    if is_test_tree {
        FileKind::Test
    } else if rel.ends_with("/main.rs") || rel.contains("/src/bin/") {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

/// Scans a set of sources — every rule, legacy and semantic — and returns
/// the findings sorted by (file, line, rule).  This is the engine under
/// [`scan_workspace`]; the fixture corpus drives it directly.
///
/// Vendored files (`vendor/…`) only receive the crate-root unsafe audit;
/// crate roots are recognized by their `src/lib.rs` suffix.
pub fn scan_sources(specs: &[SourceSpec]) -> Vec<Finding> {
    let mut findings = Vec::new();

    for spec in specs {
        if spec.rel == "src/lib.rs" || spec.rel.ends_with("/src/lib.rs") {
            rules::scan_crate_root(&spec.rel, &spec.content, &mut findings);
        }
    }

    let mut files: Vec<SourceFile> = Vec::new();
    let mut kinds: Vec<FileKind> = Vec::new();
    for spec in specs {
        if spec.rel.starts_with("vendor/") {
            continue;
        }
        files.push(SourceFile::parse(&spec.rel, &spec.content));
        kinds.push(classify(&spec.rel));
    }

    for (file, kind) in files.iter().zip(&kinds) {
        rules::scan_file(file, *kind, &mut findings);
    }

    let library: Vec<bool> = kinds.iter().map(|k| *k == FileKind::Library).collect();
    let graph = CallGraph::build(&files, |i| library[i]);
    findings.extend(analyses::panic_free::run(&files, &library, &graph));
    findings.extend(analyses::alloc_reach::run(&files, &library, &graph));
    findings.extend(analyses::atomics::run(&files, &library));
    findings.extend(analyses::lock_order::run(&files, &library, &graph));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Keeps only the findings matching the `--set` and `--rule` filters.
pub fn filter_findings(
    findings: Vec<Finding>,
    set: Option<&str>,
    rule_filter: &[String],
) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| match set {
            Some("legacy") => LEGACY_RULES.contains(&f.rule),
            Some("semantic") => SEMANTIC_RULES.contains(&f.rule),
            _ => true,
        })
        .filter(|f| rule_filter.is_empty() || rule_filter.iter().any(|r| r == f.rule))
        .collect()
}

/// Workspace member paths, parsed from the root `Cargo.toml` members list
/// (the list is literal paths, no globs).
fn workspace_members(root: &Path) -> Result<Vec<String>, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("Cargo.toml").display()))?;
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("members") && trimmed.contains('[') {
            in_members = true;
            continue;
        }
        if in_members {
            if trimmed.starts_with(']') {
                break;
            }
            if let Some(member) = trimmed.split('"').nth(1) {
                members.push(member.to_string());
            }
        }
    }
    if members.is_empty() {
        return Err("no workspace members found in Cargo.toml".to_string());
    }
    Ok(members)
}

/// Collects the `.rs` files under `dir`, recursively, sorted for
/// deterministic output.  Skips build output and the lint crate's
/// intentionally-dirty fixture corpus.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == "fixtures")
            {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans the whole workspace rooted at `root` and returns every finding.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let members = workspace_members(root)?;

    // Owned code: every member outside vendor/, plus the root facade crate.
    let mut scan_dirs: Vec<PathBuf> = vec![root.join("src")];
    for member in &members {
        if !member.starts_with("vendor/") {
            scan_dirs.push(root.join(member));
        }
    }
    let mut paths = Vec::new();
    for dir in &scan_dirs {
        rust_files(dir, &mut paths);
    }
    let mut specs = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        specs.push(SourceSpec { rel, content });
    }

    // Vendored members only contribute their crate root to the unsafe audit.
    for member in members.iter().filter(|m| m.starts_with("vendor/")) {
        let rel = format!("{member}/src/lib.rs");
        let path = root.join(&rel);
        if !path.is_file() {
            continue;
        }
        let content = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        specs.push(SourceSpec { rel, content });
    }

    Ok(scan_sources(&specs))
}

const USAGE: &str = "usage: dla-lint [workspace-root] [--set legacy|semantic|all] \
                     [--rule <name>]... [--format text|json|github]";

/// CLI entry point.  Prints findings in the requested format and exits
/// non-zero when any rule fired after filtering.
pub fn run_cli(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root: Option<String> = None;
    let mut format = "text".to_string();
    let mut set: Option<String> = None;
    let mut rule_filter: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "github") => format = f,
                _ => {
                    eprintln!("dla-lint: --format takes text|json|github\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--set" => match args.next() {
                Some(s) if matches!(s.as_str(), "legacy" | "semantic" | "all") => {
                    set = Some(s);
                }
                _ => {
                    eprintln!("dla-lint: --set takes legacy|semantic|all\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--rule" => match args.next() {
                Some(r)
                    if LEGACY_RULES.contains(&r.as_str())
                        || SEMANTIC_RULES.contains(&r.as_str()) =>
                {
                    rule_filter.push(r);
                }
                Some(r) => {
                    eprintln!(
                        "dla-lint: unknown rule `{r}` (known: {} {})",
                        LEGACY_RULES.join(" "),
                        SEMANTIC_RULES.join(" ")
                    );
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("dla-lint: --rule takes a rule name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            _ if arg.starts_with("--") => {
                eprintln!("dla-lint: unknown flag `{arg}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if root.is_none() => root = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    match scan_workspace(Path::new(&root)) {
        Ok(findings) => {
            let findings = filter_findings(findings, set.as_deref(), &rule_filter);
            match format.as_str() {
                "json" => print!("{}", report::to_json(&findings)),
                "github" => {
                    print!("{}", report::to_github(&findings));
                    if findings.is_empty() {
                        println!("dla-lint: clean");
                    } else {
                        println!("dla-lint: {} finding(s)", findings.len());
                    }
                }
                _ => {
                    if findings.is_empty() {
                        println!("dla-lint: clean");
                    } else {
                        for finding in &findings {
                            println!("{finding}");
                        }
                        println!("dla-lint: {} finding(s)", findings.len());
                    }
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("dla-lint: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rel: &str, content: &str) -> SourceSpec {
        SourceSpec {
            rel: rel.to_string(),
            content: content.to_string(),
        }
    }

    #[test]
    fn scan_sources_runs_legacy_and_semantic_rules_together() {
        let findings = scan_sources(&[spec(
            "crates/a/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
                 // lint: panic-free\npub fn query() { helper(); }\n\
                 pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )]);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        // The unwrap fires the line rule AND the reachability analysis.
        assert_eq!(rules, ["panic-free", "unwrap"], "{findings:?}");
        assert_eq!(findings[0].chain.len(), 2);
    }

    #[test]
    fn findings_are_sorted_by_file_line_rule() {
        let findings = scan_sources(&[
            spec(
                "crates/b/src/lib.rs",
                "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            spec(
                "crates/a/src/lib.rs",
                "#![forbid(unsafe_code)]\nfn g(y: Option<u32>) -> u32 { y.unwrap() }\n",
            ),
        ]);
        let files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(files, ["crates/a/src/lib.rs", "crates/b/src/lib.rs"]);
    }

    #[test]
    fn vendored_files_only_get_the_root_audit() {
        let findings = scan_sources(&[
            spec(
                "vendor/fake/src/util.rs",
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            spec("vendor/fake/src/lib.rs", "//! Vendored.\npub fn f() {}\n"),
        ]);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["unsafe-crate"], "{findings:?}");
        assert_eq!(findings[0].file, "vendor/fake/src/lib.rs");
    }

    #[test]
    fn filtering_by_set_and_rule_partitions_findings() {
        let findings = scan_sources(&[spec(
            "crates/a/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint: panic-free\npub fn query() { helper(); }\n\
             pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )]);
        let legacy = filter_findings(findings.clone(), Some("legacy"), &[]);
        assert!(legacy.iter().all(|f| f.rule == "unwrap"));
        let semantic = filter_findings(findings.clone(), Some("semantic"), &[]);
        assert!(semantic.iter().all(|f| f.rule == "panic-free"));
        let by_rule = filter_findings(findings, None, &["panic-free".to_string()]);
        assert_eq!(by_rule.len(), 1);
    }

    #[test]
    fn display_prints_the_chain_as_numbered_steps() {
        let findings = scan_sources(&[spec(
            "crates/a/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint: panic-free\npub fn query() { helper(); }\n\
             fn helper() { panic!(\"nope\"); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let text = findings[0].to_string();
        assert!(text.contains("[panic-free]"), "{text}");
        assert!(
            text.contains("\n    1. query (crates/a/src/lib.rs:3)"),
            "{text}"
        );
        assert!(
            text.contains("\n    2. helper (crates/a/src/lib.rs:4)"),
            "{text}"
        );
    }
}
