//! The five legacy rules, ported from the line-regex scanner onto the token
//! stream.  Messages, waiver syntax, and scoping are unchanged — only the
//! matching is token-accurate, which eliminates the false-positive class
//! where string literals, doc comments, and `#[doc]` attributes could
//! impersonate code.

use crate::analyses::banned_at;
use crate::lexer::TokenKind;
use crate::syntax::SourceFile;
use crate::{FileKind, Finding};
use std::collections::HashSet;

/// The files required to take every concurrency primitive through the
/// `dla_sync` facade (`dla_model::sync`) instead of `std::sync`, so the
/// model checker sees the real serving code under `--cfg interleave`.
pub const FACADE_FILES: [&str; 6] = [
    "crates/model/src/shared.rs",
    "crates/model/src/telemetry.rs",
    "crates/predict/src/fleet.rs",
    "crates/predict/src/health.rs",
    "crates/predict/src/router.rs",
    "crates/predict/src/service.rs",
];

fn push(findings: &mut Vec<Finding>, rel: &str, line: u32, rule: &'static str, message: String) {
    findings.push(Finding {
        file: rel.to_string(),
        line: line as usize,
        rule,
        message,
        chain: vec![],
    });
}

/// Runs the line-level legacy rules over one parsed file.
pub fn scan_file(file: &SourceFile, kind: FileKind, findings: &mut Vec<Finding>) {
    let rel = file.rel.as_str();
    let facade = FACADE_FILES.contains(&rel);
    let library = kind == FileKind::Library;

    for issue in &file.marker_issues {
        push(findings, rel, issue.line, "hot-path", issue.message.clone());
    }

    let cp = |ci: usize, ch: char| {
        file.code
            .get(ci)
            .is_some_and(|&ti| file.tokens[ti].is_punct(ch))
    };
    let ctext = |ci: usize| -> &str {
        file.code
            .get(ci)
            .map(|&ti| file.tokens[ti].text.as_str())
            .unwrap_or("")
    };
    let cident = |ci: usize| -> bool {
        file.code
            .get(ci)
            .is_some_and(|&ti| file.tokens[ti].kind == TokenKind::Ident)
    };

    // One finding per (line, construct), matching the old per-line scan.
    let mut hot_seen: HashSet<(u32, &'static str)> = HashSet::new();
    let mut ordering_seen: HashSet<u32> = HashSet::new();
    let mut unwrap_seen: HashSet<u32> = HashSet::new();
    let mut facade_seen: HashSet<u32> = HashSet::new();

    for ci in 0..file.code.len() {
        let t = file.ct(ci);
        let line = t.line;
        let idx0 = line as usize - 1;

        // hot-path: banned constructs inside marked regions (vendored code
        // included — a region is a region wherever it is).
        if file.line_in_hot_region(line)
            && !file
                .lines
                .get(idx0)
                .is_some_and(|l| l.contains("lint: allow(hot-path):"))
        {
            if let Some((label, why)) = banned_at(file, ci) {
                if hot_seen.insert((line, label)) {
                    push(
                        findings,
                        rel,
                        line,
                        "hot-path",
                        format!("`{label}` in a hot-path region: {why}"),
                    );
                }
            }
        }

        if t.kind != TokenKind::Ident {
            continue;
        }
        let in_test = file.line_in_test(line);

        if library && !in_test {
            // ordering: every atomic ordering choice needs a written-down
            // why.  Matching `…Ordering::<atomic variant>` keeps
            // `std::cmp::Ordering::Less` out of scope and still covers
            // `AtomicOrdering` renames.
            if t.text.ends_with("Ordering")
                && cp(ci + 1, ':')
                && cp(ci + 2, ':')
                && matches!(
                    ctext(ci + 3),
                    "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                )
                && !file.justified(idx0, "// ordering:")
                && ordering_seen.insert(line)
            {
                push(
                    findings,
                    rel,
                    line,
                    "ordering",
                    "atomic Ordering without a `// ordering:` justification".to_string(),
                );
            }

            // unwrap: library code must handle or waive, never assume.
            let after_dot = ci > 0 && cp(ci - 1, '.');
            let is_unwrap = t.text == "unwrap" && cp(ci + 1, '(') && cp(ci + 2, ')');
            let is_expect = t.text == "expect" && cp(ci + 1, '(');
            if after_dot
                && (is_unwrap || is_expect)
                && !file.justified(idx0, "lint: allow(unwrap):")
                && unwrap_seen.insert(line)
            {
                push(
                    findings,
                    rel,
                    line,
                    "unwrap",
                    "unwrap/expect in library code (waive with `// lint: allow(unwrap): why`)"
                        .to_string(),
                );
            }
        }

        // sync-facade: the model-checked files take primitives through
        // `dla_sync` only (tests inside those files may use std directly).
        if facade
            && !in_test
            && t.text == "std"
            && cp(ci + 1, ':')
            && cp(ci + 2, ':')
            && ctext(ci + 3) == "sync"
            && cident(ci + 3)
            && facade_seen.insert(line)
        {
            push(
                findings,
                rel,
                line,
                "sync-facade",
                "direct std::sync use in a dla_sync-routed file".to_string(),
            );
        }
    }
}

/// The crate-root unsafe audit: `#![forbid(unsafe_code)]`, or a documented
/// lint level + waiver explaining why forbidding is impossible.  Stays
/// string-based on purpose — the attribute must appear verbatim at the top
/// of the root, and a root that hides it in a string is lying to the reader
/// anyway.
pub fn scan_crate_root(rel: &str, content: &str, findings: &mut Vec<Finding>) {
    if content.contains("#![forbid(unsafe_code)]") {
        return;
    }
    if content.contains("lint: allow(unsafe-crate):") {
        // The waiver must still pin down a lint level: a crate that cannot
        // forbid must at least deny, scoping its `unsafe` to allow-listed
        // modules.
        if content.contains("#![deny(unsafe_code)]") {
            return;
        }
        push(
            findings,
            rel,
            1,
            "unsafe-crate",
            "unsafe-crate waiver without `#![deny(unsafe_code)]`".to_string(),
        );
        return;
    }
    push(
        findings,
        rel,
        1,
        "unsafe-crate",
        "crate root lacks `#![forbid(unsafe_code)]` (waive with `// lint: allow(unsafe-crate): why` plus `#![deny(unsafe_code)]`)"
            .to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    fn scan(rel: &str, content: &str) -> Vec<Finding> {
        let file = SourceFile::parse(rel, content);
        let mut findings = Vec::new();
        scan_file(&file, classify(rel), &mut findings);
        findings
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hot_path_rule_fires_on_each_banned_construct() {
        let fixture = r#"
fn eval() {
    // lint: hot-path begin
    let v = vec![1.0];
    let s = format!("{v:?}");
    let p = x.powi(3);
    let c = coeffs.clone();
    // lint: hot-path end
}
"#;
        let findings = scan("crates/model/src/eval.rs", fixture);
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "hot-path"));
    }

    #[test]
    fn hot_path_rule_is_silent_outside_regions_and_on_waived_lines() {
        let fixture = r#"
fn build() {
    let v = vec![1.0]; // fine: not a hot-path region
    // lint: hot-path begin
    let w = scratch.to_vec(); // lint: allow(hot-path): one-time setup
    let y = horner(x);
    // lint: hot-path end
}
"#;
        assert!(scan("crates/model/src/eval.rs", fixture).is_empty());
    }

    #[test]
    fn hot_path_rule_reports_unbalanced_markers() {
        let unclosed = "// lint: hot-path begin\nfn f() {}\n";
        assert_eq!(rules(&scan("a.rs", unclosed)), ["hot-path"]);
        let unopened = "fn f() {}\n// lint: hot-path end\n";
        assert_eq!(rules(&scan("a.rs", unopened)), ["hot-path"]);
    }

    #[test]
    fn ordering_rule_requires_a_justification() {
        let bare = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
        assert_eq!(rules(&scan("crates/x/src/a.rs", bare)), ["ordering"]);

        let same_line = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed - standalone stat
}
"#;
        assert!(scan("crates/x/src/a.rs", same_line).is_empty());

        let preceding = r#"
fn bump(c: &AtomicU64) {
    // ordering: Relaxed - standalone statistic, nothing published through it
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
        assert!(scan("crates/x/src/a.rs", preceding).is_empty());
    }

    #[test]
    fn ordering_rule_sees_through_multiline_calls() {
        let continued = r#"
fn bump(c: &AtomicU64) {
    // ordering: Relaxed on both halves - lossy by design
    c.store(
        c.load(Ordering::Relaxed) + 1,
        Ordering::Relaxed,
    );
}
"#;
        assert!(scan("crates/x/src/a.rs", continued).is_empty());
    }

    #[test]
    fn ordering_rule_skips_tests_and_cmp_ordering() {
        let fixture = r#"
fn compare(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less // not an atomic ordering
}

#[cfg(test)]
mod tests {
    #[test]
    fn atomics_in_tests_are_free() {
        c.fetch_add(1, Ordering::SeqCst);
    }
}
"#;
        assert!(scan("crates/x/src/a.rs", fixture).is_empty());
    }

    #[test]
    fn ordering_rule_covers_renamed_ordering_imports() {
        let renamed = r#"
fn bump(c: &AtomicU64) {
    c.fetch_add(1, AtomicOrdering::Relaxed);
}
"#;
        assert_eq!(rules(&scan("crates/x/src/a.rs", renamed)), ["ordering"]);
    }

    #[test]
    fn unwrap_rule_fires_in_library_code_only() {
        let fixture = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        assert_eq!(rules(&scan("crates/x/src/a.rs", fixture)), ["unwrap"]);
        // Bins, tests directories and #[cfg(test)] regions are exempt.
        assert!(scan("crates/x/src/main.rs", fixture).is_empty());
        assert!(scan("crates/x/tests/a.rs", fixture).is_empty());
        let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n{fixture}}}\n");
        assert!(scan("crates/x/src/a.rs", &in_test_mod).is_empty());
        // unwrap_or_else is not unwrap.
        let recovered = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n";
        assert!(scan("crates/x/src/a.rs", recovered).is_empty());
    }

    #[test]
    fn unwrap_rule_accepts_reasoned_waivers() {
        let waived = "fn f(x: Option<u32>) -> u32 {\n    \
                      // lint: allow(unwrap): x is Some by construction above\n    \
                      x.unwrap()\n}\n";
        assert!(scan("crates/x/src/a.rs", waived).is_empty());
        let expect = "fn f(x: Option<u32>) -> u32 {\n    \
                      x.expect(\"always present\") // lint: allow(unwrap): invariant\n}\n";
        assert!(scan("crates/x/src/a.rs", expect).is_empty());
    }

    #[test]
    fn sync_facade_rule_guards_the_model_checked_files() {
        let offending = "use std::sync::RwLock;\nfn f() {}\n";
        assert_eq!(
            rules(&scan("crates/model/src/shared.rs", offending)),
            ["sync-facade"]
        );
        // PR 10 extends coverage to the router.
        assert_eq!(
            rules(&scan("crates/predict/src/router.rs", offending)),
            ["sync-facade"]
        );
        // Other files may use std::sync freely.
        assert!(scan("crates/model/src/repo.rs", offending).is_empty());
        // And tests inside a facade file may too.
        let in_tests = "#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        assert!(scan("crates/predict/src/service.rs", in_tests).is_empty());
    }

    #[test]
    fn unsafe_crate_rule_requires_forbid_or_documented_exception() {
        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "//! Docs.\npub fn f() {}\n",
            &mut findings,
        );
        assert_eq!(rules(&findings), ["unsafe-crate"]);

        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n",
            &mut findings,
        );
        assert!(findings.is_empty());

        // A waiver alone is not enough: the crate must still deny by default.
        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "// lint: allow(unsafe-crate): raw-pointer views\n",
            &mut findings,
        );
        assert_eq!(rules(&findings), ["unsafe-crate"]);

        let mut findings = Vec::new();
        scan_crate_root(
            "crates/x/src/lib.rs",
            "// lint: allow(unsafe-crate): raw-pointer views\n#![deny(unsafe_code)]\n",
            &mut findings,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn string_literals_cannot_impersonate_code() {
        // The false-positive class the token port eliminates: trigger text
        // inside string literals, doc comments, and #[doc] attributes.
        let fixture = r##"
//! Doc prose about Ordering::Relaxed and .unwrap() and vec![...] is inert.

/// So is item-doc prose: call `.expect("...")` and `Vec::new` carefully.
#[doc = "and #[doc] strings with Ordering::SeqCst or .unwrap() too"]
fn messages() -> &'static str {
    let a = "Ordering::Relaxed in a string is data, not an atomic op";
    let b = "calling .unwrap() here would panic, says the error text";
    let c = r#"raw strings with vec![Box::new] and format! stay data"#;
    a
}
"##;
        assert!(scan("crates/x/src/a.rs", fixture).is_empty());
    }

    #[test]
    fn strings_inside_hot_regions_cannot_trigger_the_alloc_ban() {
        let fixture = r#"
fn eval() {
    // lint: hot-path begin
    let why = "Vec::new and format! in an error string are fine";
    emit(why);
    // lint: hot-path end
}
"#;
        assert!(scan("crates/model/src/eval.rs", fixture).is_empty());
    }
}
