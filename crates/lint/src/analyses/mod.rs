//! The semantic analyses: call-graph-driven, deny-by-default checks layered
//! on the [`lexer`](crate::lexer)/[`syntax`](crate::syntax) foundation.
//!
//! | rule          | what it denies                                          |
//! |---------------|---------------------------------------------------------|
//! | `panic-free`  | `unwrap`/`expect`/`panic!`/`assert!`/indexing reachable from hot-path regions or `// lint: panic-free` entry points |
//! | `alloc-reach` | allocation reachable *through calls* out of a hot-path region |
//! | `atomic-pair` | `Release` publishes without a matching `Acquire` observer on the same atomic field (and vice versa) |
//! | `lock-order`  | cycles in the workspace lock-acquisition-order graph    |
//!
//! Every analysis reports the full offending call chain (entry → … →
//! offending site) so a deep finding explains how the protected path
//! reaches it.

pub mod alloc_reach;
pub mod atomics;
pub mod lock_order;
pub mod panic_free;

use crate::callgraph::{ChainStep, FnId};
use crate::syntax::SourceFile;
use crate::Finding;
use std::collections::HashMap;

/// Banned-in-hot-path construct starting at code position `ci`, if any:
/// `(token-label, why)` with the exact labels the original line-based rule
/// used, so findings stay byte-comparable across the engine rewrite.
pub fn banned_at(file: &SourceFile, ci: usize) -> Option<(&'static str, &'static str)> {
    let t = file.ct(ci);
    if t.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    let next = |k: usize, ch: char| {
        file.code
            .get(ci + k)
            .is_some_and(|&ti| file.tokens[ti].is_punct(ch))
    };
    let next_ident = |k: usize| {
        file.code
            .get(ci + k)
            .map(|&ti| file.tokens[ti].text.as_str())
            .filter(|_| file.tokens[file.code[ci + k]].kind == crate::lexer::TokenKind::Ident)
    };
    let after_dot = ci > 0
        && file
            .code
            .get(ci - 1)
            .is_some_and(|&ti| file.tokens[ti].is_punct('.'));
    match t.text.as_str() {
        "format" if next(1, '!') => Some(("format!", "string formatting allocates")),
        "vec" if next(1, '!') => Some(("vec![", "vec! allocates")),
        "powi" if after_dot && next(1, '(') => {
            Some((".powi(", "powi is slower than incremental multiplication"))
        }
        "powf" if after_dot && next(1, '(') => {
            Some((".powf(", "powf is slower than incremental multiplication"))
        }
        "clone" if after_dot && next(1, '(') && next(2, ')') => {
            Some((".clone()", "clone on the hot path"))
        }
        "to_vec" if after_dot && next(1, '(') && next(2, ')') => {
            Some((".to_vec()", "to_vec allocates"))
        }
        "to_string" if after_dot && next(1, '(') && next(2, ')') => {
            Some((".to_string()", "to_string allocates"))
        }
        "to_owned" if after_dot && next(1, '(') && next(2, ')') => {
            Some((".to_owned()", "to_owned allocates"))
        }
        "collect" if after_dot && next(1, '(') => Some((".collect(", "collect allocates")),
        "Vec" if next(1, ':') && next(2, ':') => match next_ident(3) {
            Some("new") => Some(("Vec::new", "Vec::new allocates on first push")),
            Some("with_capacity") => Some(("Vec::with_capacity", "Vec::with_capacity allocates")),
            _ => None,
        },
        "Box" if next(1, ':') && next(2, ':') && next_ident(3) == Some("new") => {
            Some(("Box::new", "Box::new allocates"))
        }
        "String" if next(1, ':') && next(2, ':') => {
            Some(("String::", "String construction allocates"))
        }
        _ => None,
    }
}

/// A panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 1-indexed line.
    pub line: u32,
    /// What panics there (`.unwrap()`, `panic!`, `indexing`, …).
    pub what: String,
}

/// The panicking macros the `panic-free` analysis denies (`debug_assert*`
/// compiles out of release builds and is allowed).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Collects the unwaived panic sources of a function: `unwrap`/`expect`
/// calls, panicking macros, and indexing/slicing without `get`.  A site is
/// waived by `// lint: allow(panic-free): reason` (walk-up aware), and
/// `unwrap`/`expect` sites also honor the long-standing
/// `// lint: allow(unwrap): reason` waiver — a reasoned unwrap waiver is an
/// invariant statement, and the reachability analysis trusts it the same
/// way the line rule does.
pub fn panic_sources(file: &SourceFile, def: &crate::syntax::FnDef) -> Vec<PanicSource> {
    use crate::syntax::Event;
    let mut out = Vec::new();
    let waived = |line: u32, also_unwrap: bool| {
        let idx = line as usize - 1;
        file.justified(idx, "lint: allow(panic-free):")
            || (also_unwrap && file.justified(idx, "lint: allow(unwrap):"))
    };
    for event in &def.events {
        match event {
            Event::Call(c)
                if c.method
                    && (c.name == "unwrap" || c.name == "expect")
                    && !waived(c.line, true) =>
            {
                out.push(PanicSource {
                    line: c.line,
                    what: format!(".{}()", c.name),
                });
            }
            Event::Macro { name, line }
                if PANIC_MACROS.contains(&name.as_str()) && !waived(*line, false) =>
            {
                out.push(PanicSource {
                    line: *line,
                    what: format!("{name}!"),
                });
            }
            Event::Index { line } if !waived(*line, false) => {
                out.push(PanicSource {
                    line: *line,
                    what: "indexing without get".to_string(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Builds a finding with a call chain.
pub fn chained_finding(
    file: &str,
    line: u32,
    rule: &'static str,
    message: String,
    chain: Vec<ChainStep>,
) -> Finding {
    Finding {
        file: file.to_string(),
        line: line as usize,
        rule,
        message,
        chain,
    }
}

/// Maps `(file index, def index)` to the graph's node id, for the analyses
/// that need to look functions up by position.
pub fn fn_index(graph: &crate::callgraph::CallGraph) -> HashMap<(usize, usize), FnId> {
    let mut map = HashMap::new();
    for id in graph.ids() {
        let n = graph.node(id);
        map.insert((n.file, n.def), id);
    }
    map
}

/// Every hot-path region paired with the innermost function containing it:
/// `(container id, begin line, end line)`.  Regions outside any graphed
/// function (top-level, test-gated, or in excluded files) are skipped — they
/// have no call events to follow.
pub fn region_containers(
    files: &[SourceFile],
    library: &[bool],
    index: &HashMap<(usize, usize), FnId>,
) -> Vec<(FnId, u32, u32)> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !library[fi] {
            continue;
        }
        for region in &file.hot_regions {
            let container = file
                .functions
                .iter()
                .enumerate()
                .filter(|(_, d)| d.line <= region.begin && region.end <= d.end_line)
                .max_by_key(|(_, d)| d.line)
                .and_then(|(di, _)| index.get(&(fi, di)).copied());
            if let Some(id) = container {
                out.push((id, region.begin, region.end));
            }
        }
    }
    out
}
