//! Panic-freedom reachability.
//!
//! Entry points — functions marked `// lint: panic-free` (the serving-tier
//! query paths) and the call sites inside `// lint: hot-path begin/end`
//! regions — must not transitively reach a panic source: `unwrap`/`expect`,
//! a panicking macro, or indexing without `get`.  Findings carry the full
//! witness call chain from the entry to the offending site.
//!
//! Waivers:
//!
//! * `// lint: allow(panic-free): reason` at a site waives that site;
//! * the same marker in the comment block above a `fn` vouches for the whole
//!   function *and everything it calls* (the analysis does not descend);
//! * `// lint: allow(unwrap): reason` — the long-standing unwrap waiver —
//!   also satisfies this analysis at `unwrap`/`expect` sites, since it
//!   states the same cannot-panic invariant.

use super::{chained_finding, fn_index, panic_sources, region_containers};
use crate::callgraph::{CallGraph, FnId};
use crate::syntax::SourceFile;
use crate::Finding;
use std::collections::{HashMap, HashSet, VecDeque};

/// Runs the analysis over the parsed workspace.
pub fn run(files: &[SourceFile], library: &[bool], graph: &CallGraph) -> Vec<Finding> {
    let index = fn_index(graph);
    let trusted = |id: FnId| {
        let n = graph.node(id);
        files[n.file].functions[n.def].trusted_panic_free
    };

    // Marked entry points seed a whole-body search; hot-path regions seed
    // the search with the calls made *inside* the region (the containing
    // function's code outside the region is not on the hot path).
    let mut parents: HashMap<FnId, Option<(FnId, u32)>> = HashMap::new();
    let mut queue = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        if !library[fi] {
            continue;
        }
        for (di, def) in file.functions.iter().enumerate() {
            if !def.entry_panic_free || def.in_test {
                continue;
            }
            let Some(&id) = index.get(&(fi, di)) else {
                continue;
            };
            if trusted(id) || parents.contains_key(&id) {
                continue;
            }
            parents.insert(id, None);
            queue.push_back(id);
        }
    }
    let regions = region_containers(files, library, &index);
    // Containers anchor chains without being BFS members themselves; they
    // must never be re-inserted as someone's child, or a recursive call back
    // into the container would make the parent map cyclic.
    let anchors: HashSet<FnId> = regions
        .iter()
        .map(|&(container, _, _)| container)
        .filter(|c| !parents.contains_key(c))
        .collect();
    for &(container, begin, end) in &regions {
        // A fn-level waiver vouches for the region's calls too.
        if trusted(container) {
            continue;
        }
        for edge in graph.edges(container) {
            if edge.line <= begin || edge.line >= end {
                continue;
            }
            if trusted(edge.callee)
                || parents.contains_key(&edge.callee)
                || anchors.contains(&edge.callee)
            {
                continue;
            }
            parents.insert(edge.callee, Some((container, edge.line)));
            queue.push_back(edge.callee);
        }
    }
    while let Some(id) = queue.pop_front() {
        for edge in graph.edges(id) {
            if trusted(edge.callee)
                || parents.contains_key(&edge.callee)
                || anchors.contains(&edge.callee)
            {
                continue;
            }
            parents.insert(edge.callee, Some((id, edge.line)));
            queue.push_back(edge.callee);
        }
    }

    let mut findings = Vec::new();
    let mut reported: HashSet<(String, u32, String)> = HashSet::new();

    // Panic sources directly on hot-path region lines (the container itself
    // is not otherwise an entry point).
    for &(container, begin, end) in &regions {
        let node = graph.node(container);
        if trusted(container) {
            continue;
        }
        let file = &files[node.file];
        let def = &file.functions[node.def];
        for source in panic_sources(file, def) {
            if source.line <= begin || source.line >= end {
                continue;
            }
            if !reported.insert((file.rel.clone(), source.line, source.what.clone())) {
                continue;
            }
            findings.push(chained_finding(
                &file.rel,
                source.line,
                "panic-free",
                format!(
                    "`{}` inside a hot-path region in `{}` (hot paths must be panic-free)",
                    source.what, def.qual
                ),
                vec![],
            ));
        }
    }

    // Everything reachable from the entries, chains included.
    let mut reached: Vec<FnId> = parents.keys().copied().collect();
    reached.sort_unstable();
    for id in reached {
        let node = graph.node(id);
        let file = &files[node.file];
        let def = &file.functions[node.def];
        for source in panic_sources(file, def) {
            if !reported.insert((file.rel.clone(), source.line, source.what.clone())) {
                continue;
            }
            let chain = graph.chain(files, &parents, id);
            let entry = chain
                .first()
                .map(|s| s.function.clone())
                .unwrap_or_else(|| def.qual.clone());
            findings.push(chained_finding(
                &file.rel,
                source.line,
                "panic-free",
                format!(
                    "`{}` reachable on the panic-free path from `{entry}`",
                    source.what
                ),
                chain,
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let library = vec![true; files.len()];
        let graph = CallGraph::build(&files, |_| true);
        run(&files, &library, &graph)
    }

    #[test]
    fn marked_entries_report_transitive_unwraps_with_chains() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "// lint: panic-free\npub fn query() { step(); }\n\
             fn step() { deep(); }\nfn deep(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "panic-free");
        assert_eq!(f.line, 4);
        let names: Vec<&str> = f.chain.iter().map(|s| s.function.as_str()).collect();
        assert_eq!(names, ["query", "step", "deep"]);
    }

    #[test]
    fn hot_regions_seed_their_call_sites_only() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "pub fn eval() {\n    setup();\n    // lint: hot-path begin\n    kernel();\n    \
             // lint: hot-path end\n}\n\
             fn setup(x: Option<u32>) { x.unwrap(); }\n\
             fn kernel() { inner(); }\nfn inner() { panic!(\"boom\"); }\n",
        )]);
        // setup() is called outside the region: its unwrap is not on the hot
        // path.  kernel() -> inner() -> panic! is.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`panic!`"));
        let names: Vec<&str> = findings[0]
            .chain
            .iter()
            .map(|s| s.function.as_str())
            .collect();
        assert_eq!(names, ["eval", "kernel", "inner"]);
    }

    #[test]
    fn direct_region_indexing_is_reported_and_waivable() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "pub fn eval(xs: &[f64]) -> f64 {\n    // lint: hot-path begin\n    \
             let a = xs[0];\n    \
             // lint: allow(panic-free): index bounded by construction\n    \
             let b = xs[1];\n    // lint: hot-path end\n    a + b\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("indexing without get"));
    }

    #[test]
    fn fn_level_waivers_cut_the_subtree() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "// lint: panic-free\npub fn query() { audited(); }\n\
             // lint: allow(panic-free): fixed-degree arrays, verified manually\n\
             fn audited(x: Option<u32>) { helper(); x.unwrap(); }\n\
             fn helper(y: Option<u32>) { y.unwrap(); }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unwrap_waivers_satisfy_the_reachability_rule_too() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "// lint: panic-free\npub fn query(x: Option<u32>) {\n    \
             // lint: allow(unwrap): populated at startup\n    x.unwrap();\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
