//! Lock-order cycle detection.
//!
//! Builds the workspace lock-acquisition-order graph: an edge `a → b` means
//! some function acquires lock `b` (directly, or transitively through a
//! call) while still holding a guard on lock `a`.  A cycle in that graph is
//! a deadlock recipe — two threads can interleave the cyclic acquisitions
//! and block each other forever — so cycles are denied.
//!
//! Guard lifetimes come from the parser: a `let`-bound guard (or a
//! condition temporary in `if let`/`while let`/`match` heads) is held to the
//! end of its block, a plain temporary to the end of its statement.  Locks
//! are keyed by receiver field name workspace-wide, the same convention the
//! atomic pairing analysis uses.  Same-field nesting is *not* reported:
//! `slots[i]` vs `slots[j]` are different locks behind one name, and the
//! checker cannot tell reentrancy from disjoint instances.
//!
//! Waiver: `// lint: allow(lock-order): reason` on the inner acquisition
//! (or the call that performs it) removes that edge.

use crate::callgraph::{CallGraph, ChainStep};
use crate::syntax::{Event, SourceFile};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One ordered-acquisition edge with its witness site.
struct OrderEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    holder: String,
    via: Option<String>,
}

/// Runs the analysis over the parsed workspace.
pub fn run(files: &[SourceFile], library: &[bool], graph: &CallGraph) -> Vec<Finding> {
    let n = graph.ids().count();

    // Which locks each function acquires, directly then transitively.
    let mut trans: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for id in graph.ids() {
        let node = graph.node(id);
        if !library[node.file] {
            continue;
        }
        let file = &files[node.file];
        for event in &file.functions[node.def].events {
            if let Event::Lock(l) = event {
                trans[id].insert(l.field.clone());
            }
        }
    }
    loop {
        let mut changed = false;
        for id in 0..n {
            for edge in graph.edges(id) {
                let add: Vec<String> = trans[edge.callee]
                    .iter()
                    .filter(|f| !trans[id].contains(*f))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    trans[id].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Ordered edges: lock B (or call something that locks B) while a guard
    // on lock A is live.
    let mut edges: BTreeMap<(String, String), OrderEdge> = BTreeMap::new();
    let mut add_edge = |e: OrderEdge| {
        edges.entry((e.from.clone(), e.to.clone())).or_insert(e);
    };
    for id in graph.ids() {
        let node = graph.node(id);
        if !library[node.file] {
            continue;
        }
        let file = &files[node.file];
        let def = &file.functions[node.def];
        for event in &def.events {
            let Event::Lock(held) = event else { continue };
            for later in &def.events {
                match later {
                    Event::Lock(inner)
                        if inner.cidx > held.cidx
                            && inner.cidx <= held.scope_end
                            && inner.field != held.field =>
                    {
                        if file.justified(inner.line as usize - 1, "lint: allow(lock-order):") {
                            continue;
                        }
                        add_edge(OrderEdge {
                            from: held.field.clone(),
                            to: inner.field.clone(),
                            file: file.rel.clone(),
                            line: inner.line,
                            holder: def.qual.clone(),
                            via: None,
                        });
                    }
                    Event::Call(call) if call.cidx > held.cidx && call.cidx <= held.scope_end => {
                        if file.justified(call.line as usize - 1, "lint: allow(lock-order):") {
                            continue;
                        }
                        for ge in graph.edges(id).iter().filter(|ge| ge.cidx == call.cidx) {
                            let callee_qual = {
                                let cn = graph.node(ge.callee);
                                files[cn.file].functions[cn.def].qual.clone()
                            };
                            for field in &trans[ge.callee] {
                                if *field == held.field {
                                    continue;
                                }
                                add_edge(OrderEdge {
                                    from: held.field.clone(),
                                    to: field.clone(),
                                    file: file.rel.clone(),
                                    line: call.line,
                                    holder: def.qual.clone(),
                                    via: Some(callee_qual.clone()),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Cycle detection: fields in the same strongly connected component of
    // the order graph (mutual reachability — the graphs here are tiny).
    let fields: Vec<String> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let fidx: BTreeMap<&str, usize> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i))
        .collect();
    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fields.len()];
    for (a, b) in edges.keys() {
        succ[fidx[a.as_str()]].insert(fidx[b.as_str()]);
    }
    let reaches = |from: usize, to: usize| -> bool {
        let mut seen = vec![false; fields.len()];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            for &y in &succ[x] {
                if y == to {
                    return true;
                }
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    };
    let mut findings = Vec::new();
    let mut grouped = vec![false; fields.len()];
    for i in 0..fields.len() {
        if grouped[i] {
            continue;
        }
        let scc: Vec<usize> = (i..fields.len())
            .filter(|&j| (i == j || (reaches(i, j) && reaches(j, i))) && !grouped[j])
            .collect();
        if scc.len() < 2 {
            // Singleton with no self-edge (same-field nesting is skipped
            // above): not a cycle.
            continue;
        }
        for &j in &scc {
            grouped[j] = true;
        }
        let names: Vec<&str> = scc.iter().map(|&j| fields[j].as_str()).collect();
        let witness: Vec<&OrderEdge> = edges
            .iter()
            .filter(|((a, b), _)| names.contains(&a.as_str()) && names.contains(&b.as_str()))
            .map(|(_, e)| e)
            .collect();
        let Some(first) = witness.first() else {
            continue;
        };
        let chain: Vec<ChainStep> = witness
            .iter()
            .map(|e| ChainStep {
                file: e.file.clone(),
                line: e.line,
                function: match &e.via {
                    Some(callee) => format!(
                        "{}: holds `{}` while acquiring `{}` (via call to `{callee}`)",
                        e.holder, e.from, e.to
                    ),
                    None => format!(
                        "{}: holds `{}` while acquiring `{}`",
                        e.holder, e.from, e.to
                    ),
                },
            })
            .collect();
        findings.push(Finding {
            file: first.file.clone(),
            line: first.line as usize,
            rule: "lock-order",
            message: format!(
                "lock-order cycle among {}: these locks are acquired in \
                 conflicting orders and can deadlock",
                names
                    .iter()
                    .map(|f| format!("`{f}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            chain,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", src)];
        let graph = CallGraph::build(&files, |_| true);
        run(&files, &[true], &graph)
    }

    #[test]
    fn conflicting_direct_orders_are_a_cycle() {
        let findings = run_on(
            "fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn ba(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "lock-order");
        assert!(f.message.contains("`alpha`") && f.message.contains("`beta`"));
        assert_eq!(f.chain.len(), 2);
    }

    #[test]
    fn consistent_order_is_clean() {
        let findings = run_on(
            "fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn ab2(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cycles_through_calls_are_detected() {
        let findings = run_on(
            "fn outer(&self) {\n    let a = self.alpha.lock();\n    helper();\n}\n\
             fn helper(&self) {\n    let b = self.beta.lock();\n}\n\
             fn reversed(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .chain
            .iter()
            .any(|s| s.function.contains("via call to `helper`")));
    }

    #[test]
    fn statement_scoped_temporaries_do_not_hold_across_statements() {
        let findings = run_on(
            "fn ab(&self) {\n    self.alpha.lock().touch();\n    self.beta.lock().touch();\n}\n\
             fn ba(&self) {\n    self.beta.lock().touch();\n    self.alpha.lock().touch();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn waived_inner_acquisitions_drop_the_edge() {
        let findings = run_on(
            "fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn ba(&self) {\n    let b = self.beta.lock();\n    \
             // lint: allow(lock-order): beta guard is read-only re-check, never blocks\n    \
             let a = self.alpha.lock();\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
