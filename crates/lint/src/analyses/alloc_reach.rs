//! Allocation reachability out of hot-path regions.
//!
//! The legacy `hot-path` rule scans the lines *inside* a marked region; this
//! analysis follows the calls those lines make and denies allocation (and
//! the other banned constructs) anywhere in the transitive callee set.  A
//! callee's own hot-region lines are left to the direct rule, so a finding
//! here always means "this allocation is hidden behind a call".
//!
//! Waivers: `// lint: allow(hot-path): reason` at the allocation site (same
//! walk-up semantics as every other line waiver), or in the comment block
//! above a `fn` to vouch for the function and everything it calls.

use super::{banned_at, chained_finding, fn_index, region_containers};
use crate::callgraph::{CallGraph, FnId};
use crate::syntax::SourceFile;
use crate::Finding;
use std::collections::{HashMap, HashSet, VecDeque};

/// Runs the analysis over the parsed workspace.
pub fn run(files: &[SourceFile], library: &[bool], graph: &CallGraph) -> Vec<Finding> {
    let index = fn_index(graph);
    let trusted = |id: FnId| {
        let n = graph.node(id);
        files[n.file].functions[n.def].trusted_alloc
    };

    let mut parents: HashMap<FnId, Option<(FnId, u32)>> = HashMap::new();
    let mut queue = VecDeque::new();
    let regions = region_containers(files, library, &index);
    // Containers anchor chains without being BFS members themselves; they
    // must never be re-inserted as someone's child, or a recursive call back
    // into the container would make the parent map cyclic.
    let anchors: HashSet<FnId> = regions.iter().map(|&(c, _, _)| c).collect();
    for &(container, begin, end) in &regions {
        // A fn-level waiver vouches for the region's calls too.
        if trusted(container) {
            continue;
        }
        for edge in graph.edges(container) {
            if edge.line <= begin || edge.line >= end {
                continue;
            }
            if trusted(edge.callee)
                || parents.contains_key(&edge.callee)
                || anchors.contains(&edge.callee)
            {
                continue;
            }
            parents.insert(edge.callee, Some((container, edge.line)));
            queue.push_back(edge.callee);
        }
    }
    while let Some(id) = queue.pop_front() {
        for edge in graph.edges(id) {
            if trusted(edge.callee)
                || parents.contains_key(&edge.callee)
                || anchors.contains(&edge.callee)
            {
                continue;
            }
            parents.insert(edge.callee, Some((id, edge.line)));
            queue.push_back(edge.callee);
        }
    }

    let mut findings = Vec::new();
    let mut reported: HashSet<(String, u32, &'static str)> = HashSet::new();
    let mut reached: Vec<FnId> = parents.keys().copied().collect();
    reached.sort_unstable();
    for id in reached {
        let node = graph.node(id);
        let file = &files[node.file];
        let def = &file.functions[node.def];
        for ci in def.body.clone() {
            let Some((label, why)) = banned_at(file, ci) else {
                continue;
            };
            let line = file.ct(ci).line;
            // Sites on the callee's own hot-region lines belong to the
            // direct rule (including its waiver semantics).
            if file.line_in_hot_region(line) {
                continue;
            }
            if file.justified(line as usize - 1, "lint: allow(hot-path):") {
                continue;
            }
            if !reported.insert((file.rel.clone(), line, label)) {
                continue;
            }
            findings.push(chained_finding(
                &file.rel,
                line,
                "alloc-reach",
                format!("`{label}` reachable from a hot-path region: {why}"),
                graph.chain(files, &parents, id),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", src)];
        let graph = CallGraph::build(&files, |_| true);
        run(&files, &[true], &graph)
    }

    #[test]
    fn allocation_behind_a_call_is_reported_with_the_chain() {
        let findings = run_on(
            "pub fn eval() {\n    // lint: hot-path begin\n    kernel();\n    \
             // lint: hot-path end\n}\n\
             fn kernel() -> Vec<f64> { scratch() }\n\
             fn scratch() -> Vec<f64> { Vec::with_capacity(8) }\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "alloc-reach");
        assert!(f.message.contains("Vec::with_capacity"));
        let names: Vec<&str> = f.chain.iter().map(|s| s.function.as_str()).collect();
        assert_eq!(names, ["eval", "kernel", "scratch"]);
    }

    #[test]
    fn calls_outside_the_region_do_not_seed() {
        let findings = run_on(
            "pub fn eval() {\n    build();\n    // lint: hot-path begin\n    \
             let x = 1;\n    // lint: hot-path end\n}\n\
             fn build() -> Vec<f64> { vec![1.0] }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fn_level_hot_path_waivers_cut_the_subtree() {
        let findings = run_on(
            "pub fn eval() {\n    // lint: hot-path begin\n    kernel();\n    \
             // lint: hot-path end\n}\n\
             // lint: allow(hot-path): one-time lazily-initialized scratch\n\
             fn kernel() -> Vec<f64> { vec![1.0] }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn site_waivers_apply_in_callees() {
        let findings = run_on(
            "pub fn eval() {\n    // lint: hot-path begin\n    kernel();\n    \
             // lint: hot-path end\n}\n\
             fn kernel() -> Vec<f64> {\n    \
             // lint: allow(hot-path): cold slow path after a cache miss\n    vec![1.0]\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
