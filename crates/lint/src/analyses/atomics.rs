//! Atomic publish-protocol pairing.
//!
//! A `Release` store (or release-semantics RMW) publishes data that only
//! becomes visible to another thread through a matching `Acquire` load (or
//! acquire-semantics RMW) on the *same atomic field*.  A release with no
//! acquire anywhere in the workspace is the orphan-publish bug class the
//! interleave checker caught dynamically in the model crate: the writer
//! pays for the fence, and no reader ever synchronizes with it.  The dual —
//! an acquire on a field nothing releases — means the reader believes a
//! protocol exists that no writer implements.
//!
//! Fields are keyed by receiver name workspace-wide (`self.generation.store`
//! and `shared.generation.load` pair up), which matches how the serving tier
//! names its protocol fields.  Only literal `Ordering::*` arguments
//! participate; variable orderings (the `dla_sync` facade internals) are
//! out of scope.  `Relaxed` traffic needs no pairing — the legacy
//! `ordering` rule already demands its written justification.
//!
//! Waiver: `// lint: allow(atomic-pair): reason` at the orphan site.

use crate::syntax::{Event, SourceFile};
use crate::Finding;
use std::collections::BTreeMap;

/// One side of a potential pairing.
struct Site {
    file: String,
    line: u32,
    op: String,
    ord: String,
    waived: bool,
}

fn release_semantics(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel" | "SeqCst")
}

fn acquire_semantics(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel" | "SeqCst")
}

/// Runs the analysis over the parsed workspace.
pub fn run(files: &[SourceFile], library: &[bool]) -> Vec<Finding> {
    let mut publishes: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut acquires: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !library[fi] {
            continue;
        }
        for def in &file.functions {
            if def.in_test {
                continue;
            }
            for event in &def.events {
                let Event::Atomic(a) = event else { continue };
                if a.field == "<expr>" || a.orderings.is_empty() {
                    continue;
                }
                let ord0 = a.orderings[0].as_str();
                let rmw = a.op != "store" && a.op != "load";
                let site = || Site {
                    file: file.rel.clone(),
                    line: a.line,
                    op: a.op.clone(),
                    ord: ord0.to_string(),
                    waived: file.justified(a.line as usize - 1, "lint: allow(atomic-pair):"),
                };
                let is_publish = (a.op == "store" && release_semantics(ord0))
                    || (rmw && release_semantics(ord0));
                // A CAS observes on success with its first ordering and on
                // failure with its second; either side can complete the
                // acquire half of a protocol.
                let is_acquire = (a.op == "load" && acquire_semantics(ord0))
                    || (rmw && acquire_semantics(ord0))
                    || a.orderings.get(1).is_some_and(|o| acquire_semantics(o));
                if is_publish {
                    publishes.entry(a.field.clone()).or_default().push(site());
                }
                if is_acquire {
                    acquires.entry(a.field.clone()).or_default().push(site());
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (field, sites) in &publishes {
        if acquires.contains_key(field) {
            continue;
        }
        for site in sites.iter().filter(|s| !s.waived) {
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line as usize,
                rule: "atomic-pair",
                message: format!(
                    "`{}({})` publishes `{field}` with Release semantics, but no \
                     Acquire load observes `{field}` anywhere in the workspace",
                    site.op, site.ord
                ),
                chain: vec![],
            });
        }
    }
    for (field, sites) in &acquires {
        if publishes.contains_key(field) {
            continue;
        }
        for site in sites.iter().filter(|s| !s.waived) {
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line as usize,
                rule: "atomic-pair",
                message: format!(
                    "`{}({})` expects `{field}` to be published with Release \
                     semantics, but no Release store/RMW on `{field}` exists in \
                     the workspace",
                    site.op, site.ord
                ),
                chain: vec![],
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let library = vec![true; files.len()];
        run(&files, &library)
    }

    #[test]
    fn orphan_release_store_is_reported() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "fn publish(&self) {\n    // ordering: Release - publish the built repo\n    \
             self.generation.store(1, Ordering::Release);\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "atomic-pair");
        assert!(findings[0].message.contains("`generation`"));
        assert!(findings[0].message.contains("no Acquire load"));
    }

    #[test]
    fn paired_fields_across_files_are_clean() {
        let findings = run_on(&[
            (
                "crates/a/src/writer.rs",
                "fn publish(&self) { self.generation.store(1, Ordering::Release); }\n",
            ),
            (
                "crates/a/src/reader.rs",
                "fn observe(&self) -> u64 { self.generation.load(Ordering::Acquire) }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn acqrel_rmw_pairs_with_itself_and_cas_failure_ordering_acquires() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "fn flip(&self) {\n    self.word.compare_exchange(a, b, Ordering::AcqRel, \
             Ordering::Acquire);\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn orphan_acquire_load_is_reported() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "fn observe(&self) -> u64 { self.epoch.load(Ordering::Acquire) }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no Release store"));
    }

    #[test]
    fn relaxed_traffic_and_waived_sites_stay_silent() {
        let findings = run_on(&[(
            "crates/a/src/lib.rs",
            "fn stats(&self) {\n    self.hits.fetch_add(1, Ordering::Relaxed);\n    \
             // lint: allow(atomic-pair): paired by the vendored executor, not us\n    \
             self.flag.store(true, Ordering::Release);\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
