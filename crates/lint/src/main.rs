//! `dla-lint`: scans the workspace and reports rule violations; exits
//! non-zero when any are found (deny-by-default, CI-gated).

use std::process::ExitCode;

fn main() -> ExitCode {
    dla_lint::run_cli(std::env::args().skip(1))
}
