//! A lightweight item/brace-tree parser over the [`lexer`](crate::lexer)
//! token stream.
//!
//! This is not a Rust parser — it is the smallest recognizer that recovers
//! what the analyses need, resilient to anything it does not understand:
//!
//! * `fn` items with their impl-block context (`Type::name`), body token
//!   range, and source-line span;
//! * call expressions (`path::to::f(…)`), method calls (`.f(…)`) and macro
//!   invocations (`f!(…)`) inside bodies;
//! * indexing expressions (`expr[…]`, including range slicing);
//! * atomic operations with their literal `Ordering::*` arguments, keyed by
//!   the receiving field (`self.generation.store(g, Ordering::Release)` →
//!   field `generation`);
//! * guard-scoped `lock()`/`read()`/`write()` acquisitions: a `let`-bound
//!   guard lives to the end of its block, a temporary guard to the end of
//!   its statement;
//! * `#[cfg(test)]`/`#[test]` line ranges (rule exemptions), `// lint:
//!   hot-path begin/end` regions, `// lint: panic-free` entry markers and
//!   function-level waivers.
//!
//! Everything line-oriented (waiver walk-ups, region markers) runs on the
//! token-derived comment classification, so string literals can no longer
//! impersonate comments or code.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::ops::Range;

/// Atomic RMW/store/load method names whose literal `Ordering::*` arguments
/// the parser records.
const ATOMIC_OPS: [&str; 14] = [
    "store",
    "load",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "match", "for", "loop", "return", "as", "in", "move", "else",
];

/// A call expression or method call inside a function body.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Callee name (the last path segment, or the method name).
    pub name: String,
    /// For `Qual::name(…)` calls, the segment before the final `::`.
    pub qualifier: Option<String>,
    /// Whether this was a `.name(…)` method call.
    pub method: bool,
    /// 1-indexed source line.
    pub line: u32,
    /// Position in the file's code-token sequence.
    pub cidx: usize,
}

/// An atomic operation with at least one literal `Ordering::*` argument.
#[derive(Debug, Clone)]
pub struct AtomicEvent {
    /// The receiving field (last path component before the method).
    pub field: String,
    /// The atomic method (`store`, `load`, `fetch_add`, …).
    pub op: String,
    /// The literal ordering variants, in argument order (a CAS carries two).
    pub orderings: Vec<String>,
    /// 1-indexed source line.
    pub line: u32,
}

/// A guard-scoped lock acquisition (`.lock()`, `.read()`, `.write()`).
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// The receiving field (last path component before the method).
    pub field: String,
    /// Which acquisition method was called.
    pub method: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Position in the file's code-token sequence.
    pub cidx: usize,
    /// Code-token position where the guard dies: the closing brace of the
    /// enclosing block for `let`-bound guards, the end of the statement for
    /// temporaries.
    pub scope_end: usize,
    /// Whether the guard was bound with `let` (block-scoped).
    pub let_bound: bool,
}

/// One extracted body event, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call or method call.
    Call(CallEvent),
    /// A macro invocation (`name!`).
    Macro {
        /// Macro name without the `!`.
        name: String,
        /// 1-indexed source line.
        line: u32,
    },
    /// An indexing (or slicing) expression.
    Index {
        /// 1-indexed source line.
        line: u32,
    },
    /// An atomic operation with literal orderings.
    Atomic(AtomicEvent),
    /// A lock acquisition.
    Lock(LockEvent),
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Display name with impl context (`Type::name`, or just `name`).
    pub qual: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// 1-indexed line of the body's closing brace.
    pub end_line: u32,
    /// Code-token range of the body (between the braces, exclusive).
    pub body: Range<usize>,
    /// Whether the item is test-gated (`#[cfg(test)]`, `#[test]`, or a
    /// test-gated enclosing module).
    pub in_test: bool,
    /// Whether the parameter list starts with a `self` receiver — i.e. the
    /// item can be the target of a `.name(…)` method call.
    pub has_self: bool,
    /// Function-level `// lint: allow(panic-free): …` waiver.
    pub trusted_panic_free: bool,
    /// Function-level `// lint: allow(hot-path): …` waiver.
    pub trusted_alloc: bool,
    /// `// lint: panic-free` entry-point marker.
    pub entry_panic_free: bool,
    /// Extracted body events, in source order.
    pub events: Vec<Event>,
}

/// A `// lint: hot-path begin/end` region, by 1-indexed line.
#[derive(Debug, Clone, Copy)]
pub struct HotRegion {
    /// Line of the `begin` marker.
    pub begin: u32,
    /// Line of the `end` marker.
    pub end: u32,
}

/// An unbalanced region marker, reported by the hot-path rule.
#[derive(Debug, Clone)]
pub struct MarkerIssue {
    /// 1-indexed line of the offending marker.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// A fully parsed source file: token stream plus everything the rules and
/// analyses consume.
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw source lines (for waiver walk-ups and context checks).
    pub lines: Vec<String>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices of non-comment tokens, in order (the "code" sequence).
    pub code: Vec<usize>,
    /// Per-line: the line is comment-only (or interior to a block comment).
    pub comment_only: Vec<bool>,
    /// Recovered functions.
    pub functions: Vec<FnDef>,
    /// Balanced hot-path regions.
    pub hot_regions: Vec<HotRegion>,
    /// Unbalanced hot-path markers.
    pub marker_issues: Vec<MarkerIssue>,
    /// 1-indexed line ranges gated by `#[cfg(test)]`/`#[test]`.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// The code token at code-sequence position `ci`.
    pub fn ct(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether a 1-indexed line falls inside a test-gated range.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Whether a 1-indexed line falls inside a hot-path region.
    pub fn line_in_hot_region(&self, line: u32) -> bool {
        self.hot_regions
            .iter()
            .any(|r| line > r.begin && line < r.end)
    }

    /// Whether the statement at 0-indexed line `i` carries `marker` — on the
    /// line itself, or in the contiguous run of comment lines and statement
    /// continuations directly above it (same walk-up as the original
    /// line-based linter, but with token-accurate comment classification).
    pub fn justified(&self, i: usize, marker: &str) -> bool {
        if self.lines[i].contains(marker) {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let line = &self.lines[j];
            if line.trim().is_empty() {
                return false;
            }
            if line.contains(marker) {
                return true;
            }
            if self.comment_only[j] {
                continue;
            }
            // A preceding code line ending a statement (or opening a block)
            // ends the search; anything else is a continuation of the same
            // multi-line expression and the walk continues past it.
            let trimmed = strip_line_comment(line).trim_end();
            if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
                return false;
            }
        }
        false
    }

    /// Parses `content` into a [`SourceFile`].
    pub fn parse(rel: &str, content: &str) -> SourceFile {
        let tokens = lex(content);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<String> = content.lines().map(str::to_string).collect();

        // Per-line classification from tokens: a line is comment-only when
        // tokens touch it but none of them is code.  Multi-line tokens
        // (block comments, raw strings) claim their interior lines.
        let mut has_code = vec![false; lines.len()];
        let mut has_comment = vec![false; lines.len()];
        for t in &tokens {
            let start = t.line as usize - 1;
            let span = t.text.matches('\n').count();
            for l in start..=(start + span).min(lines.len().saturating_sub(1)) {
                if t.kind.is_comment() {
                    has_comment[l] = true;
                } else {
                    has_code[l] = true;
                }
            }
        }
        let comment_only: Vec<bool> = (0..lines.len())
            .map(|l| has_comment[l] && !has_code[l])
            .collect();

        // Hot-path regions and entry markers live in plain `//` comments.
        let mut hot_regions = Vec::new();
        let mut marker_issues = Vec::new();
        let mut entry_lines = Vec::new();
        let mut open: Option<u32> = None;
        for t in &tokens {
            let TokenKind::LineComment { doc: false } = t.kind else {
                continue;
            };
            let body = t.text.trim_start_matches('/').trim();
            if body.starts_with("lint: hot-path begin") {
                if let Some(b) = open {
                    marker_issues.push(MarkerIssue {
                        line: t.line,
                        message: format!("nested hot-path begin (region open since line {b})"),
                    });
                }
                open = Some(t.line);
            } else if body.starts_with("lint: hot-path end") {
                match open.take() {
                    Some(begin) => hot_regions.push(HotRegion { begin, end: t.line }),
                    None => marker_issues.push(MarkerIssue {
                        line: t.line,
                        message: "hot-path end without a matching begin".to_string(),
                    }),
                }
            } else if body == "lint: panic-free" {
                entry_lines.push(t.line);
            }
        }
        if let Some(begin) = open {
            marker_issues.push(MarkerIssue {
                line: begin,
                message: "hot-path begin without a matching end".to_string(),
            });
        }

        let close_of = match_braces(&tokens, &code);
        let mut file = SourceFile {
            rel: rel.to_string(),
            lines,
            tokens,
            code,
            comment_only,
            functions: Vec::new(),
            hot_regions,
            marker_issues,
            test_ranges: Vec::new(),
        };
        let mut parser = ItemParser {
            file: &mut file,
            close_of: &close_of,
            entry_lines: &entry_lines,
        };
        parser.items(0, usize::MAX, None, false);
        file
    }
}

/// Strips a trailing `// …` comment, respecting string literals well enough
/// for continuation checks (a `//` inside a string stays).
pub fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// For every `{` in the code sequence, the code position of its matching
/// `}` (or the end of file when unbalanced).
fn match_braces(tokens: &[Token], code: &[usize]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        match tokens[ti].kind {
            TokenKind::Punct('{') => stack.push(ci),
            TokenKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    map.insert(open, ci);
                }
            }
            _ => {}
        }
    }
    for open in stack {
        map.insert(open, code.len().saturating_sub(1));
    }
    map
}

struct ItemParser<'a> {
    file: &'a mut SourceFile,
    close_of: &'a HashMap<usize, usize>,
    entry_lines: &'a [u32],
}

impl ItemParser<'_> {
    fn tok(&self, ci: usize) -> Option<&Token> {
        self.file.code.get(ci).map(|&ti| &self.file.tokens[ti])
    }

    fn text(&self, ci: usize) -> &str {
        self.file
            .code
            .get(ci)
            .map(|&ti| self.file.tokens[ti].text.as_str())
            .unwrap_or("")
    }

    fn is_punct(&self, ci: usize, ch: char) -> bool {
        self.tok(ci).is_some_and(|t| t.is_punct(ch))
    }

    fn line(&self, ci: usize) -> u32 {
        self.tok(ci).map_or(0, |t| t.line)
    }

    /// Parses items in `[from, to)`; `to == usize::MAX` means end of file.
    /// Returns the position after the region.
    fn items(&mut self, from: usize, to: usize, impl_type: Option<&str>, in_test: bool) -> usize {
        let mut ci = from;
        let mut pending_test = false;
        while ci < to.min(self.file.code.len()) {
            let Some(t) = self.tok(ci) else { break };
            let kind = t.kind;
            let word = if kind == TokenKind::Ident {
                t.text.clone()
            } else {
                String::new()
            };
            match kind {
                TokenKind::Punct('#') => {
                    // `#[…]` or `#![…]`: skip balanced brackets, noting
                    // cfg(test)/test attributes for the next item.
                    let mut k = ci + 1;
                    if self.is_punct(k, '!') {
                        k += 1;
                    }
                    if self.is_punct(k, '[') {
                        let mut depth = 0i32;
                        let mut saw_test = false;
                        while k < self.file.code.len() {
                            match self.tok(k).map(|t| &t.kind) {
                                Some(TokenKind::Punct('[')) => depth += 1,
                                Some(TokenKind::Punct(']')) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                Some(TokenKind::Ident) if self.text(k) == "test" => {
                                    saw_test = true;
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        if saw_test {
                            pending_test = true;
                        }
                        ci = k;
                    } else {
                        ci += 1;
                    }
                }
                TokenKind::Ident if word == "fn" => {
                    ci = self.function(ci, impl_type, in_test || pending_test);
                    pending_test = false;
                }
                TokenKind::Ident if word == "impl" => {
                    ci = self.impl_block(ci, in_test || pending_test);
                    pending_test = false;
                }
                TokenKind::Ident if word == "trait" => {
                    // `trait Name … { … }`: default method bodies inside are
                    // real code; parse the body as items under the trait's
                    // name.
                    let trait_name = self.text(ci + 1).to_string();
                    let mut k = ci + 1;
                    while k < self.file.code.len()
                        && !self.is_punct(k, '{')
                        && !self.is_punct(k, ';')
                    {
                        k += 1;
                    }
                    if self.is_punct(k, '{') {
                        let close = *self.close_of.get(&k).unwrap_or(&self.file.code.len());
                        if pending_test && !in_test {
                            let span = (self.line(ci), self.line(close));
                            self.file.test_ranges.push(span);
                        }
                        self.items(k + 1, close, Some(&trait_name), in_test || pending_test);
                        ci = close + 1;
                    } else {
                        ci = k + 1;
                    }
                    pending_test = false;
                }
                TokenKind::Ident if word == "mod" => {
                    // `mod name { … }` or `mod name;`
                    let mut k = ci + 1;
                    while k < self.file.code.len()
                        && !self.is_punct(k, '{')
                        && !self.is_punct(k, ';')
                    {
                        k += 1;
                    }
                    if self.is_punct(k, '{') {
                        let close = *self.close_of.get(&k).unwrap_or(&self.file.code.len());
                        let gated = in_test || pending_test;
                        if pending_test && !in_test {
                            let span = (self.line(ci), self.line(close));
                            self.file.test_ranges.push(span);
                        }
                        self.items(k + 1, close, None, gated);
                        ci = close + 1;
                    } else {
                        ci = k + 1;
                    }
                    pending_test = false;
                }
                TokenKind::Punct('{') => {
                    // An unrecognized braced item (struct/enum/trait body,
                    // const initializer, …): record its test gate, skip it.
                    let close = *self.close_of.get(&ci).unwrap_or(&self.file.code.len());
                    if pending_test && !in_test {
                        let span = (self.line(ci), self.line(close));
                        self.file.test_ranges.push(span);
                    }
                    ci = close + 1;
                    pending_test = false;
                }
                TokenKind::Punct(';') => {
                    ci += 1;
                    pending_test = false;
                }
                TokenKind::Punct('}') => {
                    // Close of an enclosing scope we were asked to parse past
                    // (unbalanced input): stop here.
                    break;
                }
                _ => ci += 1,
            }
        }
        ci
    }

    /// Parses an `impl … { … }` block starting at the `impl` keyword.
    fn impl_block(&mut self, start: usize, in_test: bool) -> usize {
        let mut k = start + 1;
        let mut angle = 0i32;
        let mut candidate: Option<String> = None;
        while k < self.file.code.len() && !self.is_punct(k, '{') && !self.is_punct(k, ';') {
            match self.tok(k).map(|t| (&t.kind, t.text.as_str())) {
                Some((TokenKind::Punct('<'), _)) => angle += 1,
                Some((TokenKind::Punct('>'), _)) => angle -= 1,
                Some((TokenKind::Ident, "for")) if angle == 0 => candidate = None,
                Some((TokenKind::Ident, "where")) if angle == 0 => break,
                Some((TokenKind::Ident, text)) if angle == 0 => {
                    candidate = Some(text.to_string());
                }
                _ => {}
            }
            k += 1;
        }
        while k < self.file.code.len() && !self.is_punct(k, '{') && !self.is_punct(k, ';') {
            k += 1;
        }
        if self.is_punct(k, '{') {
            let close = *self.close_of.get(&k).unwrap_or(&self.file.code.len());
            if in_test {
                let span = (self.line(start), self.line(close));
                self.file.test_ranges.push(span);
            }
            self.items(k + 1, close, candidate.as_deref(), in_test);
            close + 1
        } else {
            k + 1
        }
    }

    /// Parses a `fn` item starting at the `fn` keyword; extracts the body's
    /// events and registers the [`FnDef`].  Returns the position after it.
    fn function(&mut self, start: usize, impl_type: Option<&str>, in_test: bool) -> usize {
        let name = match self.tok(start + 1) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => return start + 1,
        };
        let sig_line = self.line(start);
        // Signature runs to the body `{` (or `;` for bodiless trait items)
        // at bracket depth 0.  `->` return types and generic bounds never
        // contain a top-level `{`.
        let mut k = start + 2;
        let mut depth = 0i32;
        while k < self.file.code.len() {
            match self.tok(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                Some(TokenKind::Punct('{')) if depth == 0 => break,
                Some(TokenKind::Punct(';')) if depth == 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        if k >= self.file.code.len() {
            return k;
        }
        let close = *self.close_of.get(&k).unwrap_or(&self.file.code.len());
        let body = (k + 1)..close;
        let end_line = self.line(close.min(self.file.code.len().saturating_sub(1)));

        let gated_test = in_test || self.file.line_in_test(sig_line);
        if in_test && !self.file.line_in_test(sig_line) {
            self.file.test_ranges.push((sig_line, end_line));
        }

        // Does the parameter list start with a `self` receiver?  Skip a
        // leading generics section (its bounds may nest parens, e.g.
        // `Fn(u32)`), then look for `self` before the first top-level comma.
        let mut has_self = false;
        {
            let mut j = start + 2;
            if matches!(self.tok(j).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
                let mut ang = 0i32;
                while j < k {
                    match self.tok(j).map(|t| &t.kind) {
                        Some(TokenKind::Punct('<')) => ang += 1,
                        Some(TokenKind::Punct('>')) => {
                            ang -= 1;
                            if ang == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let mut d = 0i32;
            while j < k {
                match self.tok(j) {
                    Some(t) if t.kind == TokenKind::Punct('(') => d += 1,
                    Some(t) if t.kind == TokenKind::Punct(')') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    Some(t) if t.kind == TokenKind::Punct(',') && d == 1 => break,
                    Some(t) if t.kind == TokenKind::Ident && d == 1 && t.text == "self" => {
                        has_self = true;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }

        let (trusted_panic_free, trusted_alloc, entry_marked) = self.fn_markers(sig_line);
        let qual = match impl_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let events = self.body_events(body.clone(), close);
        let def = FnDef {
            name,
            qual,
            line: sig_line,
            end_line,
            body,
            in_test: gated_test,
            has_self,
            trusted_panic_free,
            trusted_alloc,
            entry_panic_free: entry_marked,
            events,
        };
        self.file.functions.push(def);
        close + 1
    }

    /// Function-level markers from the contiguous comment/attribute block
    /// directly above the signature (and the signature line itself).
    fn fn_markers(&self, sig_line: u32) -> (bool, bool, bool) {
        let mut panic_free = false;
        let mut alloc = false;
        let mut entry = false;
        let mut check = |line_1idx: u32| {
            let Some(text) = self.file.lines.get(line_1idx as usize - 1) else {
                return;
            };
            if text.contains("lint: allow(panic-free):") {
                panic_free = true;
            }
            if text.contains("lint: allow(hot-path):") {
                alloc = true;
            }
            if self.entry_lines.contains(&line_1idx) {
                entry = true;
            }
        };
        check(sig_line);
        let mut j = sig_line as usize; // 1-indexed; walk up from sig_line-1
        while j > 1 {
            j -= 1;
            let idx0 = j - 1;
            let line = &self.file.lines[idx0];
            if self.file.comment_only[idx0] {
                check(j as u32);
                continue;
            }
            let trimmed = line.trim_start();
            if trimmed.starts_with('#') {
                // An attribute line of the same item.
                continue;
            }
            break;
        }
        (panic_free, alloc, entry)
    }

    /// Extracts body events between code positions `[from, to)`.  Nested
    /// `fn` items are parsed recursively as their own defs (their events do
    /// not leak into the enclosing body).
    fn body_events(&mut self, range: Range<usize>, body_close: usize) -> Vec<Event> {
        let mut events = Vec::new();
        let mut brace_stack: Vec<usize> = Vec::new();
        let mut stmt_start = range.start;
        let mut ci = range.start;
        while ci < range.end {
            let Some(t) = self.tok(ci) else { break };
            let kind = t.kind;
            let line = t.line;
            let word = if kind == TokenKind::Ident {
                t.text.clone()
            } else {
                String::new()
            };
            match kind {
                TokenKind::Ident if word == "fn" => {
                    // A nested item; its body is someone else's events.
                    let after = self.function(ci, None, false);
                    ci = after;
                    stmt_start = ci;
                    continue;
                }
                TokenKind::Punct('{') => {
                    brace_stack.push(ci);
                    stmt_start = ci + 1;
                }
                TokenKind::Punct('}') => {
                    brace_stack.pop();
                    stmt_start = ci + 1;
                }
                TokenKind::Punct(';') => {
                    stmt_start = ci + 1;
                }
                TokenKind::Punct('[') if self.is_index_site(ci) => {
                    events.push(Event::Index { line });
                }
                TokenKind::Ident => {
                    if self.is_punct(ci + 1, '!') && self.macro_delim(ci + 2) {
                        events.push(Event::Macro { name: word, line });
                    } else if self.is_punct(ci + 1, '(') && !CALL_KEYWORDS.contains(&word.as_str())
                    {
                        let method = ci > 0 && self.is_punct(ci - 1, '.');
                        let qualifier = self.path_qualifier(ci);
                        if method {
                            if let Some(ev) = self.atomic_event(ci, &word, line) {
                                events.push(Event::Atomic(ev));
                            }
                            if let Some(ev) = self.lock_event(
                                ci,
                                &word,
                                line,
                                &brace_stack,
                                stmt_start,
                                range.end,
                                body_close,
                            ) {
                                events.push(Event::Lock(ev));
                            }
                        }
                        events.push(Event::Call(CallEvent {
                            name: word,
                            qualifier,
                            method,
                            line,
                            cidx: ci,
                        }));
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        events
    }

    /// Whether the `[` at `ci` is an indexing/slicing expression: it follows
    /// a value (identifier, call result, or another index), not a type,
    /// pattern, attribute or macro-bang position.
    fn is_index_site(&self, ci: usize) -> bool {
        if ci == 0 {
            return false;
        }
        match self.tok(ci - 1).map(|t| (&t.kind, t.text.as_str())) {
            Some((TokenKind::Ident, text)) => !matches!(
                text,
                "let" | "in" | "mut" | "ref" | "box" | "return" | "dyn" | "impl"
            ),
            Some((TokenKind::Punct(')' | ']'), _)) => true,
            _ => false,
        }
    }

    /// Whether the token at `ci` opens a macro body (`(`, `[` or `{`); a
    /// bare `!` is negation or `!=`.
    fn macro_delim(&self, ci: usize) -> bool {
        matches!(
            self.tok(ci).map(|t| &t.kind),
            Some(TokenKind::Punct('(' | '[' | '{'))
        )
    }

    /// For `Qual::name(`-shaped calls, the path segment before the last
    /// `::`.
    fn path_qualifier(&self, ci: usize) -> Option<String> {
        if ci >= 3
            && self.is_punct(ci - 1, ':')
            && self.is_punct(ci - 2, ':')
            && self.tok(ci - 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            Some(self.text(ci - 3).to_string())
        } else {
            None
        }
    }

    /// The last path component of a method call's receiver: walks back over
    /// one `[…]` or `(…)` group and takes the identifier (or tuple-field
    /// number) before it.
    fn receiver_field(&self, method_ci: usize) -> String {
        // method_ci is the method name; method_ci - 1 is the `.`.
        let mut j = method_ci.saturating_sub(2);
        loop {
            match self.tok(j).map(|t| (&t.kind, t.text.as_str())) {
                Some((TokenKind::Punct(']'), _)) | Some((TokenKind::Punct(')'), _)) => {
                    let open = if self.is_punct(j, ']') { '[' } else { '(' };
                    let close = if open == '[' { ']' } else { ')' };
                    let mut depth = 0i32;
                    while j > 0 {
                        if self.is_punct(j, close) {
                            depth += 1;
                        } else if self.is_punct(j, open) {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j -= 1;
                    }
                    if j == 0 {
                        return "<expr>".to_string();
                    }
                    j -= 1;
                }
                Some((TokenKind::Ident, text)) => return text.to_string(),
                Some((TokenKind::NumLit, text)) => return text.to_string(),
                _ => return "<expr>".to_string(),
            }
        }
    }

    /// If the method call at `ci` is an atomic op with literal `Ordering::*`
    /// arguments, the corresponding event.
    fn atomic_event(&self, ci: usize, name: &str, line: u32) -> Option<AtomicEvent> {
        if !ATOMIC_OPS.contains(&name) {
            return None;
        }
        // Scan the argument list for `…Ordering :: Variant`.
        let mut orderings = Vec::new();
        let mut depth = 0i32;
        let mut k = ci + 1;
        while k < self.file.code.len() {
            match self.tok(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(')) => depth += 1,
                Some(TokenKind::Punct(')')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Some(TokenKind::Ident)
                    if self.text(k).ends_with("Ordering")
                        && self.is_punct(k + 1, ':')
                        && self.is_punct(k + 2, ':') =>
                {
                    let variant = self.text(k + 3);
                    if matches!(
                        variant,
                        "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                    ) {
                        orderings.push(variant.to_string());
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if orderings.is_empty() {
            return None;
        }
        Some(AtomicEvent {
            field: self.receiver_field(ci),
            op: name.to_string(),
            orderings,
            line,
        })
    }

    /// If the method call at `ci` is a zero-argument `lock()`/`read()`/
    /// `write()`, the lock event with its guard scope.
    #[allow(clippy::too_many_arguments)]
    fn lock_event(
        &self,
        ci: usize,
        name: &str,
        line: u32,
        brace_stack: &[usize],
        stmt_start: usize,
        body_end: usize,
        body_close: usize,
    ) -> Option<LockEvent> {
        if !matches!(name, "lock" | "read" | "write") {
            return None;
        }
        if !self.is_punct(ci + 1, '(') || !self.is_punct(ci + 2, ')') {
            return None;
        }
        // A `let`-bound guard is block-scoped.  Temporaries in `if let` /
        // `while let` / `match` / `for` heads also outlive their statement
        // (Rust keeps condition temporaries alive for the whole construct),
        // so they get block scope too — a safe over-approximation for lock
        // ordering.
        let head = self.text(stmt_start);
        let let_bound =
            head == "let" || matches!(head, "if" | "while" | "match" | "for") || head == "else";
        let scope_end = if let_bound {
            match brace_stack.last() {
                Some(open) => *self.close_of.get(open).unwrap_or(&body_close),
                None => body_close,
            }
        } else {
            // Temporary guard: dies at the end of the statement.
            let mut depth = 0i32;
            let mut k = ci + 1;
            let mut end = body_end;
            while k < body_end {
                match self.tok(k).map(|t| &t.kind) {
                    Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                    Some(TokenKind::Punct(')' | ']' | '}')) => {
                        if depth == 0 {
                            end = k;
                            break;
                        }
                        depth -= 1;
                    }
                    Some(TokenKind::Punct(';')) if depth == 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            end
        };
        Some(LockEvent {
            field: self.receiver_field(ci),
            method: name.to_string(),
            line,
            cidx: ci,
            scope_end,
            let_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/a.rs", src)
    }

    fn fn_named<'a>(f: &'a SourceFile, name: &str) -> &'a FnDef {
        f.functions
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn recovers_fns_with_impl_context() {
        let f = parse(
            "impl Foo { pub fn bar(&self) -> u32 { 1 } }\n\
             impl Display for Baz { fn fmt(&self) {} }\n\
             fn free() {}\n",
        );
        assert_eq!(fn_named(&f, "bar").qual, "Foo::bar");
        assert_eq!(fn_named(&f, "fmt").qual, "Baz::fmt");
        assert_eq!(fn_named(&f, "free").qual, "free");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type_not_the_params() {
        let f = parse("impl<T: Clone> Wrapper<T> { fn get(&self) {} }");
        assert_eq!(fn_named(&f, "get").qual, "Wrapper::get");
    }

    #[test]
    fn calls_methods_and_macros_are_extracted() {
        let f = parse(
            "fn f() {\n    helper(1);\n    x.method(2);\n    Vec::with_capacity(3);\n    \
             panic!(\"boom\");\n    let ok = a != b;\n}\n",
        );
        let def = fn_named(&f, "f");
        let calls: Vec<(&str, bool)> = def
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.name.as_str(), c.method)),
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            [
                ("helper", false),
                ("method", true),
                ("with_capacity", false)
            ]
        );
        let macros: Vec<&str> = def
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Macro { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(macros, ["panic"]);
    }

    #[test]
    fn qualifier_is_recovered_for_path_calls() {
        let f = parse("fn f() { Vec::new(); dla::deep::path::build(); }");
        let quals: Vec<Option<String>> = fn_named(&f, "f")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c.qualifier.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(quals, [Some("Vec".to_string()), Some("path".to_string())]);
    }

    #[test]
    fn indexing_is_distinguished_from_types_patterns_and_macros() {
        let f = parse(
            "fn f(xs: &[f64], m: [f64; 3]) -> f64 {\n    let a = [0.0; 4];\n    \
             let [p, q] = [1, 2];\n    let v = vec![1];\n    #[allow(dead_code)]\n    \
             let s = &xs[1..3];\n    xs[0] + m[1] + a[2] + s[0]\n}\n",
        );
        let count = fn_named(&f, "f")
            .events
            .iter()
            .filter(|e| matches!(e, Event::Index { .. }))
            .count();
        assert_eq!(count, 5, "xs[1..3], xs[0], m[1], a[2], s[0]");
    }

    #[test]
    fn atomic_events_carry_field_op_and_orderings() {
        let f = parse(
            "fn f(&self) {\n    self.generation.store(1, Ordering::Release);\n    \
             self.word.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n    \
             self.shared.swap(repo);\n    c.load(order);\n}\n",
        );
        let atomics: Vec<(String, String, Vec<String>)> = fn_named(&f, "f")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Atomic(a) => Some((a.field.clone(), a.op.clone(), a.orderings.clone())),
                _ => None,
            })
            .collect();
        // Non-atomic swap (no literal ordering) and variable orderings are
        // not atomic events.
        assert_eq!(atomics.len(), 2);
        assert_eq!(atomics[0].0, "generation");
        assert_eq!(atomics[0].2, ["Release"]);
        assert_eq!(atomics[1].0, "word");
        assert_eq!(atomics[1].2, ["AcqRel", "Acquire"]);
    }

    #[test]
    fn lock_guard_scopes_are_block_or_statement() {
        let f = parse(
            "fn f(&self) {\n    let g = self.inner.write();\n    self.other.read().len();\n    \
             drop(g);\n}\n",
        );
        let locks: Vec<(String, bool)> = fn_named(&f, "f")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Lock(l) => Some((l.field.clone(), l.let_bound)),
                _ => None,
            })
            .collect();
        assert_eq!(
            locks,
            [("inner".to_string(), true), ("other".to_string(), false)]
        );
        // The let-bound guard's scope extends past the temporary's.
        let lock_events: Vec<&LockEvent> = fn_named(&f, "f")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Lock(l) => Some(l),
                _ => None,
            })
            .collect();
        assert!(lock_events[0].scope_end > lock_events[1].scope_end);
    }

    #[test]
    fn receiver_fields_see_through_indexing_and_tuple_fields() {
        let f = parse(
            "fn f(&self) {\n    self.slots[i].lock();\n    self.0.read();\n    \
             self.counters.queries.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let fields: Vec<String> = fn_named(&f, "f")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Lock(l) => Some(l.field.clone()),
                Event::Atomic(a) => Some(a.field.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(fields, ["slots", "0", "queries"]);
    }

    #[test]
    fn cfg_test_ranges_cover_gated_mods_and_fns() {
        let f = parse(
            "fn lib() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n\
             #[cfg(test)]\nfn helper() {}\n",
        );
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(3));
        assert!(f.line_in_test(5));
        assert!(f.line_in_test(8));
        assert!(fn_named(&f, "t").in_test);
        assert!(fn_named(&f, "helper").in_test);
        assert!(!fn_named(&f, "lib").in_test);
    }

    #[test]
    fn hot_regions_and_marker_issues_ignore_strings_and_docs() {
        let f = parse(
            "//! doc mentioning lint: hot-path begin is inert\n\
             fn f() {\n    // lint: hot-path begin\n    let x = 1;\n    // lint: hot-path end\n}\n\
             fn g() { let s = \"// lint: hot-path begin\"; }\n",
        );
        assert_eq!(f.hot_regions.len(), 1);
        assert_eq!((f.hot_regions[0].begin, f.hot_regions[0].end), (3, 5));
        assert!(f.marker_issues.is_empty());
    }

    #[test]
    fn unbalanced_markers_are_reported() {
        let f = parse("// lint: hot-path begin\nfn f() {}\n");
        assert_eq!(f.marker_issues.len(), 1);
        let f = parse("fn f() {}\n// lint: hot-path end\n");
        assert_eq!(f.marker_issues.len(), 1);
    }

    #[test]
    fn fn_level_markers_walk_the_comment_block() {
        let f = parse(
            "/// Docs.\n// lint: allow(panic-free): verified by proof sketch\n#[inline]\n\
             pub fn trusted() {}\n\n// lint: panic-free\npub fn entry() {}\n\npub fn plain() {}\n",
        );
        assert!(fn_named(&f, "trusted").trusted_panic_free);
        assert!(fn_named(&f, "entry").entry_panic_free);
        assert!(!fn_named(&f, "plain").trusted_panic_free);
        assert!(!fn_named(&f, "plain").entry_panic_free);
    }

    #[test]
    fn nested_fns_keep_their_events_separate() {
        let f = parse("fn outer() {\n    fn inner() { danger.unwrap(); }\n    safe();\n}\n");
        let outer_calls: Vec<&str> = fn_named(&f, "outer")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(outer_calls, ["safe"]);
        let inner_calls: Vec<&str> = fn_named(&f, "inner")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(inner_calls, ["unwrap"]);
    }

    #[test]
    fn justified_walks_over_comments_and_continuations() {
        let f = parse(
            "fn bump(c: &AtomicU64) {\n    // ordering: Relaxed - standalone stat\n    \
             c.store(\n        c.load(Ordering::Relaxed) + 1,\n        Ordering::Relaxed,\n    );\n}\n",
        );
        assert!(f.justified(3, "// ordering:"));
        assert!(f.justified(4, "// ordering:"));
        let g = parse("fn f() {\n    let x = 1;\n    c.load(Ordering::Relaxed);\n}\n");
        assert!(!g.justified(2, "// ordering:"));
    }
}
