//! A std-only Rust lexer: the token stream every `dla-lint` rule runs on.
//!
//! The point of lexing (rather than line-regex scanning) is that string
//! literals, comments and doc attributes stop masquerading as code: a
//! `format!` inside a string literal is a `StrLit` token, not a macro
//! invocation, and a `// lint: hot-path begin` inside a raw-string fixture
//! does not open a region.  The lexer handles the parts of the Rust grammar
//! where naive scanners go wrong:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth) and byte strings;
//! * nested block comments (`/* /* … */ */`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escapes;
//! * doc comments (`///`, `//!`, `/** */`, `/*! */`) vs. plain comments;
//! * raw identifiers (`r#type`).
//!
//! Tokens keep their 1-indexed source line so findings point at real code.
//! Comments are kept in the stream (the waiver and region-marker syntax
//! lives in them); downstream passes filter on [`TokenKind::is_comment`].

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (also raw identifiers, without the `r#`).
    Ident,
    /// A lifetime such as `'a` (without the quote in [`Token::text`]).
    Lifetime,
    /// A character or byte literal, quotes included.
    CharLit,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// A numeric literal (suffix included).
    NumLit,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// A `//` comment; `doc` marks `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A `/* */` comment (nesting folded in); `doc` marks `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
}

impl TokenKind {
    /// Whether the token is any kind of comment.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// One lexed token: kind, verbatim text, and 1-indexed starting line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The verbatim source text (comment markers and string quotes kept).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is this exact punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// Lexes `source` into tokens.  The lexer never fails: unterminated
/// literals or comments are closed at end-of-file (a lint must degrade
/// gracefully on torn input rather than refuse to scan the rest of the
/// tree).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    // lint: allow(panic-free): start and pos are byte offsets the scanner only
    // advances on character boundaries
    fn push(&mut self, kind: TokenKind, start: usize, line: u32, source: &str) {
        self.tokens.push(Token {
            kind,
            text: source[start..self.pos].to_string(),
            line,
        });
    }

    fn run(mut self, source: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => {
                    let doc =
                        (self.peek(2) == b'/' && self.peek(3) != b'/') || (self.peek(2) == b'!');
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment { doc }, start, line, source);
                }
                b'/' if self.peek(1) == b'*' => {
                    let doc =
                        (self.peek(2) == b'*' && self.peek(3) != b'*' && self.peek(3) != b'/')
                            || (self.peek(2) == b'!');
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump();
                            self.bump();
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                    }
                    self.push(TokenKind::BlockComment { doc }, start, line, source);
                }
                b'r' if self.peek(1) == b'"'
                    || (self.peek(1) == b'#' && self.raw_string_ahead(1)) =>
                {
                    self.bump(); // r
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line, source);
                }
                b'r' if self.peek(1) == b'#' && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.bump();
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, source);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.quoted_string();
                    self.push(TokenKind::StrLit, start, line, source);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.char_literal();
                    self.push(TokenKind::CharLit, start, line, source);
                }
                b'b' if self.peek(1) == b'r'
                    && (self.peek(2) == b'"'
                        || (self.peek(2) == b'#' && self.raw_string_ahead(2))) =>
                {
                    self.bump();
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line, source);
                }
                b'"' => {
                    self.quoted_string();
                    self.push(TokenKind::StrLit, start, line, source);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.push(TokenKind::Lifetime, start, line, source);
                    } else {
                        self.char_literal();
                        self.push(TokenKind::CharLit, start, line, source);
                    }
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::NumLit, start, line, source);
                }
                _ if is_ident_start(b) => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, source);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(b as char), start, line, source);
                }
            }
        }
        self.tokens
    }

    /// At `r` + `offset` hashes-start: is this `r#…#"` (a raw string) rather
    /// than a raw identifier?  Looks past the run of `#`s for a `"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut k = offset;
        while self.peek(k) == b'#' {
            k += 1;
        }
        self.peek(k) == b'"'
    }

    /// Consumes `#*"…"#*` (cursor is on the first `#` or the `"`).
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            if self.pos >= self.src.len() {
                return;
            }
            if self.bump() == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == b'#' {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes a `"…"` literal with escapes (cursor on the opening quote).
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a `'…'` literal with escapes (cursor on the opening quote).
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal): after the
    /// quote, an identifier run *not* followed by a closing quote is a
    /// lifetime.
    fn lifetime_ahead(&self) -> bool {
        if !is_ident_start(self.peek(1)) {
            return false;
        }
        let mut k = 2;
        while is_ident_continue(self.peek(k)) {
            k += 1;
        }
        self.peek(k) != b'\''
    }

    /// Consumes a numeric literal: prefixes (`0x`), underscores, a decimal
    /// point followed by a digit, exponents with signs (`1e-9`), suffixes.
    fn number(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                let exponent = (b == b'e' || b == b'E')
                    && (self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit();
                self.bump();
                if exponent {
                    self.bump(); // the sign
                }
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code_like_text() {
        let toks = kinds(r#"let s = "x.unwrap() // lint: hot-path begin";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, _)| k.is_comment()));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_terminate_on_matching_hashes() {
        let src = r###"let s = r#"inner "quoted" Ordering::Relaxed"#; let x = 1;"###;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("Relaxed")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
        // Byte and plain-r forms too.
        assert!(kinds(r#"br"ab" b"cd" r"ef""#)
            .iter()
            .all(|(k, _)| *k == TokenKind::StrLit));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn nested_block_comments_fold_into_one_token() {
        let toks = kinds("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment { doc: false });
        assert!(toks[0].1.contains("inner"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn doc_comments_are_marked() {
        let toks = lex(
            "/// doc\n//! inner\n// plain\n//// not-doc\n/** block */\n/*! inner */\n/* plain */",
        );
        let docs: Vec<bool> = toks
            .iter()
            .map(|t| match t.kind {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => doc,
                _ => panic!("comment expected"),
            })
            .collect();
        assert_eq!(docs, [true, true, false, false, true, true, false]);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::CharLit)
                .count(),
            3
        );
    }

    #[test]
    fn numbers_swallow_suffixes_and_exponents() {
        let toks = kinds("1e-9 0xFF_u32 1.5f64 1..4 x.0");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1e-9", "0xFF_u32", "1.5f64", "1", "4", "0"]);
    }

    #[test]
    fn method_on_int_literal_keeps_the_dot_as_punct() {
        let toks = kinds("1.max(2)");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Punct('.')));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b token");
        assert_eq!(b.line, 3);
    }
}
