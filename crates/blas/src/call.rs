//! Routine-call descriptors.
//!
//! A [`Call`] captures everything the paper's tools need to know about one
//! invocation of a BLAS/LAPACK building block: the routine, its flag
//! arguments, its size arguments, its scalar arguments and the leading
//! dimensions of its operands.  Data pointers are deliberately absent — as the
//! paper argues (Section III-A), only the *sizes* and *storage locations* of
//! the operands matter for performance, and storage location is captured
//! separately as the memory-locality scenario.
//!
//! Calls are produced by the algorithm tracers in `dla-algos`, measured by the
//! Sampler, modelled by the Modeler and evaluated by the Predictor.

use std::fmt;

use crate::{Diag, Side, Trans, Uplo};

/// Identifies a modelled routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routine {
    /// General matrix-matrix multiply (`dgemm`).
    Gemm,
    /// Triangular solve with multiple right-hand sides (`dtrsm`).
    Trsm,
    /// Triangular matrix-matrix multiply (`dtrmm`).
    Trmm,
    /// Symmetric rank-k update (`dsyrk`).
    Syrk,
    /// Unblocked triangular inversion (`dtrtri` unblocked).
    TrtriUnb,
    /// Unblocked triangular Sylvester solve.
    SylvUnb,
}

impl Routine {
    /// All routines known to the stack.
    pub const ALL: [Routine; 6] = [
        Routine::Gemm,
        Routine::Trsm,
        Routine::Trmm,
        Routine::Syrk,
        Routine::TrtriUnb,
        Routine::SylvUnb,
    ];

    /// BLAS/LAPACK-style lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Routine::Gemm => "dgemm",
            Routine::Trsm => "dtrsm",
            Routine::Trmm => "dtrmm",
            Routine::Syrk => "dsyrk",
            Routine::TrtriUnb => "dtrtri_unb",
            Routine::SylvUnb => "dsylv_unb",
        }
    }

    /// Parses a routine from its name.
    pub fn from_name(name: &str) -> Option<Routine> {
        Routine::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Stable position of the routine in [`Routine::ALL`] (used by the
    /// compiled evaluation engine's pre-resolved routing tables).
    pub fn index(&self) -> usize {
        match self {
            Routine::Gemm => 0,
            Routine::Trsm => 1,
            Routine::Trmm => 2,
            Routine::Syrk => 3,
            Routine::TrtriUnb => 4,
            Routine::SylvUnb => 5,
        }
    }

    /// Number of flag arguments the routine takes.
    pub fn flag_count(&self) -> usize {
        match self {
            Routine::Gemm => 2,
            Routine::Trsm | Routine::Trmm => 4,
            Routine::Syrk => 2,
            Routine::TrtriUnb => 2,
            Routine::SylvUnb => 0,
        }
    }

    /// Number of integer size arguments (the model's integer parameters).
    pub fn size_count(&self) -> usize {
        match self {
            Routine::Gemm => 3,
            Routine::Trsm | Routine::Trmm => 2,
            Routine::Syrk => 2,
            Routine::TrtriUnb => 1,
            Routine::SylvUnb => 2,
        }
    }

    /// Names of the integer size arguments, in order.
    pub fn size_names(&self) -> &'static [&'static str] {
        match self {
            Routine::Gemm => &["m", "n", "k"],
            Routine::Trsm | Routine::Trmm => &["m", "n"],
            Routine::Syrk => &["n", "k"],
            Routine::TrtriUnb => &["n"],
            Routine::SylvUnb => &["m", "n"],
        }
    }
}

impl fmt::Display for Routine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One invocation of a modelled routine: flags, sizes, scalars and leading
/// dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum Call {
    /// `C <- alpha * op(A) * op(B) + beta * C`.
    Gemm {
        /// Transposition of `A`.
        transa: Trans,
        /// Transposition of `B`.
        transb: Trans,
        /// Rows of `op(A)` and `C`.
        m: usize,
        /// Columns of `op(B)` and `C`.
        n: usize,
        /// Common dimension.
        k: usize,
        /// Scaling of the product.
        alpha: f64,
        /// Scaling of `C` on input.
        beta: f64,
        /// Leading dimension of `A`.
        lda: usize,
        /// Leading dimension of `B`.
        ldb: usize,
        /// Leading dimension of `C`.
        ldc: usize,
    },
    /// `B <- alpha * op(A)^-1 B` or `B <- alpha * B * op(A)^-1`.
    Trsm {
        /// Side from which `A` is applied.
        side: Side,
        /// Referenced triangle of `A`.
        uplo: Uplo,
        /// Transposition of `A`.
        transa: Trans,
        /// Unit-diagonal flag.
        diag: Diag,
        /// Rows of `B`.
        m: usize,
        /// Columns of `B`.
        n: usize,
        /// Scaling applied to `B`.
        alpha: f64,
        /// Leading dimension of `A`.
        lda: usize,
        /// Leading dimension of `B`.
        ldb: usize,
    },
    /// `B <- alpha * op(A) * B` or `B <- alpha * B * op(A)`.
    Trmm {
        /// Side from which `A` is applied.
        side: Side,
        /// Referenced triangle of `A`.
        uplo: Uplo,
        /// Transposition of `A`.
        transa: Trans,
        /// Unit-diagonal flag.
        diag: Diag,
        /// Rows of `B`.
        m: usize,
        /// Columns of `B`.
        n: usize,
        /// Scaling applied to the product.
        alpha: f64,
        /// Leading dimension of `A`.
        lda: usize,
        /// Leading dimension of `B`.
        ldb: usize,
    },
    /// `C <- alpha * A * A^T + beta * C` (or `A^T * A`).
    Syrk {
        /// Referenced triangle of `C`.
        uplo: Uplo,
        /// Whether `A` or `A^T` forms the product.
        trans: Trans,
        /// Order of `C`.
        n: usize,
        /// Common dimension.
        k: usize,
        /// Scaling of the product.
        alpha: f64,
        /// Scaling of `C` on input.
        beta: f64,
        /// Leading dimension of `A`.
        lda: usize,
        /// Leading dimension of `C`.
        ldc: usize,
    },
    /// In-place unblocked triangular inversion.
    TrtriUnb {
        /// Referenced triangle of `A`.
        uplo: Uplo,
        /// Unit-diagonal flag.
        diag: Diag,
        /// Order of `A`.
        n: usize,
        /// Leading dimension of `A`.
        lda: usize,
    },
    /// Unblocked triangular Sylvester solve `L X + X U = C`.
    SylvUnb {
        /// Rows of `X` (order of `L`).
        m: usize,
        /// Columns of `X` (order of `U`).
        n: usize,
        /// Leading dimension of `L`.
        ldl: usize,
        /// Leading dimension of `U`.
        ldu: usize,
        /// Leading dimension of `X`.
        ldx: usize,
    },
}

impl Call {
    /// The largest number of flag arguments any routine takes.
    pub const MAX_FLAGS: usize = 4;

    /// The largest number of integer size arguments any routine takes.
    pub const MAX_SIZES: usize = 3;

    /// The routine this call invokes.
    pub fn routine(&self) -> Routine {
        match self {
            Call::Gemm { .. } => Routine::Gemm,
            Call::Trsm { .. } => Routine::Trsm,
            Call::Trmm { .. } => Routine::Trmm,
            Call::Syrk { .. } => Routine::Syrk,
            Call::TrtriUnb { .. } => Routine::TrtriUnb,
            Call::SylvUnb { .. } => Routine::SylvUnb,
        }
    }

    /// The flag arguments encoded as 0/1 indices, in routine order.
    ///
    /// This vector is the submodel key used by the Modeler: each distinct
    /// combination of flags gets its own piecewise model.
    pub fn flag_indices(&self) -> Vec<usize> {
        match self {
            Call::Gemm { transa, transb, .. } => vec![transa.as_index(), transb.as_index()],
            Call::Trsm {
                side,
                uplo,
                transa,
                diag,
                ..
            }
            | Call::Trmm {
                side,
                uplo,
                transa,
                diag,
                ..
            } => vec![
                side.as_index(),
                uplo.as_index(),
                transa.as_index(),
                diag.as_index(),
            ],
            Call::Syrk { uplo, trans, .. } => vec![uplo.as_index(), trans.as_index()],
            Call::TrtriUnb { uplo, diag, .. } => vec![uplo.as_index(), diag.as_index()],
            Call::SylvUnb { .. } => vec![],
        }
    }

    /// The flag indices written into a fixed-size array, returning the array
    /// and the number of valid entries.
    ///
    /// This is the allocation-free counterpart of [`Call::flag_indices`]: no
    /// routine has more than [`Call::MAX_FLAGS`] flags, and every flag index
    /// fits in a `u8`, so per-call model lookups need not touch the heap.
    // lint: allow(panic-free): constant indices below Call::MAX_FLAGS
    pub fn flag_indices_fixed(&self) -> ([u8; Call::MAX_FLAGS], usize) {
        let mut flags = [0u8; Call::MAX_FLAGS];
        let len = match self {
            Call::Gemm { transa, transb, .. } => {
                flags[0] = transa.as_index() as u8;
                flags[1] = transb.as_index() as u8;
                2
            }
            Call::Trsm {
                side,
                uplo,
                transa,
                diag,
                ..
            }
            | Call::Trmm {
                side,
                uplo,
                transa,
                diag,
                ..
            } => {
                flags[0] = side.as_index() as u8;
                flags[1] = uplo.as_index() as u8;
                flags[2] = transa.as_index() as u8;
                flags[3] = diag.as_index() as u8;
                4
            }
            Call::Syrk { uplo, trans, .. } => {
                flags[0] = uplo.as_index() as u8;
                flags[1] = trans.as_index() as u8;
                2
            }
            Call::TrtriUnb { uplo, diag, .. } => {
                flags[0] = uplo.as_index() as u8;
                flags[1] = diag.as_index() as u8;
                2
            }
            Call::SylvUnb { .. } => 0,
        };
        (flags, len)
    }

    /// The flag arguments as their BLAS character spelling.
    pub fn flag_chars(&self) -> String {
        match self {
            Call::Gemm { transa, transb, .. } => format!("{transa}{transb}"),
            Call::Trsm {
                side,
                uplo,
                transa,
                diag,
                ..
            }
            | Call::Trmm {
                side,
                uplo,
                transa,
                diag,
                ..
            } => format!("{side}{uplo}{transa}{diag}"),
            Call::Syrk { uplo, trans, .. } => format!("{uplo}{trans}"),
            Call::TrtriUnb { uplo, diag, .. } => format!("{uplo}{diag}"),
            Call::SylvUnb { .. } => String::new(),
        }
    }

    /// The integer size arguments, in routine order.
    pub fn sizes(&self) -> Vec<usize> {
        match self {
            Call::Gemm { m, n, k, .. } => vec![*m, *n, *k],
            Call::Trsm { m, n, .. } | Call::Trmm { m, n, .. } => vec![*m, *n],
            Call::Syrk { n, k, .. } => vec![*n, *k],
            Call::TrtriUnb { n, .. } => vec![*n],
            Call::SylvUnb { m, n, .. } => vec![*m, *n],
        }
    }

    /// The integer size arguments written into a fixed-size array, returning
    /// the array and the number of valid entries (the allocation-free
    /// counterpart of [`Call::sizes`]; no routine has more than
    /// [`Call::MAX_SIZES`] sizes).
    // lint: allow(panic-free): constant indices below Call::MAX_SIZES
    pub fn sizes_fixed(&self) -> ([usize; Call::MAX_SIZES], usize) {
        let mut sizes = [0usize; Call::MAX_SIZES];
        let len = match self {
            Call::Gemm { m, n, k, .. } => {
                sizes[0] = *m;
                sizes[1] = *n;
                sizes[2] = *k;
                3
            }
            Call::Trsm { m, n, .. } | Call::Trmm { m, n, .. } => {
                sizes[0] = *m;
                sizes[1] = *n;
                2
            }
            Call::Syrk { n, k, .. } => {
                sizes[0] = *n;
                sizes[1] = *k;
                2
            }
            Call::TrtriUnb { n, .. } => {
                sizes[0] = *n;
                1
            }
            Call::SylvUnb { m, n, .. } => {
                sizes[0] = *m;
                sizes[1] = *n;
                2
            }
        };
        (sizes, len)
    }

    /// The scalar arguments (`alpha`, `beta`).
    pub fn scalars(&self) -> Vec<f64> {
        match self {
            Call::Gemm { alpha, beta, .. } => vec![*alpha, *beta],
            Call::Trsm { alpha, .. } | Call::Trmm { alpha, .. } => vec![*alpha],
            Call::Syrk { alpha, beta, .. } => vec![*alpha, *beta],
            Call::TrtriUnb { .. } | Call::SylvUnb { .. } => vec![],
        }
    }

    /// The leading-dimension arguments, in routine order.
    pub fn leading_dims(&self) -> Vec<usize> {
        match self {
            Call::Gemm { lda, ldb, ldc, .. } => vec![*lda, *ldb, *ldc],
            Call::Trsm { lda, ldb, .. } | Call::Trmm { lda, ldb, .. } => vec![*lda, *ldb],
            Call::Syrk { lda, ldc, .. } => vec![*lda, *ldc],
            Call::TrtriUnb { lda, .. } => vec![*lda],
            Call::SylvUnb { ldl, ldu, ldx, .. } => vec![*ldl, *ldu, *ldx],
        }
    }

    /// Dimensions `(rows, cols)` of every matrix operand of the call.
    ///
    /// Used by the machine model to compute operand footprints and memory
    /// traffic.
    pub fn operand_dims(&self) -> Vec<(usize, usize)> {
        match self {
            Call::Gemm {
                transa,
                transb,
                m,
                n,
                k,
                ..
            } => {
                let a = match transa {
                    Trans::NoTrans => (*m, *k),
                    Trans::Trans => (*k, *m),
                };
                let b = match transb {
                    Trans::NoTrans => (*k, *n),
                    Trans::Trans => (*n, *k),
                };
                vec![a, b, (*m, *n)]
            }
            Call::Trsm { side, m, n, .. } | Call::Trmm { side, m, n, .. } => {
                let order = match side {
                    Side::Left => *m,
                    Side::Right => *n,
                };
                vec![(order, order), (*m, *n)]
            }
            Call::Syrk { trans, n, k, .. } => {
                let a = match trans {
                    Trans::NoTrans => (*n, *k),
                    Trans::Trans => (*k, *n),
                };
                vec![a, (*n, *n)]
            }
            Call::TrtriUnb { n, .. } => vec![(*n, *n)],
            Call::SylvUnb { m, n, .. } => vec![(*m, *m), (*n, *n), (*m, *n)],
        }
    }

    /// The operand dimensions as a fixed-size array plus the operand count
    /// (no routine touches more than 3 matrices) — the allocation-free
    /// counterpart of [`Call::operand_dims`] for per-measurement hot paths.
    pub fn operand_dims_fixed(&self) -> ([(usize, usize); 3], usize) {
        let mut dims = [(0usize, 0usize); 3];
        let len = match self {
            Call::Gemm {
                transa,
                transb,
                m,
                n,
                k,
                ..
            } => {
                dims[0] = match transa {
                    Trans::NoTrans => (*m, *k),
                    Trans::Trans => (*k, *m),
                };
                dims[1] = match transb {
                    Trans::NoTrans => (*k, *n),
                    Trans::Trans => (*n, *k),
                };
                dims[2] = (*m, *n);
                3
            }
            Call::Trsm { side, m, n, .. } | Call::Trmm { side, m, n, .. } => {
                let order = match side {
                    Side::Left => *m,
                    Side::Right => *n,
                };
                dims[0] = (order, order);
                dims[1] = (*m, *n);
                2
            }
            Call::Syrk { trans, n, k, .. } => {
                dims[0] = match trans {
                    Trans::NoTrans => (*n, *k),
                    Trans::Trans => (*k, *n),
                };
                dims[1] = (*n, *n);
                2
            }
            Call::TrtriUnb { n, .. } => {
                dims[0] = (*n, *n);
                1
            }
            Call::SylvUnb { m, n, .. } => {
                dims[0] = (*m, *m);
                dims[1] = (*n, *n);
                dims[2] = (*m, *n);
                3
            }
        };
        (dims, len)
    }

    /// Total operand footprint in bytes (double precision).
    pub fn operand_bytes(&self) -> usize {
        let (dims, len) = self.operand_dims_fixed();
        dims[..len]
            .iter()
            .map(|(r, c)| r * c * std::mem::size_of::<f64>())
            .sum()
    }

    /// Floating-point operation count of the call.
    pub fn flops(&self) -> f64 {
        crate::flops::call_flops(self)
    }

    /// Returns a copy of this call with every leading dimension replaced.
    ///
    /// The Modeler fixes all leading dimensions to a single large value (2500
    /// in the paper) during model generation; this helper performs that
    /// normalisation.
    pub fn with_leading_dims(&self, ld: usize) -> Call {
        let mut c = self.clone();
        match &mut c {
            Call::Gemm { lda, ldb, ldc, .. } => {
                *lda = ld;
                *ldb = ld;
                *ldc = ld;
            }
            Call::Trsm { lda, ldb, .. } | Call::Trmm { lda, ldb, .. } => {
                *lda = ld;
                *ldb = ld;
            }
            Call::Syrk { lda, ldc, .. } => {
                *lda = ld;
                *ldc = ld;
            }
            Call::TrtriUnb { lda, .. } => {
                *lda = ld;
            }
            Call::SylvUnb { ldl, ldu, ldx, .. } => {
                *ldl = ld;
                *ldu = ld;
                *ldx = ld;
            }
        }
        c
    }

    /// Returns a copy of this call with the size arguments replaced (in the
    /// order reported by [`Call::sizes`]); used by the Modeler when sweeping
    /// the integer parameter space.
    ///
    /// Panics if the number of sizes does not match the routine.
    pub fn with_sizes(&self, sizes: &[usize]) -> Call {
        assert_eq!(
            sizes.len(),
            self.routine().size_count(),
            "with_sizes: expected {} sizes for {}",
            self.routine().size_count(),
            self.routine()
        );
        let mut c = self.clone();
        match &mut c {
            Call::Gemm { m, n, k, .. } => {
                *m = sizes[0];
                *n = sizes[1];
                *k = sizes[2];
            }
            Call::Trsm { m, n, .. } | Call::Trmm { m, n, .. } => {
                *m = sizes[0];
                *n = sizes[1];
            }
            Call::Syrk { n, k, .. } => {
                *n = sizes[0];
                *k = sizes[1];
            }
            Call::TrtriUnb { n, .. } => {
                *n = sizes[0];
            }
            Call::SylvUnb { m, n, .. } => {
                *m = sizes[0];
                *n = sizes[1];
            }
        }
        c
    }

    /// Parses a call from a whitespace-separated textual form, e.g.
    ///
    /// ```text
    /// dtrsm R L N U 512 128 0.37 256 512
    /// dgemm N N 256 256 256 1.0 0.0 2500 2500 2500
    /// ```
    ///
    /// The token order is: routine name, flags, sizes, scalars, leading
    /// dimensions — the same order the paper's Sampler accepts tuples in
    /// (operand buffer names are omitted because only sizes matter).
    pub fn parse(text: &str) -> Result<Call, String> {
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.is_empty() {
            return Err("empty call description".to_string());
        }
        let routine =
            Routine::from_name(toks[0]).ok_or_else(|| format!("unknown routine '{}'", toks[0]))?;
        let mut idx = 1;
        let mut next = |what: &str| -> Result<&str, String> {
            let t = toks
                .get(idx)
                .ok_or_else(|| format!("missing {what} in '{text}'"))?;
            idx += 1;
            Ok(t)
        };
        let parse_flag = |t: &str, what: &str| -> Result<char, String> {
            t.chars().next().ok_or_else(|| format!("empty {what} flag"))
        };
        let parse_usize = |t: &str, what: &str| -> Result<usize, String> {
            t.parse().map_err(|_| format!("bad {what} '{t}'"))
        };
        let parse_f64 = |t: &str, what: &str| -> Result<f64, String> {
            t.parse().map_err(|_| format!("bad {what} '{t}'"))
        };

        let call = match routine {
            Routine::Gemm => {
                let transa = Trans::from_char(parse_flag(next("transa")?, "transa")?)
                    .ok_or("bad transa flag")?;
                let transb = Trans::from_char(parse_flag(next("transb")?, "transb")?)
                    .ok_or("bad transb flag")?;
                let m = parse_usize(next("m")?, "m")?;
                let n = parse_usize(next("n")?, "n")?;
                let k = parse_usize(next("k")?, "k")?;
                let alpha = parse_f64(next("alpha")?, "alpha")?;
                let beta = parse_f64(next("beta")?, "beta")?;
                let lda = parse_usize(next("lda")?, "lda")?;
                let ldb = parse_usize(next("ldb")?, "ldb")?;
                let ldc = parse_usize(next("ldc")?, "ldc")?;
                Call::Gemm {
                    transa,
                    transb,
                    m,
                    n,
                    k,
                    alpha,
                    beta,
                    lda,
                    ldb,
                    ldc,
                }
            }
            Routine::Trsm | Routine::Trmm => {
                let side =
                    Side::from_char(parse_flag(next("side")?, "side")?).ok_or("bad side flag")?;
                let uplo =
                    Uplo::from_char(parse_flag(next("uplo")?, "uplo")?).ok_or("bad uplo flag")?;
                let transa = Trans::from_char(parse_flag(next("transa")?, "transa")?)
                    .ok_or("bad transa flag")?;
                let diag =
                    Diag::from_char(parse_flag(next("diag")?, "diag")?).ok_or("bad diag flag")?;
                let m = parse_usize(next("m")?, "m")?;
                let n = parse_usize(next("n")?, "n")?;
                let alpha = parse_f64(next("alpha")?, "alpha")?;
                let lda = parse_usize(next("lda")?, "lda")?;
                let ldb = parse_usize(next("ldb")?, "ldb")?;
                if routine == Routine::Trsm {
                    Call::Trsm {
                        side,
                        uplo,
                        transa,
                        diag,
                        m,
                        n,
                        alpha,
                        lda,
                        ldb,
                    }
                } else {
                    Call::Trmm {
                        side,
                        uplo,
                        transa,
                        diag,
                        m,
                        n,
                        alpha,
                        lda,
                        ldb,
                    }
                }
            }
            Routine::Syrk => {
                let uplo =
                    Uplo::from_char(parse_flag(next("uplo")?, "uplo")?).ok_or("bad uplo flag")?;
                let trans = Trans::from_char(parse_flag(next("trans")?, "trans")?)
                    .ok_or("bad trans flag")?;
                let n = parse_usize(next("n")?, "n")?;
                let k = parse_usize(next("k")?, "k")?;
                let alpha = parse_f64(next("alpha")?, "alpha")?;
                let beta = parse_f64(next("beta")?, "beta")?;
                let lda = parse_usize(next("lda")?, "lda")?;
                let ldc = parse_usize(next("ldc")?, "ldc")?;
                Call::Syrk {
                    uplo,
                    trans,
                    n,
                    k,
                    alpha,
                    beta,
                    lda,
                    ldc,
                }
            }
            Routine::TrtriUnb => {
                let uplo =
                    Uplo::from_char(parse_flag(next("uplo")?, "uplo")?).ok_or("bad uplo flag")?;
                let diag =
                    Diag::from_char(parse_flag(next("diag")?, "diag")?).ok_or("bad diag flag")?;
                let n = parse_usize(next("n")?, "n")?;
                let lda = parse_usize(next("lda")?, "lda")?;
                Call::TrtriUnb { uplo, diag, n, lda }
            }
            Routine::SylvUnb => {
                let m = parse_usize(next("m")?, "m")?;
                let n = parse_usize(next("n")?, "n")?;
                let ldl = parse_usize(next("ldl")?, "ldl")?;
                let ldu = parse_usize(next("ldu")?, "ldu")?;
                let ldx = parse_usize(next("ldx")?, "ldx")?;
                Call::SylvUnb {
                    m,
                    n,
                    ldl,
                    ldu,
                    ldx,
                }
            }
        };
        if idx != toks.len() {
            return Err(format!("trailing tokens in '{text}'"));
        }
        Ok(call)
    }
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flags = self.flag_chars();
        let flags_spaced: Vec<String> = flags.chars().map(|c| c.to_string()).collect();
        let sizes: Vec<String> = self.sizes().iter().map(|s| s.to_string()).collect();
        let scalars: Vec<String> = self.scalars().iter().map(|s| format!("{s}")).collect();
        let lds: Vec<String> = self.leading_dims().iter().map(|s| s.to_string()).collect();
        let mut parts = Vec::new();
        parts.extend(flags_spaced);
        parts.extend(sizes);
        parts.extend(scalars);
        parts.extend(lds);
        write!(f, "{}({})", self.routine(), parts.join(", "))
    }
}

/// Convenience constructors mirroring the BLAS call signatures.
impl Call {
    /// Builds a `dgemm` call with unit leading dimensions tied to the sizes.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) -> Call {
        Call::Gemm {
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            beta,
            lda: if matches!(transa, Trans::NoTrans) {
                m.max(1)
            } else {
                k.max(1)
            },
            ldb: if matches!(transb, Trans::NoTrans) {
                k.max(1)
            } else {
                n.max(1)
            },
            ldc: m.max(1),
        }
    }

    /// Builds a `dtrsm` call with leading dimensions tied to the sizes.
    pub fn trsm(
        side: Side,
        uplo: Uplo,
        transa: Trans,
        diag: Diag,
        m: usize,
        n: usize,
        alpha: f64,
    ) -> Call {
        let order = match side {
            Side::Left => m,
            Side::Right => n,
        };
        Call::Trsm {
            side,
            uplo,
            transa,
            diag,
            m,
            n,
            alpha,
            lda: order.max(1),
            ldb: m.max(1),
        }
    }

    /// Builds a `dtrmm` call with leading dimensions tied to the sizes.
    pub fn trmm(
        side: Side,
        uplo: Uplo,
        transa: Trans,
        diag: Diag,
        m: usize,
        n: usize,
        alpha: f64,
    ) -> Call {
        let order = match side {
            Side::Left => m,
            Side::Right => n,
        };
        Call::Trmm {
            side,
            uplo,
            transa,
            diag,
            m,
            n,
            alpha,
            lda: order.max(1),
            ldb: m.max(1),
        }
    }

    /// Builds a `dsyrk` call with leading dimensions tied to the sizes.
    pub fn syrk(uplo: Uplo, trans: Trans, n: usize, k: usize, alpha: f64, beta: f64) -> Call {
        Call::Syrk {
            uplo,
            trans,
            n,
            k,
            alpha,
            beta,
            lda: if matches!(trans, Trans::NoTrans) {
                n.max(1)
            } else {
                k.max(1)
            },
            ldc: n.max(1),
        }
    }

    /// Builds an unblocked triangular-inversion call.
    pub fn trtri_unb(uplo: Uplo, diag: Diag, n: usize) -> Call {
        Call::TrtriUnb {
            uplo,
            diag,
            n,
            lda: n.max(1),
        }
    }

    /// Builds an unblocked Sylvester-solve call.
    pub fn sylv_unb(m: usize, n: usize) -> Call {
        Call::SylvUnb {
            m,
            n,
            ldl: m.max(1),
            ldu: n.max(1),
            ldx: m.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routine_names_roundtrip() {
        for r in Routine::ALL {
            assert_eq!(Routine::from_name(r.name()), Some(r));
            assert_eq!(r.size_names().len(), r.size_count());
        }
        assert_eq!(Routine::from_name("dfoo"), None);
    }

    #[test]
    fn flag_indices_and_sizes() {
        let c = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            512,
            128,
            0.37,
        );
        assert_eq!(c.routine(), Routine::Trsm);
        assert_eq!(c.flag_indices(), vec![1, 0, 0, 1]);
        assert_eq!(c.flag_chars(), "RLNU");
        assert_eq!(c.sizes(), vec![512, 128]);
        assert_eq!(c.scalars(), vec![0.37]);
        // side=R so the triangular operand has order n=128
        assert_eq!(c.operand_dims(), vec![(128, 128), (512, 128)]);
    }

    #[test]
    fn fixed_accessors_match_allocating_ones() {
        let calls = [
            Call::gemm(Trans::Trans, Trans::NoTrans, 10, 20, 30, 1.0, 0.0),
            Call::trsm(
                Side::Right,
                Uplo::Lower,
                Trans::Trans,
                Diag::Unit,
                512,
                128,
                0.37,
            ),
            Call::trmm(
                Side::Left,
                Uplo::Upper,
                Trans::NoTrans,
                Diag::NonUnit,
                64,
                32,
                1.0,
            ),
            Call::syrk(Uplo::Upper, Trans::Trans, 40, 50, 1.0, 0.5),
            Call::trtri_unb(Uplo::Upper, Diag::Unit, 32),
            Call::sylv_unb(8, 16),
        ];
        for c in &calls {
            let (flags, flag_len) = c.flag_indices_fixed();
            assert!(flag_len <= Call::MAX_FLAGS);
            let as_vec: Vec<usize> = flags[..flag_len].iter().map(|&f| f as usize).collect();
            assert_eq!(as_vec, c.flag_indices(), "flags of {c}");
            let (sizes, size_len) = c.sizes_fixed();
            assert!(size_len <= Call::MAX_SIZES);
            assert_eq!(sizes[..size_len].to_vec(), c.sizes(), "sizes of {c}");
            let (dims, dim_len) = c.operand_dims_fixed();
            assert_eq!(dims[..dim_len].to_vec(), c.operand_dims(), "dims of {c}");
        }
        for (i, r) in Routine::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn gemm_operand_dims_respect_transposition() {
        let c = Call::gemm(Trans::Trans, Trans::NoTrans, 10, 20, 30, 1.0, 0.0);
        assert_eq!(c.operand_dims(), vec![(30, 10), (30, 20), (10, 20)]);
        assert_eq!(c.sizes(), vec![10, 20, 30]);
        assert_eq!(c.flag_indices(), vec![1, 0]);
        let bytes = c.operand_bytes();
        assert_eq!(bytes, (300 + 600 + 200) * 8);
    }

    #[test]
    fn with_sizes_and_leading_dims() {
        let c = Call::gemm(Trans::NoTrans, Trans::NoTrans, 1, 2, 3, 1.0, 1.0);
        let c2 = c.with_sizes(&[100, 200, 300]).with_leading_dims(2500);
        assert_eq!(c2.sizes(), vec![100, 200, 300]);
        assert_eq!(c2.leading_dims(), vec![2500, 2500, 2500]);
        // original untouched
        assert_eq!(c.sizes(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "with_sizes")]
    fn with_sizes_wrong_arity_panics() {
        let c = Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8);
        let _ = c.with_sizes(&[1, 2]);
    }

    #[test]
    fn parse_paper_example() {
        let c = Call::parse("dtrsm R L N U 512 128 0.37 256 512").unwrap();
        match c {
            Call::Trsm {
                side,
                uplo,
                transa,
                diag,
                m,
                n,
                alpha,
                lda,
                ldb,
            } => {
                assert_eq!(side, Side::Right);
                assert_eq!(uplo, Uplo::Lower);
                assert_eq!(transa, Trans::NoTrans);
                assert_eq!(diag, Diag::Unit);
                assert_eq!((m, n), (512, 128));
                assert_eq!(alpha, 0.37);
                assert_eq!((lda, ldb), (256, 512));
            }
            _ => panic!("expected Trsm"),
        }
    }

    #[test]
    fn parse_all_routines() {
        assert!(Call::parse("dgemm N T 8 16 24 1.0 0.0 2500 2500 2500").is_ok());
        assert!(Call::parse("dtrmm L U T N 64 32 1.0 2500 2500").is_ok());
        assert!(Call::parse("dsyrk L N 100 50 1.0 1.0 2500 2500").is_ok());
        assert!(Call::parse("dtrtri_unb L N 96 2500").is_ok());
        assert!(Call::parse("dsylv_unb 96 96 2500 2500 2500").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(Call::parse("").is_err());
        assert!(Call::parse("dfoo 1 2 3").is_err());
        assert!(Call::parse("dgemm N T 8 16").is_err());
        assert!(Call::parse("dtrsm R L N U 512 128 0.37 256 512 extra").is_err());
        assert!(Call::parse("dtrsm X L N U 512 128 0.37 256 512").is_err());
        assert!(Call::parse("dgemm N T a 16 24 1.0 0.0 1 1 1").is_err());
    }

    #[test]
    fn display_contains_routine_and_args() {
        let c = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            512,
            128,
            0.37,
        );
        let s = c.to_string();
        assert!(s.starts_with("dtrsm("));
        assert!(s.contains("512"));
        assert!(s.contains("0.37"));
    }

    #[test]
    fn sylv_unb_has_no_flags() {
        let c = Call::sylv_unb(10, 20);
        assert!(c.flag_indices().is_empty());
        assert_eq!(c.flag_chars(), "");
        assert_eq!(c.sizes(), vec![10, 20]);
        assert_eq!(c.operand_dims(), vec![(10, 10), (20, 20), (10, 20)]);
    }
}
