//! Symmetric rank-k update.

use dla_mat::{MatMut, MatRef};

use crate::{Trans, Uplo};

/// `C <- alpha * A * A^T + beta * C` (trans = NoTrans) or
/// `C <- alpha * A^T * A + beta * C` (trans = Trans), updating only the
/// triangle of `C` selected by `uplo`.
///
/// `C` is `n x n`; `A` is `n x k` (NoTrans) or `k x n` (Trans).
pub fn dsyrk(uplo: Uplo, trans: Trans, alpha: f64, a: MatRef<'_>, beta: f64, mut c: MatMut<'_>) {
    let n = c.rows();
    assert_eq!(c.cols(), n, "dsyrk: C must be square");
    let k = match trans {
        Trans::NoTrans => {
            assert_eq!(a.rows(), n, "dsyrk: A must have n rows for trans=N");
            a.cols()
        }
        Trans::Trans => {
            assert_eq!(a.cols(), n, "dsyrk: A must have n cols for trans=T");
            a.rows()
        }
    };
    let a_at = |i: usize, l: usize| -> f64 {
        match trans {
            Trans::NoTrans => a.get(i, l),
            Trans::Trans => a.get(l, i),
        }
    };
    for j in 0..n {
        let (i_lo, i_hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        for i in i_lo..i_hi {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a_at(i, l) * a_at(j, l);
            }
            let prev = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
            c.set(i, j, alpha * acc + prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::matmul;
    use dla_mat::Matrix;

    #[test]
    fn lower_notrans_matches_reference() {
        let mut g = MatrixGenerator::new(40);
        let n = 8;
        let k = 5;
        let a = g.general(n, k);
        let c0 = g.general(n, n);
        let mut c = c0.clone();
        dsyrk(
            Uplo::Lower,
            Trans::NoTrans,
            2.0,
            a.as_ref(),
            0.5,
            c.as_mut(),
        );
        let aat = matmul(2.0, &a, &a.transposed()).unwrap();
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    let expected = aat[(i, j)] + 0.5 * c0[(i, j)];
                    assert!((c[(i, j)] - expected).abs() < 1e-12);
                } else {
                    // strictly upper part untouched
                    assert_eq!(c[(i, j)], c0[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn upper_trans_matches_reference() {
        let mut g = MatrixGenerator::new(41);
        let n = 6;
        let k = 9;
        let a = g.general(k, n);
        let c0 = g.general(n, n);
        let mut c = c0.clone();
        dsyrk(Uplo::Upper, Trans::Trans, -1.0, a.as_ref(), 0.0, c.as_mut());
        let ata = matmul(-1.0, &a.transposed(), &a).unwrap();
        for j in 0..n {
            for i in 0..n {
                if i <= j {
                    assert!((c[(i, j)] - ata[(i, j)]).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], c0[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn result_triangle_is_symmetric_part() {
        // Running lower and upper variants on a zero C gives each other's transpose.
        let mut g = MatrixGenerator::new(42);
        let a = g.general(7, 4);
        let mut cl = Matrix::zeros(7, 7);
        let mut cu = Matrix::zeros(7, 7);
        dsyrk(
            Uplo::Lower,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            0.0,
            cl.as_mut(),
        );
        dsyrk(
            Uplo::Upper,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            0.0,
            cu.as_mut(),
        );
        for i in 0..7 {
            for j in 0..=i {
                assert!((cl[(i, j)] - cu[(j, i)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_c_panics() {
        let a = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(3, 4);
        dsyrk(
            Uplo::Lower,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            0.0,
            c.as_mut(),
        );
    }
}
