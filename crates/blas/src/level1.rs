//! Level-1 BLAS: vector-vector operations.

/// `y <- alpha * x + y`.
///
/// Panics if the vectors have different lengths.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x <- alpha * x`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    if alpha == 1.0 {
        return;
    }
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product `x^T y`.
///
/// Panics if the vectors have different lengths.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// `y <- x`.
///
/// Panics if the vectors have different lengths.
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy: length mismatch");
    y.copy_from_slice(x);
}

/// Euclidean norm `||x||_2`, computed with scaling to avoid overflow.
pub fn dnrm2(x: &[f64]) -> f64 {
    let mut scale: f64 = 0.0;
    let mut ssq: f64 = 1.0;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a) * (scale / a);
                scale = a;
            } else {
                ssq += (a / scale) * (a / scale);
            }
        }
    }
    scale * ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        daxpy(0.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        daxpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }

    #[test]
    fn scal_and_copy() {
        let mut x = vec![1.0, -2.0, 4.0];
        dscal(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0, 2.0]);
        dscal(1.0, &mut x);
        assert_eq!(x, vec![0.5, -1.0, 2.0]);
        let mut y = vec![0.0; 3];
        dcopy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(ddot(&x, &x), 25.0);
        assert_eq!(dnrm2(&x), 5.0);
        assert_eq!(dnrm2(&[]), 0.0);
        assert_eq!(dnrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm_is_overflow_safe() {
        let big = 1e200;
        let x = vec![big, big];
        let n = dnrm2(&x);
        assert!((n - big * 2.0f64.sqrt()).abs() / n < 1e-12);
    }
}
