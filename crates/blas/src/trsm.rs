//! Triangular solve with multiple right-hand sides.

use dla_mat::{MatMut, MatRef};

use crate::level2::dtrsv;
use crate::{Diag, Side, Trans, Uplo};

/// `B <- alpha * op(A)^-1 * B` (side = Left) or `B <- alpha * B * op(A)^-1`
/// (side = Right), with `A` triangular.
///
/// `A` must be square with order `m = B.rows()` (Left) or `n = B.cols()`
/// (Right).  The implementation forwards to the level-2 triangular solver
/// column by column (Left) or row by row (Right); for the right-side case the
/// identity `X * op(A) = B  ⇔  op(A)^T * X^T = B^T` is used, i.e. the
/// transposition flag is toggled and the solve runs over the rows of `B`.
pub fn dtrsm(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: f64,
    a: MatRef<'_>,
    mut b: MatMut<'_>,
) {
    let m = b.rows();
    let n = b.cols();
    assert_eq!(a.rows(), a.cols(), "dtrsm: A must be square");
    match side {
        Side::Left => assert_eq!(a.rows(), m, "dtrsm: A order must equal B rows for side=L"),
        Side::Right => assert_eq!(a.rows(), n, "dtrsm: A order must equal B cols for side=R"),
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 {
        b.fill(0.0);
        return;
    }

    match side {
        Side::Left => {
            let mut col = vec![0.0; m];
            for j in 0..n {
                for (i, c) in col.iter_mut().enumerate() {
                    *c = alpha * b.get(i, j);
                }
                dtrsv(uplo, transa, diag, a, &mut col);
                for (i, c) in col.iter().enumerate() {
                    b.set(i, j, *c);
                }
            }
        }
        Side::Right => {
            let flipped = match transa {
                Trans::NoTrans => Trans::Trans,
                Trans::Trans => Trans::NoTrans,
            };
            let mut row = vec![0.0; n];
            for i in 0..m {
                for (j, r) in row.iter_mut().enumerate() {
                    *r = alpha * b.get(i, j);
                }
                dtrsv(uplo, flipped, diag, a, &mut row);
                for (j, r) in row.iter().enumerate() {
                    b.set(i, j, *r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{self, matmul};
    use dla_mat::Matrix;

    /// Effective dense triangular operand taking `uplo`, `diag` and `trans`
    /// into account.
    fn effective(a: &Matrix, uplo: Uplo, diag: Diag, trans: Trans) -> Matrix {
        let tri = match uplo {
            Uplo::Lower => ops::lower_triangular(a, matches!(diag, Diag::Unit)).unwrap(),
            Uplo::Upper => ops::upper_triangular(a, matches!(diag, Diag::Unit)).unwrap(),
        };
        match trans {
            Trans::NoTrans => tri,
            Trans::Trans => tri.transposed(),
        }
    }

    #[test]
    fn all_sixteen_flag_combinations() {
        let mut g = MatrixGenerator::new(20);
        let (m, n) = (11, 7);
        let alpha = 0.37;
        for side in Side::VALUES {
            for uplo in Uplo::VALUES {
                for transa in Trans::VALUES {
                    for diag in Diag::VALUES {
                        let order = match side {
                            Side::Left => m,
                            Side::Right => n,
                        };
                        let a = match uplo {
                            Uplo::Lower => g.lower_triangular(order, false),
                            Uplo::Upper => g.upper_triangular(order, false),
                        };
                        let b0 = g.general(m, n);
                        let mut b = b0.clone();
                        dtrsm(side, uplo, transa, diag, alpha, a.as_ref(), b.as_mut());
                        // Verify op(A) * X == alpha * B0 (left) or X * op(A) == alpha * B0.
                        let opa = effective(&a, uplo, diag, transa);
                        let product = match side {
                            Side::Left => matmul(1.0, &opa, &b).unwrap(),
                            Side::Right => matmul(1.0, &b, &opa).unwrap(),
                        };
                        let mut target = b0.clone();
                        ops::scale_in_place(&mut target, alpha);
                        assert!(
                            product.approx_eq(&target, 1e-8),
                            "side={side:?} uplo={uplo:?} trans={transa:?} diag={diag:?}: diff {}",
                            product.max_abs_diff(&target)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_example_dimensions() {
        // dtrsm(R, L, N, U, 512, 128, 0.37, A, B): B is 512x128, A is 128x128.
        let mut g = MatrixGenerator::new(21);
        let a = g.lower_triangular(32, false);
        let b0 = g.general(64, 32);
        let mut b = b0.clone();
        dtrsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            0.37,
            a.as_ref(),
            b.as_mut(),
        );
        let opa = effective(&a, Uplo::Lower, Diag::Unit, Trans::NoTrans);
        let product = matmul(1.0, &b, &opa).unwrap();
        let mut target = b0;
        ops::scale_in_place(&mut target, 0.37);
        assert!(product.approx_eq(&target, 1e-9));
    }

    #[test]
    fn alpha_zero_clears_b() {
        let mut g = MatrixGenerator::new(22);
        let a = g.lower_triangular(5, false);
        let mut b = g.general(5, 4);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            0.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert_eq!(b.max_abs(), 0.0);
    }

    #[test]
    fn inverse_roundtrip() {
        // trsm followed by trmm-like multiplication restores the original B.
        let mut g = MatrixGenerator::new(23);
        let a = g.lower_triangular(16, false);
        let b0 = g.general(16, 10);
        let mut b = b0.clone();
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        let l = ops::lower_triangular(&a, false).unwrap();
        let restored = matmul(1.0, &l, &b).unwrap();
        assert!(restored.approx_eq(&b0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_a_panics() {
        let a = Matrix::zeros(3, 4);
        let mut b = Matrix::zeros(3, 2);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
    }

    #[test]
    #[should_panic(expected = "order")]
    fn wrong_order_panics() {
        let a = Matrix::identity(4);
        let mut b = Matrix::zeros(3, 2);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
    }

    #[test]
    fn empty_b_is_noop() {
        let a = Matrix::identity(4);
        let mut b = Matrix::zeros(4, 0);
        dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            2.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert!(b.is_empty());
    }
}
