//! General matrix-matrix multiplication.

use dla_mat::{MatMut, MatRef};

use crate::Trans;

/// Cache-blocking tile size used along the `k` and `j` dimensions.
const BLOCK: usize = 64;

/// `C <- alpha * op(A) * op(B) + beta * C`.
///
/// `op(A)` is `m x k` and `op(B)` is `k x n`, where `m = C.rows()` and
/// `n = C.cols()`.  The common dimension `k` is inferred from `A` and must be
/// consistent with `B`; inconsistent operand shapes panic.
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::NoTrans => {
            assert_eq!(a.rows(), m, "dgemm: op(A) must have {m} rows");
            a.cols()
        }
        Trans::Trans => {
            assert_eq!(a.cols(), m, "dgemm: op(A) must have {m} rows");
            a.rows()
        }
    };
    match transb {
        Trans::NoTrans => {
            assert_eq!(b.rows(), k, "dgemm: op(B) must have {k} rows");
            assert_eq!(b.cols(), n, "dgemm: op(B) must have {n} cols");
        }
        Trans::Trans => {
            assert_eq!(b.cols(), k, "dgemm: op(B) must have {k} rows");
            assert_eq!(b.rows(), n, "dgemm: op(B) must have {n} cols");
        }
    }

    // Scale C by beta first.
    if beta != 1.0 {
        for j in 0..n {
            for i in 0..m {
                let v = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
                c.set(i, j, v);
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Element accessors hiding the transposition.
    let a_at = |i: usize, l: usize| -> f64 {
        match transa {
            Trans::NoTrans => a.get(i, l),
            Trans::Trans => a.get(l, i),
        }
    };
    let b_at = |l: usize, j: usize| -> f64 {
        match transb {
            Trans::NoTrans => b.get(l, j),
            Trans::Trans => b.get(j, l),
        }
    };

    // Blocked j/k loops with a stride-1 inner loop over i (column-major C and,
    // in the NoTrans case, column-major A columns).
    let mut jb = 0;
    while jb < n {
        let jend = (jb + BLOCK).min(n);
        let mut kb = 0;
        while kb < k {
            let kend = (kb + BLOCK).min(k);
            for j in jb..jend {
                for l in kb..kend {
                    let blj = alpha * b_at(l, j);
                    if blj == 0.0 {
                        continue;
                    }
                    for i in 0..m {
                        let v = c.get(i, j) + a_at(i, l) * blj;
                        c.set(i, j, v);
                    }
                }
            }
            kb = kend;
        }
        jb = jend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::matmul;
    use dla_mat::Matrix;

    fn reference(
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &Matrix,
    ) -> Matrix {
        let opa = match transa {
            Trans::NoTrans => a.clone(),
            Trans::Trans => a.transposed(),
        };
        let opb = match transb {
            Trans::NoTrans => b.clone(),
            Trans::Trans => b.transposed(),
        };
        let ab = matmul(alpha, &opa, &opb).unwrap();
        Matrix::from_fn(c.rows(), c.cols(), |i, j| ab[(i, j)] + beta * c[(i, j)])
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let mut g = MatrixGenerator::new(10);
        let (m, n, k) = (13, 9, 17);
        for transa in Trans::VALUES {
            for transb in Trans::VALUES {
                let a = match transa {
                    Trans::NoTrans => g.general(m, k),
                    Trans::Trans => g.general(k, m),
                };
                let b = match transb {
                    Trans::NoTrans => g.general(k, n),
                    Trans::Trans => g.general(n, k),
                };
                let c0 = g.general(m, n);
                let expected = reference(transa, transb, 1.3, &a, &b, -0.7, &c0);
                let mut c = c0.clone();
                dgemm(
                    transa,
                    transb,
                    1.3,
                    a.as_ref(),
                    b.as_ref(),
                    -0.7,
                    c.as_mut(),
                );
                assert!(
                    c.approx_eq(&expected, 1e-11),
                    "mismatch for transa={transa:?}, transb={transb:?}: {}",
                    c.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let mut g = MatrixGenerator::new(11);
        let a = g.general(5, 5);
        let b = g.general(5, 5);
        let mut c = Matrix::from_fn(5, 5, |_, _| f64::NAN);
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let expected = matmul(1.0, &a, &b).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let mut g = MatrixGenerator::new(12);
        let a = g.general(4, 6);
        let b = g.general(6, 3);
        let c0 = g.general(4, 3);
        let mut c = c0.clone();
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            0.0,
            a.as_ref(),
            b.as_ref(),
            2.0,
            c.as_mut(),
        );
        let mut expected = c0;
        dla_mat::ops::scale_in_place(&mut expected, 2.0);
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn blocked_path_large_sizes() {
        // Sizes beyond one cache block exercise the tiling loops.
        let mut g = MatrixGenerator::new(13);
        let (m, n, k) = (70, 65, 130);
        let a = g.general(m, k);
        let b = g.general(k, n);
        let c0 = g.general(m, n);
        let expected = reference(Trans::NoTrans, Trans::NoTrans, 1.0, &a, &b, 1.0, &c0);
        let mut c = c0;
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c.as_mut(),
        );
        assert!(c.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn works_on_submatrix_views() {
        let mut g = MatrixGenerator::new(14);
        let big = g.general(20, 20);
        let mut out = Matrix::zeros(6, 4);
        let a = big.block(dla_mat::Rect::new(2, 3, 6, 5)).unwrap();
        let b = big.block(dla_mat::Rect::new(8, 9, 5, 4)).unwrap();
        dgemm(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, out.as_mut());
        let a_owned = a.to_matrix();
        let b_owned = b.to_matrix();
        let expected = matmul(1.0, &a_owned, &b_owned).unwrap();
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    #[should_panic(expected = "dgemm")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let mut c = Matrix::zeros(3, 2);
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |_, _| 5.0);
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 5.0);
    }
}
