//! Triangular matrix-matrix multiplication.

use dla_mat::{MatMut, MatRef};

use crate::level2::dtrmv;
use crate::{Diag, Side, Trans, Uplo};

/// `B <- alpha * op(A) * B` (side = Left) or `B <- alpha * B * op(A)`
/// (side = Right), with `A` triangular.
///
/// As with [`crate::dtrsm`], the implementation forwards to the level-2
/// triangular multiply per column (Left) or per row with a toggled
/// transposition flag (Right).
pub fn dtrmm(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: f64,
    a: MatRef<'_>,
    mut b: MatMut<'_>,
) {
    let m = b.rows();
    let n = b.cols();
    assert_eq!(a.rows(), a.cols(), "dtrmm: A must be square");
    match side {
        Side::Left => assert_eq!(a.rows(), m, "dtrmm: A order must equal B rows for side=L"),
        Side::Right => assert_eq!(a.rows(), n, "dtrmm: A order must equal B cols for side=R"),
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 {
        b.fill(0.0);
        return;
    }

    match side {
        Side::Left => {
            let mut col = vec![0.0; m];
            for j in 0..n {
                for (i, c) in col.iter_mut().enumerate() {
                    *c = b.get(i, j);
                }
                dtrmv(uplo, transa, diag, a, &mut col);
                for (i, c) in col.iter().enumerate() {
                    b.set(i, j, alpha * c);
                }
            }
        }
        Side::Right => {
            // B * op(A) = (op(A)^T * B^T)^T: operate on rows with the flag toggled.
            let flipped = match transa {
                Trans::NoTrans => Trans::Trans,
                Trans::Trans => Trans::NoTrans,
            };
            let mut row = vec![0.0; n];
            for i in 0..m {
                for (j, r) in row.iter_mut().enumerate() {
                    *r = b.get(i, j);
                }
                dtrmv(uplo, flipped, diag, a, &mut row);
                for (j, r) in row.iter().enumerate() {
                    b.set(i, j, alpha * r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{self, matmul};
    use dla_mat::Matrix;

    fn effective(a: &Matrix, uplo: Uplo, diag: Diag, trans: Trans) -> Matrix {
        let tri = match uplo {
            Uplo::Lower => ops::lower_triangular(a, matches!(diag, Diag::Unit)).unwrap(),
            Uplo::Upper => ops::upper_triangular(a, matches!(diag, Diag::Unit)).unwrap(),
        };
        match trans {
            Trans::NoTrans => tri,
            Trans::Trans => tri.transposed(),
        }
    }

    #[test]
    fn all_sixteen_flag_combinations() {
        let mut g = MatrixGenerator::new(30);
        let (m, n) = (9, 12);
        let alpha = -1.5;
        for side in Side::VALUES {
            for uplo in Uplo::VALUES {
                for transa in Trans::VALUES {
                    for diag in Diag::VALUES {
                        let order = match side {
                            Side::Left => m,
                            Side::Right => n,
                        };
                        let a = match uplo {
                            Uplo::Lower => g.lower_triangular(order, false),
                            Uplo::Upper => g.upper_triangular(order, false),
                        };
                        let b0 = g.general(m, n);
                        let mut b = b0.clone();
                        dtrmm(side, uplo, transa, diag, alpha, a.as_ref(), b.as_mut());
                        let opa = effective(&a, uplo, diag, transa);
                        let expected = match side {
                            Side::Left => matmul(alpha, &opa, &b0).unwrap(),
                            Side::Right => matmul(alpha, &b0, &opa).unwrap(),
                        };
                        assert!(
                            b.approx_eq(&expected, 1e-10),
                            "side={side:?} uplo={uplo:?} trans={transa:?} diag={diag:?}: diff {}",
                            b.max_abs_diff(&expected)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trmm_then_trsm_roundtrip() {
        let mut g = MatrixGenerator::new(31);
        let a = g.upper_triangular(14, false);
        let b0 = g.general(10, 14);
        let mut b = b0.clone();
        dtrmm(
            Side::Right,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        crate::dtrsm(
            Side::Right,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert!(b.approx_eq(&b0, 1e-9));
    }

    #[test]
    fn alpha_zero_clears_b() {
        let mut g = MatrixGenerator::new(32);
        let a = g.lower_triangular(4, false);
        let mut b = g.general(4, 4);
        dtrmm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            0.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert_eq!(b.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn mismatched_order_panics() {
        let a = Matrix::identity(5);
        let mut b = Matrix::zeros(4, 4);
        dtrmm(
            Side::Right,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
    }

    #[test]
    fn zero_size_block_is_noop() {
        // trinv traces contain trmm calls with a zero dimension in the first
        // iteration (e.g. n = 0); these must be accepted silently.
        let a = Matrix::identity(5);
        let mut b = Matrix::zeros(0, 5);
        dtrmm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert!(b.is_empty());
    }
}
