//! Level-2 BLAS: matrix-vector operations.
//!
//! These are used by the unblocked kernels (`dtrtri_unb`, `dsylv_unb`) and as
//! independent references in tests.

use dla_mat::{MatMut, MatRef};

use crate::{Diag, Trans, Uplo};

/// `y <- alpha * op(A) * x + beta * y`.
///
/// `op(A)` is `A` or `A^T` depending on `trans`.  Dimensions: `A` is `m x n`,
/// `x` has `n` (or `m` if transposed) entries and `y` has `m` (or `n`) entries.
pub fn dgemv(trans: Trans, alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let m = a.rows();
    let n = a.cols();
    match trans {
        Trans::NoTrans => {
            assert_eq!(x.len(), n, "dgemv: x length");
            assert_eq!(y.len(), m, "dgemv: y length");
            for yi in y.iter_mut() {
                *yi *= beta;
            }
            for j in 0..n {
                let axj = alpha * x[j];
                if axj == 0.0 {
                    continue;
                }
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi += a.get(i, j) * axj;
                }
            }
        }
        Trans::Trans => {
            assert_eq!(x.len(), m, "dgemv: x length");
            assert_eq!(y.len(), n, "dgemv: y length");
            for (j, yj) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, xi) in x.iter().enumerate() {
                    acc += a.get(i, j) * xi;
                }
                *yj = alpha * acc + beta * *yj;
            }
        }
    }
}

/// Rank-1 update `A <- alpha * x * y^T + A`.
pub fn dger(alpha: f64, x: &[f64], y: &[f64], mut a: MatMut<'_>) {
    assert_eq!(x.len(), a.rows(), "dger: x length");
    assert_eq!(y.len(), a.cols(), "dger: y length");
    if alpha == 0.0 {
        return;
    }
    for (j, yj) in y.iter().enumerate() {
        let ayj = alpha * yj;
        if ayj == 0.0 {
            continue;
        }
        for (i, xi) in x.iter().enumerate() {
            let v = a.get(i, j) + xi * ayj;
            a.set(i, j, v);
        }
    }
}

/// Triangular solve `x <- op(A)^-1 x` with `A` triangular.
pub fn dtrsv(uplo: Uplo, trans: Trans, diag: Diag, a: MatRef<'_>, x: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "dtrsv: A must be square");
    assert_eq!(x.len(), n, "dtrsv: x length");
    let lower = matches!(uplo, Uplo::Lower);
    let forward = lower ^ matches!(trans, Trans::Trans);
    let idx: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &i in &idx {
        let mut acc = x[i];
        match trans {
            Trans::NoTrans => {
                if lower {
                    for k in 0..i {
                        acc -= a.get(i, k) * x[k];
                    }
                } else {
                    for k in (i + 1)..n {
                        acc -= a.get(i, k) * x[k];
                    }
                }
            }
            Trans::Trans => {
                if lower {
                    for k in (i + 1)..n {
                        acc -= a.get(k, i) * x[k];
                    }
                } else {
                    for k in 0..i {
                        acc -= a.get(k, i) * x[k];
                    }
                }
            }
        }
        let d = match diag {
            Diag::Unit => 1.0,
            Diag::NonUnit => a.get(i, i),
        };
        x[i] = acc / d;
    }
}

/// Triangular matrix-vector product `x <- op(A) * x` with `A` triangular.
pub fn dtrmv(uplo: Uplo, trans: Trans, diag: Diag, a: MatRef<'_>, x: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "dtrmv: A must be square");
    assert_eq!(x.len(), n, "dtrmv: x length");
    let lower = matches!(uplo, Uplo::Lower);
    let out: Vec<f64> = (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for k in 0..n {
                let aik = match trans {
                    Trans::NoTrans => {
                        let stored = if lower { i >= k } else { i <= k };
                        if !stored {
                            continue;
                        }
                        if i == k && matches!(diag, Diag::Unit) {
                            1.0
                        } else {
                            a.get(i, k)
                        }
                    }
                    Trans::Trans => {
                        let stored = if lower { k >= i } else { k <= i };
                        if !stored {
                            continue;
                        }
                        if i == k && matches!(diag, Diag::Unit) {
                            1.0
                        } else {
                            a.get(k, i)
                        }
                    }
                };
                acc += aik * x[k];
            }
            acc
        })
        .collect();
    x.copy_from_slice(&out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops;
    use dla_mat::Matrix;

    #[test]
    fn gemv_matches_reference() {
        let mut g = MatrixGenerator::new(1);
        let a = g.general(4, 3);
        let x = g.vector(3);
        let mut y = g.vector(4);
        let y0 = y.clone();
        dgemv(Trans::NoTrans, 2.0, a.as_ref(), &x, 0.5, &mut y);
        for i in 0..4 {
            let mut acc = 0.5 * y0[i];
            for j in 0..3 {
                acc += 2.0 * a[(i, j)] * x[j];
            }
            assert!((y[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_transposed() {
        let mut g = MatrixGenerator::new(2);
        let a = g.general(4, 3);
        let x = g.vector(4);
        let mut y = vec![0.0; 3];
        dgemv(Trans::Trans, 1.0, a.as_ref(), &x, 0.0, &mut y);
        for j in 0..3 {
            let mut acc = 0.0;
            for i in 0..4 {
                acc += a[(i, j)] * x[i];
            }
            assert!((y[j] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_rank_one_update() {
        let mut a = Matrix::zeros(3, 2);
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 5.0];
        dger(2.0, &x, &y, a.as_mut());
        assert_eq!(a[(0, 0)], 8.0);
        assert_eq!(a[(2, 1)], 30.0);
        let before = a.clone();
        dger(0.0, &x, &y, a.as_mut());
        assert!(a.approx_eq(&before, 0.0));
    }

    #[test]
    fn trsv_all_flag_combinations() {
        let mut g = MatrixGenerator::new(3);
        let n = 12;
        for uplo in Uplo::VALUES {
            for trans in Trans::VALUES {
                for diag in Diag::VALUES {
                    let tri = match uplo {
                        Uplo::Lower => g.lower_triangular(n, matches!(diag, Diag::Unit)),
                        Uplo::Upper => g.upper_triangular(n, matches!(diag, Diag::Unit)),
                    };
                    let x_true = g.vector(n);
                    // b = op(A) * x_true computed with the reference ops
                    let eff = match (uplo, diag) {
                        (Uplo::Lower, Diag::Unit) => ops::lower_triangular(&tri, true).unwrap(),
                        (Uplo::Lower, Diag::NonUnit) => tri.clone(),
                        (Uplo::Upper, Diag::Unit) => ops::upper_triangular(&tri, true).unwrap(),
                        (Uplo::Upper, Diag::NonUnit) => tri.clone(),
                    };
                    let op_a = match trans {
                        Trans::NoTrans => eff.clone(),
                        Trans::Trans => eff.transposed(),
                    };
                    let mut b = vec![0.0; n];
                    for i in 0..n {
                        for k in 0..n {
                            b[i] += op_a[(i, k)] * x_true[k];
                        }
                    }
                    let mut x = b.clone();
                    dtrsv(uplo, trans, diag, tri.as_ref(), &mut x);
                    for i in 0..n {
                        assert!(
                            (x[i] - x_true[i]).abs() < 1e-9,
                            "uplo={uplo:?} trans={trans:?} diag={diag:?} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trmv_all_flag_combinations() {
        let mut g = MatrixGenerator::new(4);
        let n = 9;
        for uplo in Uplo::VALUES {
            for trans in Trans::VALUES {
                for diag in Diag::VALUES {
                    let tri = match uplo {
                        Uplo::Lower => g.lower_triangular(n, false),
                        Uplo::Upper => g.upper_triangular(n, false),
                    };
                    let eff = match (uplo, diag) {
                        (Uplo::Lower, Diag::Unit) => ops::lower_triangular(&tri, true).unwrap(),
                        (Uplo::Lower, Diag::NonUnit) => tri.clone(),
                        (Uplo::Upper, Diag::Unit) => ops::upper_triangular(&tri, true).unwrap(),
                        (Uplo::Upper, Diag::NonUnit) => tri.clone(),
                    };
                    let op_a = match trans {
                        Trans::NoTrans => eff.clone(),
                        Trans::Trans => eff.transposed(),
                    };
                    let x0 = g.vector(n);
                    let mut expected = vec![0.0; n];
                    for i in 0..n {
                        for k in 0..n {
                            expected[i] += op_a[(i, k)] * x0[k];
                        }
                    }
                    let mut x = x0.clone();
                    dtrmv(uplo, trans, diag, tri.as_ref(), &mut x);
                    for i in 0..n {
                        assert!(
                            (x[i] - expected[i]).abs() < 1e-10,
                            "uplo={uplo:?} trans={trans:?} diag={diag:?} i={i}"
                        );
                    }
                }
            }
        }
    }
}
