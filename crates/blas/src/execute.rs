//! Real execution of routine calls on synthetic operands.
//!
//! The simulated machine of `dla-machine` predicts ticks analytically; this
//! module provides the complementary *native* path: given a [`Call`], allocate
//! operands of the right shapes (triangular operands are well-conditioned so
//! repeated execution stays numerically sane), and run the corresponding
//! pure-Rust kernel.  The `NativeExecutor` wraps timing around
//! [`PreparedCall::run`].

use dla_mat::gen::MatrixGenerator;
use dla_mat::Matrix;

use crate::{dgemm, dsylv_unb, dsyrk, dtrmm, dtrsm, dtrtri_unb, Call, Side, Trans, Uplo};

/// A routine call together with allocated operands, ready to run repeatedly.
#[derive(Debug)]
pub struct PreparedCall {
    call: Call,
    /// First operand (A / L).
    a: Matrix,
    /// Second operand (B / U), if any.
    b: Option<Matrix>,
    /// Output operand (C / X), if distinct from `b`.
    c: Option<Matrix>,
    /// Pristine copy of the operand that the routine overwrites, used by
    /// [`PreparedCall::reset`].
    pristine: Matrix,
}

impl PreparedCall {
    /// Allocates and initialises the operands of `call` deterministically from
    /// `seed`.
    pub fn new(call: &Call, seed: u64) -> PreparedCall {
        let mut g = MatrixGenerator::new(seed);
        match call {
            Call::Gemm {
                transa,
                transb,
                m,
                n,
                k,
                ..
            } => {
                let a = match transa {
                    Trans::NoTrans => g.general(*m, *k),
                    Trans::Trans => g.general(*k, *m),
                };
                let b = match transb {
                    Trans::NoTrans => g.general(*k, *n),
                    Trans::Trans => g.general(*n, *k),
                };
                let c = g.general(*m, *n);
                PreparedCall {
                    call: call.clone(),
                    a,
                    b: Some(b),
                    pristine: c.clone(),
                    c: Some(c),
                }
            }
            Call::Trsm {
                side, uplo, m, n, ..
            }
            | Call::Trmm {
                side, uplo, m, n, ..
            } => {
                let order = match side {
                    Side::Left => *m,
                    Side::Right => *n,
                };
                let a = match uplo {
                    Uplo::Lower => g.lower_triangular(order, false),
                    Uplo::Upper => g.upper_triangular(order, false),
                };
                let b = g.general(*m, *n);
                PreparedCall {
                    call: call.clone(),
                    a,
                    pristine: b.clone(),
                    b: Some(b),
                    c: None,
                }
            }
            Call::Syrk { trans, n, k, .. } => {
                let a = match trans {
                    Trans::NoTrans => g.general(*n, *k),
                    Trans::Trans => g.general(*k, *n),
                };
                let c = g.general(*n, *n);
                PreparedCall {
                    call: call.clone(),
                    a,
                    b: None,
                    pristine: c.clone(),
                    c: Some(c),
                }
            }
            Call::TrtriUnb { uplo, n, .. } => {
                let a = match uplo {
                    Uplo::Lower => g.lower_triangular(*n, false),
                    Uplo::Upper => g.upper_triangular(*n, false),
                };
                PreparedCall {
                    call: call.clone(),
                    pristine: a.clone(),
                    a,
                    b: None,
                    c: None,
                }
            }
            Call::SylvUnb { m, n, .. } => {
                let l = g.lower_triangular(*m, false);
                let u = g.upper_triangular(*n, false);
                let x = g.general(*m, *n);
                PreparedCall {
                    call: call.clone(),
                    a: l,
                    b: Some(u),
                    pristine: x.clone(),
                    c: Some(x),
                }
            }
        }
    }

    /// The call this instance executes.
    pub fn call(&self) -> &Call {
        &self.call
    }

    /// Total size of the allocated operands in bytes.
    pub fn operand_bytes(&self) -> usize {
        let mut total = self.a.as_slice().len();
        if let Some(b) = &self.b {
            total += b.as_slice().len();
        }
        if let Some(c) = &self.c {
            total += c.as_slice().len();
        }
        total * std::mem::size_of::<f64>()
    }

    /// Restores the overwritten operand to its pristine contents so that
    /// repeated `run()` calls operate on identical data.
    pub fn reset(&mut self) {
        match &self.call {
            Call::Gemm { .. } | Call::Syrk { .. } | Call::SylvUnb { .. } => {
                if let Some(c) = &mut self.c {
                    // lint: allow(unwrap): the pristine copy was allocated with identical dimensions at construction
                    c.copy_from(&self.pristine).expect("pristine copy matches");
                }
            }
            Call::Trsm { .. } | Call::Trmm { .. } => {
                if let Some(b) = &mut self.b {
                    // lint: allow(unwrap): the pristine copy was allocated with identical dimensions at construction
                    b.copy_from(&self.pristine).expect("pristine copy matches");
                }
            }
            Call::TrtriUnb { .. } => {
                self.a
                    .copy_from(&self.pristine)
                    // lint: allow(unwrap): the pristine copy was allocated with identical dimensions at construction
                    .expect("pristine copy matches");
            }
        }
    }

    /// Executes the kernel once on the prepared operands.
    pub fn run(&mut self) {
        match &self.call {
            Call::Gemm {
                transa,
                transb,
                alpha,
                beta,
                ..
            } => {
                // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                let c = self.c.as_mut().expect("gemm has a C operand");
                dgemm(
                    *transa,
                    *transb,
                    *alpha,
                    self.a.as_ref(),
                    // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                    self.b.as_ref().expect("gemm has a B operand").as_ref(),
                    *beta,
                    c.as_mut(),
                );
            }
            Call::Trsm {
                side,
                uplo,
                transa,
                diag,
                alpha,
                ..
            } => {
                // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                let b = self.b.as_mut().expect("trsm has a B operand");
                dtrsm(
                    *side,
                    *uplo,
                    *transa,
                    *diag,
                    *alpha,
                    self.a.as_ref(),
                    b.as_mut(),
                );
            }
            Call::Trmm {
                side,
                uplo,
                transa,
                diag,
                alpha,
                ..
            } => {
                // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                let b = self.b.as_mut().expect("trmm has a B operand");
                dtrmm(
                    *side,
                    *uplo,
                    *transa,
                    *diag,
                    *alpha,
                    self.a.as_ref(),
                    b.as_mut(),
                );
            }
            Call::Syrk {
                uplo,
                trans,
                alpha,
                beta,
                ..
            } => {
                // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                let c = self.c.as_mut().expect("syrk has a C operand");
                dsyrk(*uplo, *trans, *alpha, self.a.as_ref(), *beta, c.as_mut());
            }
            Call::TrtriUnb { uplo, diag, .. } => {
                dtrtri_unb(*uplo, *diag, self.a.as_mut());
            }
            Call::SylvUnb { .. } => {
                // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                let x = self.c.as_mut().expect("sylv has an X operand");
                dsylv_unb(
                    self.a.as_ref(),
                    // lint: allow(unwrap): operand presence follows from the matched Call variant (set up in prepare)
                    self.b.as_ref().expect("sylv has a U operand").as_ref(),
                    x.as_mut(),
                );
            }
        }
    }

    /// Convenience: reset then run.
    pub fn reset_and_run(&mut self) {
        self.reset();
        self.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diag;

    #[test]
    fn prepared_gemm_runs_and_resets() {
        let call = Call::gemm(Trans::NoTrans, Trans::Trans, 12, 9, 7, 1.0, 0.5);
        let mut p = PreparedCall::new(&call, 1);
        assert_eq!(p.call(), &call);
        let before = p.c.as_ref().unwrap().clone();
        p.run();
        let after = p.c.as_ref().unwrap().clone();
        assert!(!after.approx_eq(&before, 1e-15));
        p.reset();
        assert!(p.c.as_ref().unwrap().approx_eq(&before, 0.0));
    }

    #[test]
    fn prepared_trsm_is_repeatable_after_reset() {
        let call = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            32,
            16,
            0.37,
        );
        let mut p = PreparedCall::new(&call, 2);
        p.reset_and_run();
        let first = p.b.as_ref().unwrap().clone();
        p.reset_and_run();
        let second = p.b.as_ref().unwrap().clone();
        assert!(first.approx_eq(&second, 0.0));
    }

    #[test]
    fn prepared_trtri_inverts_in_place() {
        let call = Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 24);
        let mut p = PreparedCall::new(&call, 3);
        let original = p.a.clone();
        p.run();
        assert!(!p.a.approx_eq(&original, 1e-15));
        p.reset();
        assert!(p.a.approx_eq(&original, 0.0));
    }

    #[test]
    fn prepared_sylv_and_syrk_run() {
        let mut p = PreparedCall::new(&Call::sylv_unb(10, 14), 4);
        p.reset_and_run();
        let mut p = PreparedCall::new(&Call::syrk(Uplo::Upper, Trans::Trans, 9, 6, 1.0, 0.0), 5);
        p.reset_and_run();
    }

    #[test]
    fn operand_bytes_accounts_for_all_operands() {
        let call = Call::gemm(Trans::NoTrans, Trans::NoTrans, 10, 10, 10, 1.0, 0.0);
        let p = PreparedCall::new(&call, 6);
        assert_eq!(p.operand_bytes(), 3 * 100 * 8);
        let call = Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 10);
        let p = PreparedCall::new(&call, 7);
        assert_eq!(p.operand_bytes(), 100 * 8);
    }

    #[test]
    fn deterministic_operands_for_same_seed() {
        let call = Call::gemm(Trans::NoTrans, Trans::NoTrans, 5, 5, 5, 1.0, 0.0);
        let p1 = PreparedCall::new(&call, 42);
        let p2 = PreparedCall::new(&call, 42);
        assert!(p1.a.approx_eq(&p2.a, 0.0));
        let p3 = PreparedCall::new(&call, 43);
        assert!(!p1.a.approx_eq(&p3.a, 0.0));
    }
}
