//! Unblocked LAPACK-style kernels.
//!
//! These are the recursion bottoms of the blocked algorithms in `dla-algos`:
//! the blocked triangular-inversion variants call `dtrtri_unb` on their
//! diagonal blocks, and the blocked Sylvester variants call `dsylv_unb` on
//! theirs.  The paper models these unblocked routines alongside the BLAS
//! kernels ("the unblocked versions of the blocked algorithms", Section IV-A).

use dla_mat::{MatMut, MatRef};

use crate::{Diag, Uplo};

/// In-place inversion of a triangular matrix (unblocked).
///
/// On exit the selected triangle of `a` holds the corresponding triangle of
/// `A^-1`.  For `Diag::Unit` the diagonal is implicitly 1 before *and* after
/// the inversion and is never referenced.
///
/// Panics if `a` is not square or a diagonal entry is zero (singular matrix)
/// for the non-unit case.
pub fn dtrtri_unb(uplo: Uplo, diag: Diag, mut a: MatMut<'_>) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "dtrtri_unb: A must be square");
    let unit = matches!(diag, Diag::Unit);
    match uplo {
        Uplo::Lower => {
            for j in 0..n {
                let djj = if unit { 1.0 } else { a.get(j, j) };
                assert!(
                    djj != 0.0,
                    "dtrtri_unb: singular matrix (zero diagonal at {j})"
                );
                let inv_jj = 1.0 / djj;
                if !unit {
                    a.set(j, j, inv_jj);
                }
                // Column j of the inverse below the diagonal, in increasing i,
                // using already-computed entries X[k, j] for k < i.
                for i in (j + 1)..n {
                    let mut acc = a.get(i, j) * inv_jj;
                    for k in (j + 1)..i {
                        acc += a.get(i, k) * a.get(k, j);
                    }
                    a.set(i, j, -acc / if unit { 1.0 } else { original_diag(&a, i) });
                }
            }
        }
        Uplo::Upper => {
            for j in (0..n).rev() {
                let djj = if unit { 1.0 } else { a.get(j, j) };
                assert!(
                    djj != 0.0,
                    "dtrtri_unb: singular matrix (zero diagonal at {j})"
                );
                let inv_jj = 1.0 / djj;
                if !unit {
                    a.set(j, j, inv_jj);
                }
                // Column j of the inverse above the diagonal, in decreasing i.
                for i in (0..j).rev() {
                    let mut acc = a.get(i, j) * inv_jj;
                    for k in (i + 1)..j {
                        acc += a.get(i, k) * a.get(k, j);
                    }
                    a.set(i, j, -acc / if unit { 1.0 } else { original_diag(&a, i) });
                }
            }
        }
    }
}

/// Reads the *original* diagonal entry `d_ii` of the matrix being inverted.
///
/// During the lower-triangular sweep, columns are processed left to right, so
/// when column `j` is being formed the diagonal entries `a[i][i]` for `i > j`
/// still hold their original (not yet inverted) values; for the upper sweep
/// (right to left) entries `i < j` are likewise untouched.  This helper exists
/// to make that invariant explicit at the call sites.
fn original_diag(a: &MatMut<'_>, i: usize) -> f64 {
    a.get(i, i)
}

/// Unblocked solve of the triangular Sylvester equation `L X + X U = C`.
///
/// `l` is lower triangular `m x m`, `u` is upper triangular `n x n`, and `x`
/// is `m x n`, holding `C` on entry and the solution `X` on exit.  The solve
/// proceeds elementwise: entry `(i, j)` only depends on entries above it in
/// its column and to its left in its row.
///
/// Panics if a pivot `L[i][i] + U[j][j]` is zero.
pub fn dsylv_unb(l: MatRef<'_>, u: MatRef<'_>, mut x: MatMut<'_>) {
    let m = x.rows();
    let n = x.cols();
    assert_eq!(l.rows(), m, "dsylv_unb: L order must equal X rows");
    assert_eq!(l.cols(), m, "dsylv_unb: L must be square");
    assert_eq!(u.rows(), n, "dsylv_unb: U order must equal X cols");
    assert_eq!(u.cols(), n, "dsylv_unb: U must be square");
    for j in 0..n {
        for i in 0..m {
            let mut acc = x.get(i, j);
            for k in 0..i {
                acc -= l.get(i, k) * x.get(k, j);
            }
            for k in 0..j {
                acc -= x.get(i, k) * u.get(k, j);
            }
            let pivot = l.get(i, i) + u.get(j, j);
            assert!(
                pivot.abs() > 0.0,
                "dsylv_unb: zero pivot L[{i}][{i}] + U[{j}][{j}]"
            );
            x.set(i, j, acc / pivot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{self, matmul};
    use dla_mat::Matrix;

    #[test]
    fn lower_inverse_matches_reference() {
        let mut g = MatrixGenerator::new(50);
        for n in [1usize, 2, 3, 5, 16, 33] {
            let l = g.lower_triangular(n, false);
            let mut a = l.clone();
            dtrtri_unb(Uplo::Lower, Diag::NonUnit, a.as_mut());
            let inv_ref = ops::invert_lower_triangular(&l, false).unwrap();
            let a_tri = ops::lower_triangular(&a, false).unwrap();
            assert!(
                a_tri.approx_eq(&inv_ref, 1e-9),
                "n={n}: diff {}",
                a_tri.max_abs_diff(&inv_ref)
            );
        }
    }

    #[test]
    fn upper_inverse_via_product() {
        let mut g = MatrixGenerator::new(51);
        let n = 20;
        let u = g.upper_triangular(n, false);
        let mut a = u.clone();
        dtrtri_unb(Uplo::Upper, Diag::NonUnit, a.as_mut());
        let inv = ops::upper_triangular(&a, false).unwrap();
        let u_tri = ops::upper_triangular(&u, false).unwrap();
        let prod = matmul(1.0, &u_tri, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(n), 1e-9));
    }

    #[test]
    fn unit_diagonal_inverse() {
        let mut g = MatrixGenerator::new(52);
        let n = 12;
        let l = g.lower_triangular(n, true);
        let mut a = l.clone();
        dtrtri_unb(Uplo::Lower, Diag::Unit, a.as_mut());
        let inv = ops::lower_triangular(&a, true).unwrap();
        let l_unit = ops::lower_triangular(&l, true).unwrap();
        let prod = matmul(1.0, &l_unit, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(n), 1e-10));
        // diagonal of the stored matrix must be untouched
        for i in 0..n {
            assert_eq!(a[(i, i)], l[(i, i)]);
        }
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let mut a = Matrix::identity(6);
        dtrtri_unb(Uplo::Lower, Diag::NonUnit, a.as_mut());
        assert!(a.approx_eq(&Matrix::identity(6), 1e-14));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_panics() {
        let mut a = Matrix::identity(3);
        a.set(1, 1, 0.0);
        dtrtri_unb(Uplo::Lower, Diag::NonUnit, a.as_mut());
    }

    #[test]
    fn sylvester_residual_is_small() {
        let mut g = MatrixGenerator::new(53);
        for (m, n) in [(1usize, 1usize), (4, 7), (13, 5), (24, 24)] {
            let l = g.lower_triangular(m, false);
            let u = g.upper_triangular(n, false);
            let c = g.general(m, n);
            let mut x = c.clone();
            dsylv_unb(l.as_ref(), u.as_ref(), x.as_mut());
            // residual L X + X U - C
            let lx = matmul(1.0, &l, &x).unwrap();
            let xu = matmul(1.0, &x, &u).unwrap();
            let mut resid = ops::add(&lx, &xu).unwrap();
            resid = ops::sub(&resid, &c).unwrap();
            assert!(
                resid.max_abs() < 1e-9,
                "m={m} n={n}: residual {}",
                resid.max_abs()
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn sylvester_zero_pivot_panics() {
        let mut l = Matrix::identity(2);
        l.set(0, 0, 1.0);
        let mut u = Matrix::identity(2);
        u.set(0, 0, -1.0); // L[0][0] + U[0][0] == 0
        let mut x = Matrix::zeros(2, 2);
        dsylv_unb(l.as_ref(), u.as_ref(), x.as_mut());
    }

    #[test]
    #[should_panic(expected = "dsylv_unb")]
    fn sylvester_shape_mismatch_panics() {
        let l = Matrix::identity(3);
        let u = Matrix::identity(4);
        let mut x = Matrix::zeros(3, 3);
        dsylv_unb(l.as_ref(), u.as_ref(), x.as_mut());
    }
}
