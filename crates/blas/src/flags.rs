//! BLAS flag arguments.
//!
//! The paper classifies BLAS arguments into flags, sizes, scalars, data and
//! leading dimensions (Section III-A).  Flags take one of two values each; the
//! Modeler builds one submodel per flag combination.

use std::fmt;

/// `side` argument: from which side a triangular matrix is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Apply from the left: `op(A) * B`.
    Left,
    /// Apply from the right: `B * op(A)`.
    Right,
}

/// `uplo` argument: which triangle of a matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// The lower triangle.
    Lower,
    /// The upper triangle.
    Upper,
}

/// `trans` argument: whether a matrix or its transpose is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the matrix as stored.
    NoTrans,
    /// Use the transpose of the matrix.
    Trans,
}

/// `diag` argument: whether a triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Diag {
    /// The diagonal is stored explicitly.
    NonUnit,
    /// The diagonal is implicitly all ones.
    Unit,
}

macro_rules! impl_flag {
    ($ty:ident, $a:ident => $ca:expr, $b:ident => $cb:expr) => {
        impl $ty {
            /// Both possible values of this flag, in BLAS order.
            pub const VALUES: [$ty; 2] = [$ty::$a, $ty::$b];

            /// The single-character BLAS spelling of the flag value.
            pub fn as_char(&self) -> char {
                match self {
                    $ty::$a => $ca,
                    $ty::$b => $cb,
                }
            }

            /// Parses the flag from its single-character BLAS spelling
            /// (case-insensitive).
            pub fn from_char(c: char) -> Option<$ty> {
                match c.to_ascii_uppercase() {
                    x if x == $ca => Some($ty::$a),
                    x if x == $cb => Some($ty::$b),
                    _ => None,
                }
            }

            /// 0/1 encoding used as part of submodel keys.
            pub fn as_index(&self) -> usize {
                match self {
                    $ty::$a => 0,
                    $ty::$b => 1,
                }
            }

            /// Inverse of [`Self::as_index`]; panics for values other than 0/1.
            pub fn from_index(i: usize) -> $ty {
                match i {
                    0 => $ty::$a,
                    1 => $ty::$b,
                    _ => panic!("flag index {i} out of range"),
                }
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.as_char())
            }
        }
    };
}

impl_flag!(Side, Left => 'L', Right => 'R');
impl_flag!(Uplo, Lower => 'L', Upper => 'U');
impl_flag!(Trans, NoTrans => 'N', Trans => 'T');
impl_flag!(Diag, NonUnit => 'N', Unit => 'U');

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_roundtrip() {
        for s in Side::VALUES {
            assert_eq!(Side::from_char(s.as_char()), Some(s));
        }
        for u in Uplo::VALUES {
            assert_eq!(Uplo::from_char(u.as_char()), Some(u));
        }
        for t in Trans::VALUES {
            assert_eq!(Trans::from_char(t.as_char()), Some(t));
        }
        for d in Diag::VALUES {
            assert_eq!(Diag::from_char(d.as_char()), Some(d));
        }
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(Side::from_char('r'), Some(Side::Right));
        assert_eq!(Uplo::from_char('u'), Some(Uplo::Upper));
        assert_eq!(Trans::from_char('t'), Some(Trans::Trans));
        assert_eq!(Diag::from_char('u'), Some(Diag::Unit));
        assert_eq!(Side::from_char('x'), None);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..2 {
            assert_eq!(Side::from_index(i).as_index(), i);
            assert_eq!(Uplo::from_index(i).as_index(), i);
            assert_eq!(Trans::from_index(i).as_index(), i);
            assert_eq!(Diag::from_index(i).as_index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = Side::from_index(2);
    }

    #[test]
    fn display_matches_blas_spelling() {
        assert_eq!(Side::Left.to_string(), "L");
        assert_eq!(Side::Right.to_string(), "R");
        assert_eq!(Uplo::Upper.to_string(), "U");
        assert_eq!(Trans::NoTrans.to_string(), "N");
        assert_eq!(Diag::Unit.to_string(), "U");
    }
}
