//! # dla-blas
//!
//! A from-scratch, pure-Rust subset of BLAS (and two unblocked LAPACK-style
//! kernels) sufficient to run and model the dense linear algebra workloads of
//! *Performance Modeling for Dense Linear Algebra* (Peise & Bientinesi,
//! SC 2012):
//!
//! * Level-3: [`dgemm`], [`dtrsm`], [`dtrmm`], [`dsyrk`] with the full BLAS
//!   flag semantics (`side`, `uplo`, `trans`, `diag`).
//! * Level-2: [`dgemv`], [`dger`], [`dtrsv`], [`dtrmv`].
//! * Level-1: [`daxpy`], [`dscal`], [`ddot`], [`dcopy`], [`dnrm2`].
//! * Unblocked kernels: [`dtrtri_unb`] (triangular inversion) and
//!   [`dsylv_unb`] (triangular Sylvester solve), the recursion bottoms of the
//!   blocked algorithm variants in `dla-algos`.
//! * A threaded `dgemm` ([`threaded::dgemm_threaded`]) built on
//!   `std::thread::scope`, used by the shared-memory experiments.
//! * [`Call`] — the routine-call descriptor (routine, flags, sizes, scalars
//!   and leading dimensions) that the Sampler measures, the Modeler models and
//!   the Predictor evaluates.  This is the exact analogue of the paper's
//!   argument tuples such as `(dtrsm, R, L, N, U, 512, 128, 0.37, A, 256, B, 512)`.
//! * [`flops`] — operation-count formulas per routine, used to convert ticks
//!   into the paper's `efficiency` metric.
//!
//! The kernels are reference-quality: correct for every flag combination and
//! cache-blocked where it matters (`dgemm`), but they do not attempt
//! hand-tuned micro-kernels.  The performance *modeling* experiments run on
//! the simulated machine of `dla-machine`; the real kernels exist so that the
//! algorithms can be verified numerically and so that a `NativeExecutor` can
//! measure genuine wall-clock behaviour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// Triangular kernels index several operands by one loop variable over partial
// ranges; the BLAS-style indexed form is clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

mod call;
mod flags;
mod gemm;
mod level1;
mod level2;
mod syrk;
mod trmm;
mod trsm;
mod unblocked;

pub mod execute;
pub mod flops;
pub mod inplace;
pub mod threaded;

pub use call::{Call, Routine};
pub use flags::{Diag, Side, Trans, Uplo};
pub use gemm::dgemm;
pub use level1::{daxpy, dcopy, ddot, dnrm2, dscal};
pub use level2::{dgemv, dger, dtrmv, dtrsv};
pub use syrk::dsyrk;
pub use trmm::dtrmm;
pub use trsm::dtrsm;
pub use unblocked::{dsylv_unb, dtrtri_unb};
