//! Floating-point operation counts.
//!
//! These formulas convert a routine call (or a whole algorithm) into its
//! useful flop count, which the paper divides by `ticks * fips` to obtain the
//! `efficiency` metric.  The counts follow the standard LAPACK working notes
//! conventions: one multiply and one add each count as one flop.

use crate::{Call, Side};

/// Flop count of a general matrix multiply `C <- alpha op(A) op(B) + beta C`.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flop count of a triangular solve with multiple right-hand sides.
pub fn trsm_flops(side: Side, m: usize, n: usize) -> f64 {
    match side {
        Side::Left => m as f64 * m as f64 * n as f64,
        Side::Right => m as f64 * n as f64 * n as f64,
    }
}

/// Flop count of a triangular matrix-matrix multiply.
pub fn trmm_flops(side: Side, m: usize, n: usize) -> f64 {
    trsm_flops(side, m, n)
}

/// Flop count of a symmetric rank-k update.
pub fn syrk_flops(n: usize, k: usize) -> f64 {
    n as f64 * (n as f64 + 1.0) * k as f64
}

/// Flop count of a general matrix-vector multiply.
pub fn gemv_flops(m: usize, n: usize) -> f64 {
    2.0 * m as f64 * n as f64
}

/// Flop count of inverting a triangular matrix of order `n`.
pub fn trtri_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + 2.0 * n / 3.0
}

/// Flop count of the triangular Sylvester solve `L X + X U = C` with
/// `L` of order `m` and `U` of order `n`.
pub fn sylv_flops(m: usize, n: usize) -> f64 {
    let m = m as f64;
    let n = n as f64;
    m * n * (m + n)
}

/// The "useful" flop count of the triangular inversion workload, as used by
/// the paper's efficiency formula for `trinv` (Section IV-A):
/// `efficiency = (n^3/6 + n^2/2 + n/3) * 2 / ticks / fips` — i.e. the minimal
/// operation count of the operation itself, independent of the algorithmic
/// variant executed.
pub fn trinv_useful_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 * (n * n * n / 6.0 + n * n / 2.0 + n / 3.0)
}

/// The useful flop count of the triangular Sylvester workload, matching the
/// paper's `efficiency = (n^3 + n^2) / (2 ticks)` formula up to the `fips`
/// normalisation applied by the machine model.
pub fn sylv_useful_flops(m: usize, n: usize) -> f64 {
    let m = m as f64;
    let n = n as f64;
    0.5 * (m * n * (m + n) + m * n)
}

/// Flop count of an arbitrary [`Call`].
pub fn call_flops(call: &Call) -> f64 {
    match call {
        Call::Gemm { m, n, k, .. } => gemm_flops(*m, *n, *k),
        Call::Trsm { side, m, n, .. } => trsm_flops(*side, *m, *n),
        Call::Trmm { side, m, n, .. } => trmm_flops(*side, *m, *n),
        Call::Syrk { n, k, .. } => syrk_flops(*n, *k),
        Call::TrtriUnb { n, .. } => trtri_flops(*n),
        Call::SylvUnb { m, n, .. } => sylv_flops(*m, *n),
    }
}

/// Flop count of a whole trace (sequence of calls).
pub fn trace_flops(calls: &[Call]) -> f64 {
    calls.iter().map(call_flops).sum()
}

/// Returns `true` if the call performs no floating-point work (some algorithm
/// traces contain degenerate calls with a zero dimension in early iterations).
pub fn is_empty_call(call: &Call) -> bool {
    let (sizes, len) = call.sizes_fixed();
    sizes[..len].contains(&0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diag, Trans, Uplo};

    #[test]
    fn gemm_flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
        assert_eq!(gemm_flops(0, 3, 4), 0.0);
    }

    #[test]
    fn trsm_flops_depends_on_side() {
        assert_eq!(trsm_flops(Side::Left, 10, 5), 500.0);
        assert_eq!(trsm_flops(Side::Right, 10, 5), 250.0);
        assert_eq!(trmm_flops(Side::Left, 10, 5), trsm_flops(Side::Left, 10, 5));
    }

    #[test]
    fn cubic_formulas_scale_correctly() {
        // Doubling n multiplies the cubic counts by ~8.
        let r1 = trtri_flops(100);
        let r2 = trtri_flops(200);
        assert!((r2 / r1 - 8.0).abs() < 0.1);
        let s1 = sylv_flops(100, 100);
        let s2 = sylv_flops(200, 200);
        assert!((s2 / s1 - 8.0).abs() < 0.01);
    }

    #[test]
    fn useful_flops_are_close_to_minimal_algorithm_cost() {
        // The sum of the per-call flops of an *efficient* trinv variant is
        // close to the useful count; variant 4 in the paper does ~3x more.
        let useful = trinv_useful_flops(1000);
        assert!(useful > 3.3e8 && useful < 3.4e8, "useful = {useful}");
        let sylv = sylv_useful_flops(1000, 1000);
        assert!(sylv > 1.0e9 && sylv < 1.01e9, "sylv = {sylv}");
    }

    #[test]
    fn call_flops_dispatch() {
        let c = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 0.0);
        assert_eq!(call_flops(&c), 1024.0);
        let c = Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 10);
        assert!((call_flops(&c) - (1000.0 / 3.0 + 20.0 / 3.0)).abs() < 1e-9);
        let c = Call::sylv_unb(10, 20);
        assert_eq!(call_flops(&c), 6000.0);
        let c = Call::syrk(Uplo::Lower, Trans::NoTrans, 10, 4, 1.0, 0.0);
        assert_eq!(call_flops(&c), 440.0);
    }

    #[test]
    fn trace_flops_sums() {
        let calls = vec![
            Call::gemm(Trans::NoTrans, Trans::NoTrans, 2, 2, 2, 1.0, 0.0),
            Call::gemm(Trans::NoTrans, Trans::NoTrans, 3, 3, 3, 1.0, 0.0),
        ];
        assert_eq!(trace_flops(&calls), 16.0 + 54.0);
        assert_eq!(trace_flops(&[]), 0.0);
    }

    #[test]
    fn empty_call_detection() {
        let c = Call::gemm(Trans::NoTrans, Trans::NoTrans, 0, 5, 5, 1.0, 0.0);
        assert!(is_empty_call(&c));
        let c = Call::gemm(Trans::NoTrans, Trans::NoTrans, 5, 5, 5, 1.0, 0.0);
        assert!(!is_empty_call(&c));
    }
}
