//! Multi-threaded `dgemm` built on `std::thread::scope`.
//!
//! The shared-memory experiment of the paper (Figure IV.4) links the blocked
//! algorithms against a multithreaded BLAS.  This module provides the native
//! counterpart: the columns of `C` are partitioned into contiguous strips, one
//! per worker, and each worker runs the sequential [`crate::dgemm`] kernel on
//! its strip.  Because the strips are disjoint blocks of `C`, the split is
//! expressed safely with [`dla_mat::MatMut::split_two_mut`].

use dla_mat::{MatMut, MatRef, Rect};

use crate::{dgemm, Trans};

/// `C <- alpha * op(A) * op(B) + beta * C` computed with `threads` workers.
///
/// Falls back to the sequential kernel for a single thread or tiny matrices.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_threaded(
    threads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    let n = c.cols();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 2 {
        dgemm(transa, transb, alpha, a, b, beta, c);
        return;
    }

    // Carve C into column strips and pair each with the matching strip of op(B).
    let mut strips: Vec<(usize, usize, MatMut<'_>)> = Vec::with_capacity(threads);
    let mut remaining = c;
    let mut col0 = 0usize;
    let rows = remaining.rows();
    for t in 0..threads {
        let cols_left = n - col0;
        let width = cols_left / (threads - t) + usize::from(!cols_left.is_multiple_of(threads - t));
        let width = width.min(cols_left);
        if width == 0 {
            break;
        }
        if col0 + width == n {
            strips.push((col0, width, remaining));
            break;
        }
        let (head, tail) = remaining.split_two_mut(
            Rect::new(0, 0, rows, width),
            Rect::new(0, width, rows, n - col0 - width),
        );
        strips.push((col0, width, head));
        remaining = tail;
        col0 += width;
    }

    std::thread::scope(|scope| {
        for (col0, width, strip) in strips {
            let b_strip = match transb {
                Trans::NoTrans => b.submatrix(Rect::new(0, col0, b.rows(), width)),
                Trans::Trans => b.submatrix(Rect::new(col0, 0, width, b.cols())),
            };
            scope.spawn(move || {
                dgemm(transa, transb, alpha, a, b_strip, beta, strip);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::Matrix;

    fn check_threads(threads: usize, m: usize, n: usize, k: usize) {
        let mut g = MatrixGenerator::new(70 + threads as u64);
        let a = g.general(m, k);
        let b = g.general(k, n);
        let c0 = g.general(m, n);
        let mut c_seq = c0.clone();
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.5,
            a.as_ref(),
            b.as_ref(),
            -0.5,
            c_seq.as_mut(),
        );
        let mut c_par = c0;
        dgemm_threaded(
            threads,
            Trans::NoTrans,
            Trans::NoTrans,
            1.5,
            a.as_ref(),
            b.as_ref(),
            -0.5,
            c_par.as_mut(),
        );
        assert!(
            c_par.approx_eq(&c_seq, 1e-11),
            "threads={threads}: diff {}",
            c_par.max_abs_diff(&c_seq)
        );
    }

    #[test]
    fn matches_sequential_for_various_thread_counts() {
        for threads in [1usize, 2, 3, 4, 8] {
            check_threads(threads, 33, 29, 41);
        }
    }

    #[test]
    fn more_threads_than_columns() {
        check_threads(16, 10, 3, 12);
    }

    #[test]
    fn transposed_operands() {
        let mut g = MatrixGenerator::new(80);
        let (m, n, k) = (17, 23, 11);
        let a = g.general(k, m);
        let b = g.general(n, k);
        let c0 = g.general(m, n);
        let mut c_seq = c0.clone();
        dgemm(
            Trans::Trans,
            Trans::Trans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c_seq.as_mut(),
        );
        let mut c_par = c0;
        dgemm_threaded(
            4,
            Trans::Trans,
            Trans::Trans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c_par.as_mut(),
        );
        assert!(c_par.approx_eq(&c_seq, 1e-11));
    }

    #[test]
    fn single_column_falls_back() {
        let mut g = MatrixGenerator::new(81);
        let a = g.general(5, 5);
        let b = g.general(5, 1);
        let mut c = Matrix::zeros(5, 1);
        dgemm_threaded(
            8,
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let mut expected = Matrix::zeros(5, 1);
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            expected.as_mut(),
        );
        assert!(c.approx_eq(&expected, 1e-12));
    }
}
