//! BLAS calls whose operands are blocks of a single parent matrix.
//!
//! The blocked triangular-inversion variants update blocks of one matrix `L`
//! using other blocks of the same matrix (e.g. `L20 <- L21 * L10 + L20`).
//! These wrappers carve the operand blocks out of the parent with
//! [`dla_mat::Matrix::split_one_mut`], which verifies that the written block
//! does not overlap any read block, and then forward to the regular kernels.

use dla_mat::{Matrix, Rect};

use crate::{dgemm, dtrmm, dtrsm, dtrtri_unb, Diag, Side, Trans, Uplo};

/// `parent[c] <- alpha * op(parent[a]) * op(parent[b]) + beta * parent[c]`.
///
/// Panics if the blocks are out of bounds or the output block overlaps an
/// input block.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_blocks(
    parent: &mut Matrix,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: Rect,
    b: Rect,
    beta: f64,
    c: Rect,
) {
    let (c_view, refs) = parent
        .split_one_mut(c, &[a, b])
        // lint: allow(unwrap): the blocked algorithms pass disjoint in-bounds blocks by construction
        .expect("dgemm_blocks: invalid or aliasing blocks");
    dgemm(transa, transb, alpha, refs[0], refs[1], beta, c_view);
}

/// `parent[b] <- alpha * op(parent[a])^-1 * parent[b]` (or right-side variant).
#[allow(clippy::too_many_arguments)]
pub fn dtrsm_blocks(
    parent: &mut Matrix,
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: f64,
    a: Rect,
    b: Rect,
) {
    let (b_view, refs) = parent
        .split_one_mut(b, &[a])
        // lint: allow(unwrap): the blocked algorithms pass disjoint in-bounds blocks by construction
        .expect("dtrsm_blocks: invalid or aliasing blocks");
    dtrsm(side, uplo, transa, diag, alpha, refs[0], b_view);
}

/// `parent[b] <- alpha * op(parent[a]) * parent[b]` (or right-side variant).
#[allow(clippy::too_many_arguments)]
pub fn dtrmm_blocks(
    parent: &mut Matrix,
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: f64,
    a: Rect,
    b: Rect,
) {
    let (b_view, refs) = parent
        .split_one_mut(b, &[a])
        // lint: allow(unwrap): the blocked algorithms pass disjoint in-bounds blocks by construction
        .expect("dtrmm_blocks: invalid or aliasing blocks");
    dtrmm(side, uplo, transa, diag, alpha, refs[0], b_view);
}

/// In-place inversion of the triangular block `parent[a]`.
pub fn dtrtri_block(parent: &mut Matrix, uplo: Uplo, diag: Diag, a: Rect) {
    let view = parent
        .block_mut(a)
        // lint: allow(unwrap): the blocked algorithms pass in-bounds blocks by construction
        .expect("dtrtri_block: block out of bounds");
    dtrtri_unb(uplo, diag, view);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{self, matmul};

    #[test]
    fn gemm_blocks_updates_only_target_block() {
        let mut g = MatrixGenerator::new(60);
        let mut m = g.general(12, 12);
        let original = m.clone();
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(0, 4, 4, 4);
        let c = Rect::new(4, 4, 4, 4);
        dgemm_blocks(&mut m, Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c);
        // target block equals product of source blocks
        let a_m = original.block(a).unwrap().to_matrix();
        let b_m = original.block(b).unwrap().to_matrix();
        let expected = matmul(1.0, &a_m, &b_m).unwrap();
        let got = m.block(c).unwrap().to_matrix();
        assert!(got.approx_eq(&expected, 1e-12));
        // everything outside c is untouched
        for j in 0..12 {
            for i in 0..12 {
                if !(4..8).contains(&i) || !(4..8).contains(&j) {
                    assert_eq!(m[(i, j)], original[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn trsm_and_trmm_blocks_match_out_of_place() {
        let mut g = MatrixGenerator::new(61);
        let tri = g.lower_triangular(4, false);
        let rhs = g.general(4, 6);
        // Assemble a parent holding the triangle at (0,0) and the rhs at (0,4).
        let mut parent = Matrix::zeros(4, 10);
        for j in 0..4 {
            for i in 0..4 {
                parent.set(i, j, tri[(i, j)]);
            }
        }
        for j in 0..6 {
            for i in 0..4 {
                parent.set(i, 4 + j, rhs[(i, j)]);
            }
        }
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(0, 4, 4, 6);
        dtrsm_blocks(
            &mut parent,
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a,
            b,
        );
        let mut expected = rhs.clone();
        crate::dtrsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            tri.as_ref(),
            expected.as_mut(),
        );
        assert!(parent
            .block(b)
            .unwrap()
            .to_matrix()
            .approx_eq(&expected, 1e-12));

        dtrmm_blocks(
            &mut parent,
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            a,
            b,
        );
        // trmm after trsm restores the original rhs
        assert!(parent.block(b).unwrap().to_matrix().approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn trtri_block_inverts_diagonal_block() {
        let mut g = MatrixGenerator::new(62);
        let mut m = Matrix::zeros(8, 8);
        let tri = g.lower_triangular(3, false);
        for j in 0..3 {
            for i in 0..3 {
                m.set(4 + i, 4 + j, tri[(i, j)]);
            }
        }
        dtrtri_block(&mut m, Uplo::Lower, Diag::NonUnit, Rect::new(4, 4, 3, 3));
        let inv = m.block(Rect::new(4, 4, 3, 3)).unwrap().to_matrix();
        let inv = ops::lower_triangular(&inv, false).unwrap();
        let prod = matmul(1.0, &tri, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    #[should_panic(expected = "aliasing")]
    fn overlapping_blocks_panic() {
        let mut m = Matrix::zeros(8, 8);
        dgemm_blocks(
            &mut m,
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            Rect::new(0, 0, 4, 4),
            Rect::new(0, 4, 4, 4),
            0.0,
            Rect::new(2, 2, 4, 4),
        );
    }

    use dla_mat::Matrix;
}
