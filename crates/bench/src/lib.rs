//! # dla-bench
//!
//! The benchmark and figure-regeneration harness.
//!
//! Every figure of the paper has a corresponding binary (`fig_i1`, `fig_ii1`,
//! ..., `fig_iv5`) that regenerates the figure's data series on the simulated
//! machine and prints them as plain-text tables; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each of them.  The criterion benches in
//! `benches/` measure the throughput of the underlying kernels, the model
//! evaluation and the modeling strategies themselves.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod support;
