//! Regeneration of every figure in the paper.
//!
//! Each `fig_*` function reproduces the data series of the corresponding
//! figure on the simulated machine and prints them as a plain-text table.
//! Absolute numbers differ from the paper (the substrate is a calibrated
//! simulator, not the authors' Harpertown/Sandy Bridge testbeds); the *shape*
//! of every result — which variant wins, how the groups separate, where the
//! optima and crossovers fall — is what `EXPERIMENTS.md` tracks.

use dla_core::algos::{SylvVariant, TrinvVariant};
use dla_core::blas::{Call, Diag, Side, Trans, Uplo};
use dla_core::machine::cost::estimate_ticks;
use dla_core::machine::presets::{
    harpertown_all_implementations, harpertown_openblas, sandy_bridge_openblas,
    sandy_bridge_openblas_threaded,
};
use dla_core::machine::{Locality, MachineConfig, SimExecutor};
use dla_core::model::{Polynomial, Region};
use dla_core::modeler::{
    Direction, ExpansionConfig, Modeler, RefinementConfig, SampleOracle, Strategy,
};
use dla_core::predict::modelset::Workload;
use dla_core::predict::ranking::{kendall_tau, top_choice_agrees};
use dla_core::predict::workloads::{
    measure_sylv, measure_trinv, predict_sylv, predict_trinv, MeasurementMode,
};
use dla_core::sampler::{Sampler, SamplerConfig};

use crate::support::{cached_service, print_header, print_labeled_row, print_row};

/// Problem sizes swept by the section-IV figures (multiples of 32 in
/// `[32, 1024]`; the paper uses multiples of 8, which is equally supported but
/// slower to print).
fn size_sweep(max: usize) -> Vec<usize> {
    (1..=max / 32).map(|i| i * 32).collect()
}

/// Figure I.1: trinv efficiency as a function of the problem size
/// (block size 96, one Harpertown core, OpenBLAS-like implementation).
pub fn fig_i1() {
    let machine = harpertown_openblas();
    print_header(
        "Fig I.1 — trinv efficiency vs matrix size (b = 96, 1 core Harpertown)",
        &["n", "variant1", "variant2", "variant3", "variant4"],
    );
    let mut executor = SimExecutor::new(machine, 1);
    for n in size_sweep(2048) {
        let mut row = vec![n as f64];
        for variant in TrinvVariant::ALL {
            let m = measure_trinv(&mut executor, variant, n, 96, MeasurementMode::Auto);
            row.push(m.efficiency);
        }
        print_row(&row);
    }
}

/// Figure I.2: trinv efficiency as a function of the block size (n = 1000).
pub fn fig_i2() {
    let machine = harpertown_openblas();
    print_header(
        "Fig I.2 — trinv efficiency vs block size (n = 1000, 1 core Harpertown)",
        &["b", "variant1", "variant2", "variant3", "variant4"],
    );
    let mut executor = SimExecutor::new(machine, 2);
    for b in (1..=32).map(|i| i * 8) {
        let mut row = vec![b as f64];
        for variant in TrinvVariant::ALL {
            let m = measure_trinv(&mut executor, variant, 1000, b, MeasurementMode::Auto);
            row.push(m.efficiency);
        }
        print_row(&row);
    }
}

/// Figure II.1: repeated execution of `dtrsm` with in-cache and out-of-cache
/// operands for the three implementations.
pub fn fig_ii1() {
    print_header(
        "Fig II.1 — repeated dtrsm(R,L,N,U,512,128,0.37): ticks per execution",
        &["first", "min", "median", "mean", "max", "std"],
    );
    // lint: allow(unwrap): figure harness: a malformed fixture call must fail the run loudly
    let call = Call::parse("dtrsm R L N U 512 128 0.37 256 512").expect("valid call");
    for machine in harpertown_all_implementations() {
        for locality in Locality::ALL {
            let executor = SimExecutor::new(machine.clone(), 3);
            let mut sampler = Sampler::new(
                executor,
                SamplerConfig {
                    locality,
                    repetitions: 1000,
                    warmup_discard: 1,
                },
            );
            let result = sampler.sample(&call);
            print_labeled_row(
                &format!("{} {}", machine.blas.name, locality.name()),
                &[
                    result.discarded.first().copied().unwrap_or(0.0),
                    result.ticks.min,
                    result.ticks.median,
                    result.ticks.mean,
                    result.ticks.max,
                    result.ticks.std_dev,
                ],
            );
        }
    }
}

/// Figure III.1: `dtrsm` ticks for every combination of the flag arguments.
pub fn fig_iii1() {
    print_header(
        "Fig III.1 — dtrsm ticks for all 16 flag combinations (m = n = 256)",
        &["openblas", "mkl", "atlas"],
    );
    let machines = harpertown_all_implementations();
    for side in Side::VALUES {
        for uplo in Uplo::VALUES {
            for trans in Trans::VALUES {
                for diag in Diag::VALUES {
                    let call = Call::Trsm {
                        side,
                        uplo,
                        transa: trans,
                        diag,
                        m: 256,
                        n: 256,
                        alpha: 0.5,
                        lda: 256,
                        ldb: 256,
                    };
                    let mut cells = Vec::new();
                    for machine in &machines {
                        let mut sampler = Sampler::new(
                            SimExecutor::new(machine.clone(), 4),
                            SamplerConfig::in_cache(10),
                        );
                        cells.push(sampler.sample(&call).ticks.median);
                    }
                    print_labeled_row(&format!("{side}{uplo}{trans}{diag}"), &cells);
                }
            }
        }
    }
}

/// The square-gemm tick measurements shared by Figures III.2 and III.3.
fn gemm_sweep() -> (Vec<usize>, Vec<Vec<f64>>) {
    let machines = harpertown_all_implementations();
    let sizes: Vec<usize> = (1..=128).map(|i| i * 8).collect();
    let mut series = vec![Vec::new(); machines.len()];
    for (mi, machine) in machines.iter().enumerate() {
        let mut sampler = Sampler::new(
            SimExecutor::new(machine.clone(), 5),
            SamplerConfig::in_cache(5),
        );
        for &n in &sizes {
            let call = Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, 0.0)
                .with_leading_dims(2500);
            series[mi].push(sampler.sample(&call).ticks.median);
        }
    }
    (sizes, series)
}

/// Figure III.2: `dgemm` ticks as a function of the size arguments.
pub fn fig_iii2() {
    print_header(
        "Fig III.2 — dgemm ticks vs n (square, in-cache)",
        &["n", "openblas", "mkl", "atlas"],
    );
    let (sizes, series) = gemm_sweep();
    for (i, &n) in sizes.iter().enumerate() {
        print_row(&[n as f64, series[0][i], series[1][i], series[2][i]]);
    }
}

/// Figure III.3: residual of a single least-squares polynomial fit of the
/// Figure III.2 data — the motivation for piecewise models.
pub fn fig_iii3() {
    print_header(
        "Fig III.3 — residual (ticks - quadratic fit) of the Fig III.2 series",
        &["n", "openblas", "mkl", "atlas"],
    );
    let (sizes, series) = gemm_sweep();
    let points: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![n as f64]).collect();
    let fits: Vec<Polynomial> = series
        .iter()
        // lint: allow(unwrap): figure harness: a failed reference fit must fail the run loudly
        .map(|values| Polynomial::fit(&points, values, 2).expect("fit succeeds"))
        .collect();
    let mut max_rel = [0.0f64; 3];
    for (i, &n) in sizes.iter().enumerate() {
        let mut row = vec![n as f64];
        for (mi, fit) in fits.iter().enumerate() {
            let resid = series[mi][i] - fit.eval(&[n as f64]);
            max_rel[mi] = max_rel[mi].max((resid / series[mi][i]).abs());
            row.push(resid);
        }
        print_row(&row);
    }
    println!(
        "# max relative residual: openblas {:.3}, mkl {:.3}, atlas {:.3} (a single polynomial is not enough)",
        max_rel[0], max_rel[1], max_rel[2]
    );
}

/// Figures III.4 / III.5: the construction sequences of the two modeling
/// strategies on the dtrsm parameter space (region list in creation order).
pub fn fig_iii4_iii5() {
    let machine = harpertown_openblas();
    let template = Call::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        8,
        8,
        0.5,
    );
    let space = Region::new(vec![8, 8], vec![1024, 1024]);

    println!(
        "# Fig III.4 — Model Expansion region construction (eps = 10%, toward origin, s_ini = 256)"
    );
    let mut sampler = Sampler::new(
        SimExecutor::new(machine.clone(), 6),
        SamplerConfig::in_cache(5),
    );
    let mut oracle = SampleOracle::new(&mut sampler, template.clone(), 8);
    let expansion = ExpansionConfig {
        error_bound: 0.10,
        direction: Direction::TowardOrigin,
        initial_size: 256,
        ..Default::default()
    };
    let model = expansion.build(&mut oracle, &space);
    for (i, region) in model.regions.iter().enumerate() {
        println!(
            "region {:>3}: {}  error {:.3}  samples {}",
            i + 1,
            region.region,
            region.error,
            region.samples_used
        );
    }

    println!("# Fig III.5 — Adaptive Refinement region construction (eps = 10%, s_min = 128)");
    let mut sampler = Sampler::new(SimExecutor::new(machine, 7), SamplerConfig::in_cache(5));
    let mut oracle = SampleOracle::new(&mut sampler, template, 8);
    let refinement = RefinementConfig {
        error_bound: 0.10,
        min_region_size: 128,
        ..Default::default()
    };
    let model = refinement.build(&mut oracle, &space);
    for (i, region) in model.regions.iter().enumerate() {
        println!(
            "region {:>3}: {}  error {:.3}  samples {}",
            i + 1,
            region.region,
            region.error,
            region.samples_used
        );
    }
}

/// Independent model-quality probe: mean relative error of the model's median
/// against the noiseless cost model on a dense grid.
fn probe_error(
    model: &dla_core::model::PiecewiseModel,
    machine: &MachineConfig,
    template: &Call,
    per_dim: usize,
) -> f64 {
    let grid = model.space.sample_grid(per_dim, 8);
    let mut acc = 0.0;
    let mut count = 0;
    for point in grid {
        let call = template.with_sizes(&point).with_leading_dims(2500);
        let truth = estimate_ticks(machine, &call, Locality::InCache);
        if truth <= 0.0 {
            continue;
        }
        let est = match model.eval(&point) {
            Ok(summary) => summary.median,
            Err(_) => continue,
        };
        acc += ((est - truth) / truth).abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

/// Runs one strategy configuration for Figures III.6–III.8 and returns
/// `(samples, regions, probe error)`.
fn run_strategy(strategy: Strategy) -> (usize, usize, f64) {
    let machine = harpertown_openblas();
    let template = Call::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        8,
        8,
        0.5,
    );
    let space = Region::new(vec![8, 8], vec![1024, 1024]);
    let mut modeler = Modeler::new(
        SimExecutor::new(machine.clone(), 8),
        Locality::InCache,
        5,
        strategy,
    );
    let (model, samples) = modeler.build_submodel(&template, &space);
    let error = probe_error(&model, &machine, &template, 25);
    (samples, model.region_count(), error)
}

/// The four Model Expansion configurations of Figure III.6.
fn expansion_configs() -> Vec<(&'static str, ExpansionConfig)> {
    vec![
        ("(a) eps=10% dir=up s=64", ExpansionConfig::paper_a()),
        ("(b) eps=10% dir=down s=64", ExpansionConfig::paper_b()),
        ("(c) eps=5% dir=down s=64", ExpansionConfig::paper_c()),
        ("(d) eps=5% dir=down s=32", ExpansionConfig::paper_d()),
    ]
}

/// The four Adaptive Refinement configurations of Figure III.7.
fn refinement_configs() -> Vec<(&'static str, RefinementConfig)> {
    vec![
        ("(a) eps=10% smin=64", RefinementConfig::paper_a()),
        ("(b) eps=5% smin=64", RefinementConfig::paper_b()),
        ("(c) eps=10% smin=32", RefinementConfig::paper_c()),
        ("(d) eps=5% smin=32", RefinementConfig::paper_d()),
    ]
}

/// Figure III.6: Model Expansion for dtrsm under four configurations.
pub fn fig_iii6() {
    print_header(
        "Fig III.6 — Model Expansion for dtrsm (samples, regions, probe error)",
        &["samples", "regions", "avg_error"],
    );
    for (label, config) in expansion_configs() {
        let (samples, regions, error) = run_strategy(Strategy::Expansion(config));
        print_labeled_row(label, &[samples as f64, regions as f64, error]);
    }
}

/// Figure III.7: Adaptive Refinement for dtrsm under four configurations.
pub fn fig_iii7() {
    print_header(
        "Fig III.7 — Adaptive Refinement for dtrsm (samples, regions, probe error)",
        &["samples", "regions", "avg_error"],
    );
    for (label, config) in refinement_configs() {
        let (samples, regions, error) = run_strategy(Strategy::Refinement(config));
        print_labeled_row(label, &[samples as f64, regions as f64, error]);
    }
}

/// Figure III.8: number of samples vs average error for both strategies.
pub fn fig_iii8() {
    print_header(
        "Fig III.8 — Model Expansion vs Adaptive Refinement (samples vs error)",
        &["samples", "avg_error"],
    );
    for (label, config) in expansion_configs() {
        let (samples, _, error) = run_strategy(Strategy::Expansion(config));
        print_labeled_row(&format!("expansion {label}"), &[samples as f64, error]);
    }
    for (label, config) in refinement_configs() {
        let (samples, _, error) = run_strategy(Strategy::Refinement(config));
        print_labeled_row(&format!("refinement {label}"), &[samples as f64, error]);
    }
}

/// Shared driver for the trinv prediction figures (IV.1, IV.3, IV.4).
fn trinv_prediction_figure(title: &str, machine: MachineConfig, sizes: &[usize], block: usize) {
    let service_ic = cached_service(&machine, Locality::InCache, &[Workload::Trinv]);
    let service_oc = cached_service(&machine, Locality::OutOfCache, &[Workload::Trinv]);

    print_header(
        title,
        &[
            "n",
            "v1_meas",
            "v2_meas",
            "v3_meas",
            "v4_meas",
            "v1_pred",
            "v2_pred",
            "v3_pred",
            "v4_pred",
            "v1_pred_oc",
            "v2_pred_oc",
            "v3_pred_oc",
            "v4_pred_oc",
        ],
    );
    let mut exact_rank = 0usize;
    let mut top1 = 0usize;
    let mut tau_acc = 0.0;
    let mut executor = SimExecutor::new(machine.clone(), 9);
    for &n in sizes {
        let mut measured = Vec::new();
        let mut pred_ic = Vec::new();
        let mut pred_oc = Vec::new();
        for variant in TrinvVariant::ALL {
            measured.push(
                measure_trinv(&mut executor, variant, n, block, MeasurementMode::Auto).efficiency,
            );
            pred_ic.push(
                predict_trinv(&service_ic, variant, n, block)
                    // lint: allow(unwrap): figure harness: a missing prediction must fail the run loudly
                    .expect("in-cache prediction")
                    .median,
            );
            pred_oc.push(
                predict_trinv(&service_oc, variant, n, block)
                    // lint: allow(unwrap): figure harness: a missing prediction must fail the run loudly
                    .expect("out-of-cache prediction")
                    .median,
            );
        }
        let tau = kendall_tau(&pred_ic, &measured);
        tau_acc += tau;
        if tau == 1.0 {
            exact_rank += 1;
        }
        if top_choice_agrees(&pred_ic, &measured, false) {
            top1 += 1;
        }
        let mut row = vec![n as f64];
        row.extend(measured);
        row.extend(pred_ic);
        row.extend(pred_oc);
        print_row(&row);
    }
    println!(
        "# ranking summary: exact ranking {}/{} sizes, best-variant agreement {}/{}, mean Kendall tau {:.3}",
        exact_rank,
        sizes.len(),
        top1,
        sizes.len(),
        tau_acc / sizes.len() as f64
    );
}

/// Figure IV.1: trinv predictions vs observations on Harpertown, plus the
/// statistical prediction bands of Figure IV.1c.
pub fn fig_iv1() {
    let machine = harpertown_openblas();
    trinv_prediction_figure(
        "Fig IV.1 — trinv predictions vs observations (Harpertown, b = 96): measured (Auto locality), in-cache and out-of-cache median predictions",
        machine.clone(),
        &size_sweep(1024),
        96,
    );
    // Fig IV.1c: statistical quantities for the large-size region.
    let service = cached_service(&machine, Locality::InCache, &[Workload::Trinv]);
    print_header(
        "Fig IV.1c — statistical prediction (n >= 512): per-variant bands",
        &[
            "n",
            "variant",
            "measured",
            "pred_min",
            "pred_median",
            "pred_mean",
            "pred_max",
        ],
    );
    let mut executor = SimExecutor::new(machine, 10);
    for &n in &[512usize, 640, 768, 896, 1024] {
        for variant in TrinvVariant::ALL {
            let m = measure_trinv(&mut executor, variant, n, 96, MeasurementMode::Auto);
            // lint: allow(unwrap): figure harness: a missing prediction must fail the run loudly
            let p = predict_trinv(&service, variant, n, 96).expect("prediction");
            print_row(&[
                n as f64,
                variant.id() as f64,
                m.efficiency,
                p.min,
                p.median,
                p.mean,
                p.max,
            ]);
        }
    }
}

/// Figure IV.2: block-size optimisation for trinv (n = 1000).
pub fn fig_iv2() {
    let machine = harpertown_openblas();
    let service = cached_service(&machine, Locality::InCache, &[Workload::Trinv]);
    print_header(
        "Fig IV.2 — block-size optimisation for trinv (n = 1000, Harpertown)",
        &[
            "b", "v1_meas", "v2_meas", "v3_meas", "v4_meas", "v1_pred", "v2_pred", "v3_pred",
            "v4_pred",
        ],
    );
    let mut executor = SimExecutor::new(machine.clone(), 11);
    let mut best_pred = [(0usize, 0.0f64); 4];
    let mut best_meas = [(0usize, 0.0f64); 4];
    for b in (1..=32).map(|i| i * 8) {
        let mut row = vec![b as f64];
        let mut meas = Vec::new();
        let mut pred = Vec::new();
        for (vi, variant) in TrinvVariant::ALL.iter().enumerate() {
            let m = measure_trinv(&mut executor, *variant, 1000, b, MeasurementMode::Auto);
            // lint: allow(unwrap): figure harness: a missing prediction must fail the run loudly
            let p = predict_trinv(&service, *variant, 1000, b).expect("prediction");
            if m.efficiency > best_meas[vi].1 {
                best_meas[vi] = (b, m.efficiency);
            }
            if p.median > best_pred[vi].1 {
                best_pred[vi] = (b, p.median);
            }
            meas.push(m.efficiency);
            pred.push(p.median);
        }
        row.extend(meas);
        row.extend(pred);
        print_row(&row);
    }
    for (vi, variant) in TrinvVariant::ALL.iter().enumerate() {
        println!(
            "# {}: measured optimum b = {} (eff {:.3}), predicted optimum b = {} (eff {:.3})",
            variant.name(),
            best_meas[vi].0,
            best_meas[vi].1,
            best_pred[vi].0,
            best_pred[vi].1
        );
    }
}

/// Figure IV.3: trinv predictions vs observations on Sandy Bridge (1 core).
pub fn fig_iv3() {
    let machine = sandy_bridge_openblas();
    let sizes: Vec<usize> = (16..=32).map(|i| i * 32).collect();
    trinv_prediction_figure(
        "Fig IV.3 — trinv predictions vs observations (Sandy Bridge, 1 core, b = 96)",
        machine,
        &sizes,
        96,
    );
}

/// Figure IV.4: trinv with the multithreaded BLAS on all 8 Sandy Bridge cores.
pub fn fig_iv4() {
    let machine = sandy_bridge_openblas_threaded();
    trinv_prediction_figure(
        "Fig IV.4 — trinv predictions vs observations (Sandy Bridge, 8 threads, b = 96)",
        machine.clone(),
        &size_sweep(1024),
        96,
    );
    // Crossover diagnostics (variants 3 and 4; variants 1/2 vs 3).
    let mut executor = SimExecutor::new(machine, 12);
    let mut crossover = None;
    let mut v12_beat_v3 = 0usize;
    let sizes = size_sweep(1024);
    let mut prev: Option<(f64, f64)> = None;
    for &n in &sizes {
        let effs: Vec<f64> = TrinvVariant::ALL
            .iter()
            .map(|&v| measure_trinv(&mut executor, v, n, 96, MeasurementMode::Auto).efficiency)
            .collect();
        if effs[0] > effs[2] && effs[1] > effs[2] {
            v12_beat_v3 += 1;
        }
        if let Some((p3, p4)) = prev {
            if (p3 - p4).signum() != (effs[2] - effs[3]).signum() && crossover.is_none() {
                crossover = Some(n);
            }
        }
        prev = Some((effs[2], effs[3]));
    }
    match crossover {
        Some(n) => println!("# variants 3 and 4 cross over near n = {n}"),
        None => println!("# variants 3 and 4 do not cross over in the measured range"),
    }
    println!(
        "# variants 1 and 2 are both faster than variant 3 at {}/{} sizes",
        v12_beat_v3,
        sizes.len()
    );
}

/// Figure IV.5: the sixteen Sylvester variants, predictions vs observations.
pub fn fig_iv5() {
    let machine = harpertown_openblas();
    let service = cached_service(&machine, Locality::InCache, &[Workload::Sylv]);
    let sizes: Vec<usize> = (1..=16).map(|i| i * 64).collect();
    let variants = SylvVariant::all();

    print_header(
        "Fig IV.5 — sylv efficiency, measured (simulated execution), 16 variants",
        &["n"],
    );
    println!("# columns: n, then variants 1..16");
    let mut executor = SimExecutor::new(machine.clone(), 13);
    let mut measured_at_max = Vec::new();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for v in &variants {
            let m = measure_sylv(&mut executor, *v, n, 96, MeasurementMode::Auto);
            // lint: allow(unwrap): the size list is a non-empty literal above
            if n == *sizes.last().unwrap() {
                measured_at_max.push(m.efficiency);
            }
            row.push(m.efficiency);
        }
        print_row(&row);
    }

    print_header(
        "Fig IV.5 — sylv efficiency, predicted (in-cache models), 16 variants",
        &["n"],
    );
    println!("# columns: n, then variants 1..16");
    let mut predicted_at_max = Vec::new();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for v in &variants {
            let p = predict_sylv(&service, *v, n, 96)
                // lint: allow(unwrap): figure harness: a missing prediction must fail the run loudly
                .expect("prediction")
                .median;
            // lint: allow(unwrap): the size list is a non-empty literal above
            if n == *sizes.last().unwrap() {
                predicted_at_max.push(p);
            }
            row.push(p);
        }
        print_row(&row);
    }

    // Group separation and top-4 ordering at the largest size.
    // lint: allow(unwrap): the size list is a non-empty literal above
    let nmax = *sizes.last().unwrap();
    let order_by = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        // lint: allow(unwrap): efficiency scores are finite by construction
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));
        idx.iter().map(|&i| i + 1).collect()
    };
    let measured_order = order_by(&measured_at_max);
    let predicted_order = order_by(&predicted_at_max);
    println!("# at n = {nmax}:");
    println!("#   measured ranking  (best to worst): {measured_order:?}");
    println!("#   predicted ranking (best to worst): {predicted_order:?}");
    println!(
        "#   measured top-4 {:?} vs predicted top-4 {:?}",
        &measured_order[..4],
        &predicted_order[..4]
    );
    println!(
        "#   Kendall tau between predicted and measured scores: {:.3}",
        kendall_tau(&predicted_at_max, &measured_at_max)
    );
}
