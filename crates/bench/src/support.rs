//! Shared plumbing for the figure binaries: cached model repositories and
//! table formatting.

use std::path::PathBuf;

use dla_core::machine::{Locality, MachineConfig};
use dla_core::model::ModelRepository;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::ModelService;

/// Where cached model repositories are stored between figure runs.
fn cache_dir() -> PathBuf {
    let dir = std::env::var("DLAPERF_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("dlaperf-model-cache"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// The model-set configuration used by all section-IV figures.
pub fn figure_model_config() -> ModelSetConfig {
    ModelSetConfig {
        max_size: 1024,
        unblocked_max: 256,
        gemm_k_max: 1024,
        repetitions: 5,
        strategy: dla_core::Strategy::paper_default(),
        workers: 0,
    }
}

/// Builds (or loads from the on-disk cache) the model repository for a machine
/// configuration, locality and set of workloads.
///
/// Building the full repository takes a few seconds; the figures of
/// Section IV all share the same repository, so caching it keeps the whole
/// figure suite fast and — more importantly — ensures every figure uses the
/// *same* models, as in the paper.
pub fn cached_repository(
    machine: &MachineConfig,
    locality: Locality,
    workloads: &[Workload],
) -> ModelRepository {
    // Cache-busting tag: bump whenever model construction produces different
    // output for the same seed/config (e.g. the per-task executor-fork noise
    // streams of the parallel build replaced the old single sequential
    // stream), so stale pre-change caches are never served.
    const BUILD_SCHEME: &str = "fork1";
    let tag: String = workloads
        .iter()
        .map(|w| match w {
            Workload::Trinv => "trinv",
            Workload::Sylv => "sylv",
        })
        .collect::<Vec<_>>()
        .join("-");
    let path = cache_dir().join(format!(
        "{}-{}-{}-{}.models",
        machine.id(),
        locality.name(),
        tag,
        BUILD_SCHEME
    ));
    if let Ok(repo) = ModelRepository::load_file(&path) {
        if !repo.is_empty() {
            return repo;
        }
    }
    let (repo, _) = build_repository(machine, locality, 0x5eed, &figure_model_config(), workloads);
    repo.save_file(&path).ok();
    repo
}

/// A [`ModelService`] over the cached repository for a machine, locality and
/// set of workloads — the serving-layer entry point the figure binaries use.
pub fn cached_service(
    machine: &MachineConfig,
    locality: Locality,
    workloads: &[Workload],
) -> ModelService {
    let repo = cached_repository(machine, locality, workloads);
    ModelService::new(repo, machine.clone(), locality)
}

/// Prints a table header: a title line, a rule and the column names.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    let head: Vec<String> = columns.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", head.join(" "));
}

/// Prints one row of numeric cells (first cell is typically the x value).
pub fn print_row(cells: &[f64]) {
    let row: Vec<String> = cells.iter().map(|v| format_cell(*v)).collect();
    println!("{}", row.join(" "));
}

/// Prints one row with a leading text label.
pub fn print_labeled_row(label: &str, cells: &[f64]) {
    let row: Vec<String> = cells.iter().map(|v| format_cell(*v)).collect();
    println!("{label:>14} {}", row.join(" "));
}

fn format_cell(v: f64) -> String {
    if v == 0.0 {
        format!("{:>14}", "0")
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:>14.4e}")
    } else {
        format!("{v:>14.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_core::machine::presets::harpertown_openblas;

    #[test]
    fn formatting_helpers_do_not_panic() {
        print_header("test", &["a", "b"]);
        print_row(&[1.0, 2.5e9]);
        print_labeled_row("variant 1", &[0.5, 0.0, 1e-9]);
    }

    #[test]
    fn cached_repository_roundtrip() {
        // Use a private cache dir to avoid clobbering the real cache.
        std::env::set_var(
            "DLAPERF_CACHE_DIR",
            std::env::temp_dir().join("dlaperf-test-cache"),
        );
        let machine = harpertown_openblas();
        // A tiny configuration would still be slow here, so only exercise the
        // cache path with an empty workload list.
        let repo = cached_repository(&machine, Locality::InCache, &[]);
        assert!(repo.is_empty());
        std::env::remove_var("DLAPERF_CACHE_DIR");
    }
}
