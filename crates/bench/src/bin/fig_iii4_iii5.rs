//! Regenerates the data of the paper's Figure III4_III5 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_iii4_iii5();
}
