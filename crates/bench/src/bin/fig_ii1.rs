//! Regenerates the data of the paper's Figure II1 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_ii1();
}
