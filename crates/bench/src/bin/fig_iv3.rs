//! Regenerates the data of the paper's Figure IV3 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_iv3();
}
