//! Regenerates the data of the paper's Figure I1 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_i1();
}
