//! Regenerates the data of the paper's Figure III8 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_iii8();
}
