//! Regenerates the data of the paper's Figure I2 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_i2();
}
