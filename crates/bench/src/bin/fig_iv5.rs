//! Regenerates the data of the paper's Figure IV5 (see `dla_bench::figures`).
fn main() {
    dla_bench::figures::fig_iv5();
}
