//! Criterion benchmarks of the modeling layer: how expensive it is to build a
//! model with either strategy, and how fast the simulated Sampler is.

use criterion::{criterion_group, criterion_main, Criterion};
use dla_core::blas::{Call, Diag, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::{Locality, SimExecutor};
use dla_core::model::Region;
use dla_core::modeler::{ExpansionConfig, Modeler, RefinementConfig, Strategy};
use dla_core::sampler::{Sampler, SamplerConfig};

fn trsm_template() -> Call {
    Call::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        8,
        8,
        0.5,
    )
}

fn bench_sampler(c: &mut Criterion) {
    c.bench_function("sampler_dtrsm_256_x10", |bench| {
        let mut sampler = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 1),
            SamplerConfig::in_cache(10),
        );
        let call = trsm_template().with_sizes(&[256, 256]);
        bench.iter(|| sampler.sample(&call))
    });
}

fn bench_strategies(c: &mut Criterion) {
    let space = Region::new(vec![8, 8], vec![512, 512]);
    c.bench_function("modeler_adaptive_refinement_512", |bench| {
        bench.iter(|| {
            let mut modeler = Modeler::new(
                SimExecutor::noiseless(harpertown_openblas()),
                Locality::InCache,
                1,
                Strategy::Refinement(RefinementConfig {
                    error_bound: 0.10,
                    min_region_size: 64,
                    grid_per_dim: 3,
                    degree: 2,
                }),
            );
            modeler.build_submodel(&trsm_template(), &space)
        })
    });
    c.bench_function("modeler_model_expansion_512", |bench| {
        bench.iter(|| {
            let mut modeler = Modeler::new(
                SimExecutor::noiseless(harpertown_openblas()),
                Locality::InCache,
                1,
                Strategy::Expansion(ExpansionConfig {
                    error_bound: 0.10,
                    initial_size: 128,
                    grid_per_dim: 3,
                    ..Default::default()
                }),
            );
            modeler.build_submodel(&trsm_template(), &space)
        })
    });
}

criterion_group!(modeling, bench_sampler, bench_strategies);
criterion_main!(modeling);
