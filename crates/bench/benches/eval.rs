//! Criterion benchmarks of the compiled evaluation engine against the
//! reference (naive) evaluator: piecewise point evaluation, cold (cache-miss)
//! trace prediction, and a block-size sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dla_core::blas::{Call, Trans};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::Locality;
use dla_core::mat::stats::Summary;
use dla_core::model::{submodel_key, BatchPoints, CompiledPiecewise, PiecewiseModel, Region};
use dla_core::predict::blocksize::optimize_block_size_trinv;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::TraceEvaluator;
use dla_core::{
    algos::trinv_trace, MachineConfig, ModelRepository, Predictor, Routine, TrinvVariant,
};

/// The pre-compiled-engine evaluator: repository lookup plus
/// `RoutineModel::estimate` per call.  This is the "before" side of every
/// comparison below.
struct NaiveEvaluator {
    repository: ModelRepository,
    machine: MachineConfig,
}

impl TraceEvaluator for NaiveEvaluator {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn predict_call(&self, call: &Call) -> dla_core::model::Result<Summary> {
        self.repository
            .get(call.routine(), &self.machine.id(), Locality::InCache)
            .ok_or_else(|| {
                dla_core::model::ModelError::MissingSubmodel(format!(
                    "no model for {}",
                    call.routine()
                ))
            })?
            .estimate(call)
    }
}

fn setup() -> (ModelRepository, MachineConfig) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(512);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    (repo, machine)
}

/// The 3-D gemm submodel (the most region-rich piecewise model of the set)
/// and a point grid over its space.
fn gemm_submodel(
    repo: &ModelRepository,
    machine: &MachineConfig,
) -> (PiecewiseModel, Vec<Vec<usize>>) {
    let model = repo
        .get(Routine::Gemm, &machine.id(), Locality::InCache)
        .expect("gemm model");
    let template = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
    let submodel = model
        .submodel(&submodel_key(&template))
        .expect("gemm NN submodel")
        .clone();
    let space = Region::new(model.space.lo().to_vec(), model.space.hi().to_vec());
    let points = space.sample_grid(8, 1);
    (submodel, points)
}

fn bench_point_eval(c: &mut Criterion) {
    let (repo, machine) = setup();
    let (submodel, points) = gemm_submodel(&repo, &machine);
    let compiled = CompiledPiecewise::compile(&submodel).expect("compilable submodel");
    assert!(compiled.is_indexed());
    let mut group = c.benchmark_group("piecewise_point_eval");
    group.bench_function("naive_512pts", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &points {
                acc += submodel.eval(black_box(p)).unwrap().median;
            }
            acc
        })
    });
    group.bench_function("compiled_512pts", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &points {
                acc += compiled.eval(black_box(p)).unwrap().median;
            }
            acc
        })
    });
    group.bench_function("compiled_batch_512pts", |bench| {
        let batch = BatchPoints::from_rows(points[0].len(), &points).unwrap();
        let mut out = Vec::new();
        bench.iter(|| {
            compiled
                .eval_batch_into(black_box(&batch), &mut out)
                .unwrap();
            out.iter().map(|s| s.median).sum::<f64>()
        })
    });
    group.finish();
}

/// Batch-evaluation throughput at batch sizes 1 / 64 / 4096, against the
/// single-point compiled `eval` over the same points — the satellite
/// measurement behind the EXPERIMENTS.md throughput table.
fn bench_batch_throughput(c: &mut Criterion) {
    let (repo, machine) = setup();
    let (submodel, grid) = gemm_submodel(&repo, &machine);
    let compiled = CompiledPiecewise::compile(&submodel).expect("compilable submodel");
    let mut group = c.benchmark_group("batch_eval_throughput");
    for batch in [1usize, 64, 4096] {
        let points: Vec<Vec<usize>> = (0..batch).map(|i| grid[i % grid.len()].clone()).collect();
        let soa = BatchPoints::from_rows(grid[0].len(), &points).unwrap();
        let mut out = Vec::new();
        group.bench_function(format!("batched/{batch}"), |bench| {
            bench.iter(|| {
                compiled.eval_batch_into(black_box(&soa), &mut out).unwrap();
                out.len()
            })
        });
        group.bench_function(format!("pointwise/{batch}"), |bench| {
            bench.iter(|| {
                let mut acc = 0.0;
                for p in &points {
                    acc += compiled.eval(black_box(p)).unwrap().median;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_cold_trace_prediction(c: &mut Criterion) {
    let (repo, machine) = setup();
    let naive = NaiveEvaluator {
        repository: repo.clone(),
        machine: machine.clone(),
    };
    let predictor = Predictor::new(&repo, machine, Locality::InCache);
    let trace = trinv_trace(TrinvVariant::V3, 448, 96, 448);
    let mut group = c.benchmark_group("cold_trace_prediction");
    group.bench_function("naive_trinv_v3_n448", |bench| {
        bench.iter(|| naive.predict_trace(black_box(&trace)).unwrap())
    });
    group.bench_function("compiled_trinv_v3_n448", |bench| {
        bench.iter(|| predictor.predict_trace(black_box(&trace)).unwrap())
    });
    group.finish();
}

fn bench_blocksize_sweep(c: &mut Criterion) {
    let (repo, machine) = setup();
    let naive = NaiveEvaluator {
        repository: repo.clone(),
        machine: machine.clone(),
    };
    let predictor = Predictor::new(&repo, machine, Locality::InCache);
    let candidates: Vec<usize> = (1..=32).map(|i| i * 8).collect();
    let mut group = c.benchmark_group("blocksize_sweep_trinv_v3_n448");
    group.bench_function("naive", |bench| {
        bench.iter(|| {
            optimize_block_size_trinv(&naive, TrinvVariant::V3, 448, black_box(&candidates))
                .unwrap()
        })
    });
    group.bench_function("compiled", |bench| {
        bench.iter(|| {
            optimize_block_size_trinv(&predictor, TrinvVariant::V3, 448, black_box(&candidates))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    eval,
    bench_point_eval,
    bench_batch_throughput,
    bench_cold_trace_prediction,
    bench_blocksize_sweep
);
criterion_main!(eval);
