//! Criterion benchmarks of the concurrency layer: parallel model
//! construction speedup over the serial build, and multi-threaded query
//! throughput of the [`ModelService`] serving layer.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::Locality;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::{Call, ModelService};

/// Worker counts the build benchmark sweeps: serial, two fixed fan-outs (the
/// threaded path is exercised even on a single-core host) and whatever the
/// host offers.
fn worker_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&available) {
        counts.push(available);
    }
    counts.sort_unstable();
    counts
}

fn bench_parallel_build(c: &mut Criterion) {
    let machine = harpertown_openblas();
    let mut group = c.benchmark_group("build_repository_trinv_sylv_256");
    for workers in worker_counts() {
        let cfg = ModelSetConfig::quick(256).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |bench, _| {
                bench.iter(|| {
                    build_repository(
                        &machine,
                        Locality::InCache,
                        1,
                        &cfg,
                        &[Workload::Trinv, Workload::Sylv],
                    )
                })
            },
        );
    }
    group.finish();
}

fn query_mix() -> Vec<Call> {
    use dla_core::blas::Trans;
    (1..=16)
        .map(|i| Call::gemm(Trans::NoTrans, Trans::NoTrans, i * 16, i * 16, 64, 1.0, 1.0))
        .collect()
}

fn bench_service_throughput(c: &mut Criterion) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let service = Arc::new(ModelService::new(repo, machine, Locality::InCache));
    let calls = query_mix();
    // 4096 predictions per iteration, split across the thread count.
    const TOTAL_QUERIES: usize = 4096;
    let mut group = c.benchmark_group("service_predict_call_4096");
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let per_thread = TOTAL_QUERIES / threads;
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let service = Arc::clone(&service);
                            let calls = &calls;
                            scope.spawn(move || {
                                for i in 0..per_thread {
                                    let call = &calls[i % calls.len()];
                                    let _ = service.predict_call(call).unwrap();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();

    // The uncached baseline: snapshot predictors evaluate the models on
    // every query.
    let mut group = c.benchmark_group("predictor_predict_call_4096");
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let per_thread = TOTAL_QUERIES / threads;
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let predictor = service.predictor();
                            let calls = &calls;
                            scope.spawn(move || {
                                for i in 0..per_thread {
                                    let call = &calls[i % calls.len()];
                                    let _ = predictor.predict_call(call).unwrap();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(concurrency, bench_parallel_build, bench_service_throughput);
criterion_main!(concurrency);
