//! Criterion benchmarks of the fleet serving tier: the overhead of a fresh
//! fleet-routed query over a bare [`ModelService`] prediction, and the cost
//! of the two degraded answer paths (stale snapshot, efficiency-scaled
//! proxy) relative to the fresh path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dla_core::blas::{Diag, Side, Trans, Uplo};
use dla_core::machine::presets::{
    harpertown_openblas, sandy_bridge_openblas, sandy_bridge_openblas_threaded,
};
use dla_core::machine::{ChaosConfig, Locality};
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::{
    ChaosShard, FleetBuilder, FleetConfig, FleetQuery, FleetService, Priority, ServiceClient,
    ShardClient,
};
use dla_core::{Call, MachineConfig, ModelRepository, ModelService};

fn repositories() -> Vec<(MachineConfig, ModelRepository)> {
    let cfg = ModelSetConfig::quick(64);
    [
        harpertown_openblas(),
        sandy_bridge_openblas(),
        sandy_bridge_openblas_threaded(),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, machine)| {
        let (repo, _) = build_repository(
            &machine,
            Locality::InCache,
            11 + i as u64,
            &cfg,
            &[Workload::Trinv],
        );
        (machine, repo)
    })
    .collect()
}

fn serving_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [12usize, 28, 44, 60] {
        for n in [16usize, 36, 52] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

fn calibration_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [8usize, 20, 36, 52, 64] {
        for n in [12usize, 28, 44, 56] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

/// Builds a fleet; `down` lists shard indices forced hard-down (their
/// queries exercise the degraded paths).
fn build_fleet(
    repos: &[(MachineConfig, ModelRepository)],
    down: &[usize],
) -> (FleetService, Vec<String>) {
    let config = FleetConfig {
        seed: 0xBE4C_F1EE,
        calibration_calls: calibration_calls(),
        ..FleetConfig::default()
    };
    let mut builder = FleetBuilder::new(config.clone());
    let mut ids = Vec::new();
    for (index, (machine, repo)) in repos.iter().enumerate() {
        let service = Arc::new(ModelService::new(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
        ));
        ids.push(machine.id());
        if down.contains(&index) {
            let shard = Arc::new(ChaosShard::new(
                ServiceClient::new(Arc::clone(&service), config.nominal_cost),
                ChaosConfig {
                    seed: 7 + index as u64,
                    transient_probability: 1.0,
                    ..ChaosConfig::default()
                },
            ));
            builder =
                builder.shard_with_client(service, Arc::clone(&shard) as Arc<dyn ShardClient>);
        } else {
            builder = builder.shard(service);
        }
    }
    (builder.build().expect("distinct machines"), ids)
}

fn query(ids: &[String], target: usize, call: &Call, id: u64) -> FleetQuery {
    FleetQuery {
        id,
        machine_id: ids[target].clone(),
        call: call.clone(),
        deadline: 600,
        priority: Priority::Normal,
    }
}

fn bench_fleet_paths(c: &mut Criterion) {
    let repos = repositories();
    let calls = serving_calls();
    let mut group = c.benchmark_group("fleet_query");

    // Baseline: the bare service, no fleet tier around it.
    let bare = ModelService::new(repos[1].1.clone(), repos[1].0.clone(), Locality::InCache);
    group.bench_function("bare_service", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            let call = &calls[i % calls.len()];
            i += 1;
            bare.predict_call(call).expect("in-space call")
        })
    });

    // Fresh path: every shard healthy, the fleet only adds routing,
    // admission and breaker bookkeeping.
    let (fleet, ids) = build_fleet(&repos, &[]);
    group.bench_function("fresh", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            let q = query(&ids, 1, &calls[i as usize % calls.len()], i);
            i += 1;
            fleet.query(&q).expect("routable")
        })
    });

    // Stale path: the target is hard-down but retains a last-good snapshot
    // (earned before the chaos flag flips), so every answer is a local
    // stale evaluation after the breaker opens.
    let (fleet, ids) = {
        let config = FleetConfig {
            seed: 0xBE4C_F1EF,
            calibration_calls: calibration_calls(),
            ..FleetConfig::default()
        };
        let mut builder = FleetBuilder::new(config.clone());
        let mut ids = Vec::new();
        let mut flags = Vec::new();
        for (machine, repo) in &repos {
            let service = Arc::new(ModelService::new(
                repo.clone(),
                machine.clone(),
                Locality::InCache,
            ));
            ids.push(machine.id());
            let shard = Arc::new(ChaosShard::new(
                ServiceClient::new(Arc::clone(&service), config.nominal_cost),
                ChaosConfig::default(),
            ));
            flags.push(Arc::clone(&shard));
            builder =
                builder.shard_with_client(service, Arc::clone(&shard) as Arc<dyn ShardClient>);
        }
        let fleet = builder.build().expect("distinct machines");
        // Earn the snapshot, then cut the shard off.
        let warm = query(&ids, 1, &calls[0], u64::MAX);
        fleet.query(&warm).expect("routable");
        flags[1].set_forced_down(true);
        (fleet, ids)
    };
    group.bench_function("stale", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            let q = query(&ids, 1, &calls[i as usize % calls.len()], i);
            i += 1;
            fleet.query(&q).expect("routable")
        })
    });

    // Proxied path: the target is hard-down with no snapshot, so every
    // answer comes from the nearest machine, efficiency-scaled.
    let (fleet, ids) = build_fleet(&repos, &[1]);
    group.bench_function("proxied", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            let q = query(&ids, 1, &calls[i as usize % calls.len()], i);
            i += 1;
            fleet.query(&q).expect("routable")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_paths);
criterion_main!(benches);
