//! Criterion benchmarks of the online-refinement subsystem: the telemetry
//! overhead on the serving hot path (the acceptance bar is ≤ 5% on cached
//! predictions), and the latency of a full refine-and-swap round
//! (report → targeted re-sampling → submodel-granular merge + hot swap).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dla_core::blas::{Call, Diag, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::SimExecutor;
use dla_core::modeler::online::dedupe_templates;
use dla_core::modeler::{OnlineRefiner, OnlineRefinerConfig};
use dla_core::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dla_core::{Locality, ModelService, Workload};

fn service_and_calls() -> (ModelService, Vec<Call>) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(512);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let service = ModelService::new(repo, machine, Locality::InCache);
    let mut calls = Vec::new();
    for m in [24usize, 96, 200, 320, 440] {
        for n in [32usize, 120, 256, 384, 480] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                64,
                1.0,
                1.0,
            ));
        }
    }
    (service, calls)
}

/// Telemetry overhead on the serving hot path: the same warm-cache
/// prediction loop with per-region query counting on and off.  The on/off
/// ratio is the overhead the acceptance criterion bounds at 5%.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let (service, calls) = service_and_calls();
    // Warm the cache: every benched iteration below is a pure hit loop.
    for call in &calls {
        let _ = service.predict_call(call).unwrap();
    }
    let mut group = c.benchmark_group("telemetry_overhead");
    service.set_telemetry_enabled(true);
    group.bench_function("predict_call_hit_telemetry_on", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for call in &calls {
                acc += service.predict_call(black_box(call)).unwrap().median;
            }
            acc
        });
    });
    service.set_telemetry_enabled(false);
    group.bench_function("predict_call_hit_telemetry_off", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for call in &calls {
                acc += service.predict_call(black_box(call)).unwrap().median;
            }
            acc
        });
    });
    service.set_telemetry_enabled(true);
    // Cold-path context: the same loop through an uncached predictor.
    let predictor = service.predictor();
    group.bench_function("predict_call_uncached_predictor", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for call in &calls {
                acc += predictor.predict_call(black_box(call)).unwrap().median;
            }
            acc
        });
    });
    group.finish();
}

/// A full refine-and-swap round: consume a refinement report, re-sample the
/// offending regions on the (simulated) machine, and publish the delta
/// through the submodel-granular hot-swap merge.
fn bench_refine_and_swap(c: &mut Criterion) {
    let (service, calls) = service_and_calls();
    for call in &calls {
        let _ = service.predict_call(call).unwrap();
    }
    let report = service.refinement_report();
    assert!(!report.is_empty());
    let snapshot = service.snapshot();
    let machine = service.machine().clone();
    let cfg = ModelSetConfig::quick(512);
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(t, _)| t)
        .collect();
    let templates = dedupe_templates(&templates);

    let mut group = c.benchmark_group("refine_and_swap");
    group.bench_function("refine_round_budget_2048", |bench| {
        let mut refiner = OnlineRefiner::new(
            SimExecutor::new(machine.clone(), 7),
            Locality::InCache,
            3,
            OnlineRefinerConfig {
                sample_budget: 2048,
                max_cells: 64,
                ..Default::default()
            },
        )
        .with_templates(&templates);
        bench.iter(|| {
            let (delta, outcome) = refiner.refine(black_box(&snapshot), black_box(&report));
            assert!(outcome.cells_refined > 0);
            delta.len()
        });
    });
    group.bench_function("refine_round_plus_merge_swap", |bench| {
        let mut refiner = OnlineRefiner::new(
            SimExecutor::new(machine.clone(), 8),
            Locality::InCache,
            3,
            OnlineRefinerConfig {
                sample_budget: 2048,
                max_cells: 64,
                ..Default::default()
            },
        )
        .with_templates(&templates);
        bench.iter(|| {
            let (delta, _) = refiner.refine(black_box(&snapshot), black_box(&report));
            service.merge(delta).unwrap();
            service.snapshot().len()
        });
    });
    // The publish step alone: merge + compile + hot swap of a small delta.
    group.bench_function("merge_swap_only", |bench| {
        let mut refiner = OnlineRefiner::new(
            SimExecutor::new(machine.clone(), 9),
            Locality::InCache,
            3,
            OnlineRefinerConfig {
                sample_budget: 2048,
                max_cells: 64,
                ..Default::default()
            },
        )
        .with_templates(&templates);
        let (delta, _) = refiner.refine(&snapshot, &report);
        bench.iter(|| {
            service.merge(delta.clone()).unwrap();
            service.snapshot().len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead, bench_refine_and_swap);
criterion_main!(benches);
