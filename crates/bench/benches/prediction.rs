//! Criterion benchmarks of the prediction layer: evaluating stored models over
//! whole algorithm traces, and generating the traces themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dla_core::algos::{sylv_trace, trinv_trace, SylvVariant, TrinvVariant};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::Locality;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::workloads::predict_trinv;
use dla_core::predict::Predictor;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.bench_function("trinv_v3_n1024_b96", |bench| {
        bench.iter(|| trinv_trace(TrinvVariant::V3, 1024, 96, 1024))
    });
    group.bench_function("sylv_v1_n1024_b96", |bench| {
        bench.iter(|| sylv_trace(SylvVariant::new(1).unwrap(), 1024, 1024, 96, 1024))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(512);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let predictor = Predictor::new(&repo, machine, Locality::InCache);
    let mut group = c.benchmark_group("predict_trinv");
    for &n in &[256usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                for variant in TrinvVariant::ALL {
                    let _ = predict_trinv(&predictor, variant, n, 96).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(prediction, bench_trace_generation, bench_prediction);
criterion_main!(prediction);
