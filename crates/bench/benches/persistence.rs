//! Repository persistence and batch-throughput measurements (plain harness).
//!
//! Three comparisons back the EXPERIMENTS.md tables:
//!
//! * **Load time to serve-ready**: parsing the text format and compiling it
//!   versus decoding the binary format (which deserializes straight into the
//!   compiled layout — no re-parse, no re-compile).
//! * **Batch evaluation throughput**: the reference single-point `eval`
//!   (`PiecewiseModel::eval`, the model's original query API) versus the
//!   compiled single-point path versus the SoA batch kernel, at batch sizes
//!   1 / 64 / 4096, in queries per second.
//! * **Block-size sweep throughput**: the paper's trinv block-size sweep
//!   driven by the batched trace path versus the same call stream answered
//!   one `eval` at a time (reference and compiled).
//!
//! Run with `cargo bench -p dla-bench --bench persistence`; results are
//! printed and written to `BENCH_persistence.json` at the repository root.

use std::time::Instant;

use dla_core::algos::{trinv_trace, TrinvVariant};
use dla_core::blas::flops::is_empty_call;
use dla_core::blas::{Call, Trans};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::Locality;
use dla_core::model::{submodel_key, BatchPoints, CompiledPiecewise, Region};
use dla_core::predict::blocksize::{default_block_size_candidates, optimize_block_size_trinv};
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::TraceEvaluator;
use dla_core::{ModelRepository, Predictor, Routine};

/// Seconds per iteration, minimum over `iters` timed runs after `warmup`
/// untimed ones (the minimum is the least noisy statistic for short,
/// deterministic workloads).
fn time_min<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // The quickstart repository: the trinv workload's models at quick(512).
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(512);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);

    let text = repo.to_text().expect("text serialisation");
    let binary = repo.to_binary().expect("binary serialisation");
    println!(
        "repository: {} models, text {} bytes, binary {} bytes",
        repo.len(),
        text.len(),
        binary.len()
    );

    // Load → serve-ready: text must parse and compile; binary decodes
    // straight into the compiled layout.
    let text_s = time_min(3, 30, || {
        let loaded = ModelRepository::from_text(&text).expect("parse text");
        let compiled = loaded.compiled();
        assert!(!compiled.is_empty());
    });
    let binary_s = time_min(3, 30, || {
        let compiled = dla_core::model::binfmt::decode(&binary).expect("decode binary");
        assert!(!compiled.is_empty());
    });
    let load_speedup = text_s / binary_s;
    println!("load to serve-ready:");
    println!("  text parse+compile  {:>10.3} ms", 1e3 * text_s);
    println!("  binary decode       {:>10.3} ms", 1e3 * binary_s);
    println!("  speedup             {load_speedup:>10.1}x");

    // Batch throughput on the most region-rich piecewise model (3-D gemm).
    // Three evaluators answer the same query stream: the reference
    // single-point `eval` (linear region scan, per-call allocation), the
    // compiled single-point path, and the SoA batch kernel.
    let model = repo
        .get(Routine::Gemm, &machine.id(), Locality::InCache)
        .expect("gemm model");
    let template = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
    let submodel = model
        .submodel(&submodel_key(&template))
        .expect("gemm NN submodel");
    let compiled = CompiledPiecewise::compile(submodel).expect("compilable submodel");
    let space = Region::new(model.space.lo().to_vec(), model.space.hi().to_vec());
    let grid = space.sample_grid(16, 1);

    println!("batch evaluation throughput (queries/sec):");
    println!(
        "  {:>6} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "batch", "ref eval", "compiled pt", "batched", "vs ref", "vs pt"
    );
    let mut rows = Vec::new();
    for batch in [1usize, 64, 4096] {
        let points: Vec<Vec<usize>> = (0..batch).map(|i| grid[i % grid.len()].clone()).collect();
        let soa = BatchPoints::from_rows(grid[0].len(), &points).expect("uniform arity");
        let mut out = Vec::new();
        let ref_s = time_min(3, 30, || {
            let mut acc = 0.0;
            for p in &points {
                acc += submodel.eval(p).expect("in-arity point").median;
            }
            std::hint::black_box(acc);
        });
        let point_s = time_min(3, 30, || {
            let mut acc = 0.0;
            for p in &points {
                acc += compiled.eval(p).expect("in-arity point").median;
            }
            std::hint::black_box(acc);
        });
        let batch_s = time_min(3, 30, || {
            compiled
                .eval_batch_into(&soa, &mut out)
                .expect("in-arity batch");
            std::hint::black_box(out.len());
        });
        let ref_qps = batch as f64 / ref_s;
        let point_qps = batch as f64 / point_s;
        let batch_qps = batch as f64 / batch_s;
        let vs_ref = batch_qps / ref_qps;
        let vs_point = batch_qps / point_qps;
        println!(
            "  {batch:>6} {ref_qps:>14.0} {point_qps:>14.0} {batch_qps:>14.0} {vs_ref:>8.2}x {vs_point:>8.2}x"
        );
        rows.push((batch, ref_qps, point_qps, batch_qps, vs_ref, vs_point));
    }

    // Block-size sweep throughput: the paper's trinv tuning sweep, evaluated
    // three ways over the same candidate traces.
    let predictor = Predictor::new(&repo, machine.clone(), Locality::InCache);
    let candidates = default_block_size_candidates();
    let n = 448;
    let traces: Vec<Vec<Call>> = candidates
        .iter()
        .filter(|&&b| b > 0 && b <= n)
        .map(|&b| trinv_trace(TrinvVariant::V3, n, b, n))
        .collect();
    let calls: Vec<&Call> = traces
        .iter()
        .flatten()
        .filter(|c| !is_empty_call(c))
        .collect();
    let total_calls = calls.len();
    let sweep =
        optimize_block_size_trinv(&predictor, TrinvVariant::V3, n, &candidates).expect("sweep");
    assert_eq!(sweep.evaluated_calls, total_calls);
    let sweep_batched_s = time_min(3, 30, || {
        std::hint::black_box(
            optimize_block_size_trinv(&predictor, TrinvVariant::V3, n, &candidates).expect("sweep"),
        );
    });
    let sweep_compiled_s = time_min(3, 30, || {
        for t in &traces {
            std::hint::black_box(TraceEvaluator::predict_trace(&predictor, t).expect("trace"));
        }
    });
    let sweep_ref_s = time_min(3, 30, || {
        let mut acc = 0.0;
        for call in &calls {
            let model = repo
                .get(call.routine(), &machine.id(), Locality::InCache)
                .expect("model");
            acc += model.estimate(call).expect("in-domain call").median;
        }
        std::hint::black_box(acc);
    });
    let sweep_ref_qps = total_calls as f64 / sweep_ref_s;
    let sweep_compiled_qps = total_calls as f64 / sweep_compiled_s;
    let sweep_batched_qps = total_calls as f64 / sweep_batched_s;
    let sweep_vs_ref = sweep_batched_qps / sweep_ref_qps;
    let sweep_vs_compiled = sweep_batched_qps / sweep_compiled_qps;
    println!("block-size sweep throughput ({total_calls} model queries):");
    println!("  single-point ref eval  {sweep_ref_qps:>14.0} q/s");
    println!("  single-point compiled  {sweep_compiled_qps:>14.0} q/s");
    println!("  batched sweep          {sweep_batched_qps:>14.0} q/s");
    println!("  batched vs ref eval    {sweep_vs_ref:>13.2}x");
    println!("  batched vs compiled    {sweep_vs_compiled:>13.2}x");

    // Machine-readable record for CI artifacts and EXPERIMENTS.md.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"repository\": {{\"models\": {}, \"text_bytes\": {}, \"binary_bytes\": {}}},\n",
        repo.len(),
        text.len(),
        binary.len()
    ));
    json.push_str(&format!(
        "  \"load_to_serve_ready\": {{\"text_parse_compile_ms\": {:.6}, \"binary_decode_ms\": {:.6}, \"speedup\": {:.2}}},\n",
        1e3 * text_s,
        1e3 * binary_s,
        load_speedup
    ));
    json.push_str("  \"batch_throughput\": [\n");
    for (i, (batch, ref_qps, point_qps, batch_qps, vs_ref, vs_point)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {batch}, \"reference_qps\": {ref_qps:.0}, \"pointwise_qps\": {point_qps:.0}, \"batched_qps\": {batch_qps:.0}, \"speedup_vs_reference\": {vs_ref:.2}, \"speedup_vs_pointwise\": {vs_point:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"blocksize_sweep\": {{\"queries\": {total_calls}, \"reference_qps\": {sweep_ref_qps:.0}, \"compiled_pointwise_qps\": {sweep_compiled_qps:.0}, \"batched_qps\": {sweep_batched_qps:.0}, \"speedup_vs_reference\": {sweep_vs_ref:.2}, \"speedup_vs_pointwise\": {sweep_vs_compiled:.2}}}\n"
    ));
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persistence.json");
    std::fs::write(path, &json).expect("write BENCH_persistence.json");
    println!("wrote {path}");
}
