//! Criterion benchmarks of the model-construction path: per-region fitting,
//! full repository builds and the hot-swap rebuild that `SharedRepository`
//! serving gates on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::Locality;
use dla_core::mat::stats::Summary;
use dla_core::model::{FitWorkspace, Region, RegionModel, SharedRepository};
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};

/// A smooth synthetic measurement surface (no sampler in the loop, so the
/// benches below time the *fit* itself).
fn fake_summary(p: &[usize]) -> Summary {
    let x = p[0] as f64;
    let y = p.get(1).map(|&v| v as f64).unwrap_or(1.0);
    let z = p.get(2).map(|&v| v as f64).unwrap_or(1.0);
    let median = 1000.0 + 2.0 * x + 3.0 * y + 0.5 * z + 0.01 * x * y + 0.002 * y * z;
    Summary {
        min: median * 0.95,
        mean: median * 1.01,
        median,
        max: median * 1.10,
        std_dev: median * 0.02,
        count: 10,
    }
}

fn grid_samples(region: &Region, per_dim: usize) -> Vec<(Vec<usize>, Summary)> {
    region
        .sample_grid(per_dim, 8)
        .into_iter()
        .map(|p| {
            let s = fake_summary(&p);
            (p, s)
        })
        .collect()
}

fn bench_region_fit(c: &mut Criterion) {
    let region2 = Region::new(vec![8, 8], vec![512, 512]);
    let samples2 = grid_samples(&region2, 5);
    let region3 = Region::new(vec![8, 8, 8], vec![256, 256, 128]);
    let samples3 = grid_samples(&region3, 4);
    let (points2, sums2): (Vec<_>, Vec<_>) = samples2.iter().cloned().unzip();
    let (points3, sums3): (Vec<_>, Vec<_>) = samples3.iter().cloned().unzip();
    let mut group = c.benchmark_group("region_fit");
    group.bench_function("naive_2d_deg2_25pts", |bench| {
        bench.iter(|| RegionModel::fit(region2.clone(), black_box(&samples2), 2).unwrap())
    });
    group.bench_function("engine_2d_deg2_25pts", |bench| {
        let mut ws = FitWorkspace::new();
        bench.iter(|| {
            RegionModel::fit_with(&mut ws, region2.clone(), black_box(&points2), &sums2, 2).unwrap()
        })
    });
    group.bench_function("naive_3d_deg2_64pts", |bench| {
        bench.iter(|| RegionModel::fit(region3.clone(), black_box(&samples3), 2).unwrap())
    });
    group.bench_function("engine_3d_deg2_64pts", |bench| {
        let mut ws = FitWorkspace::new();
        bench.iter(|| {
            RegionModel::fit_with(&mut ws, region3.clone(), black_box(&points3), &sums3, 2).unwrap()
        })
    });
    group.finish();
}

fn bench_build_repository(c: &mut Criterion) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(512).with_workers(1);
    c.bench_function("build_repository_trinv_512_workers1", |bench| {
        bench.iter(|| {
            build_repository(
                &machine,
                Locality::InCache,
                1,
                black_box(&cfg),
                &[Workload::Trinv],
            )
        })
    });
}

fn bench_hot_swap_rebuild(c: &mut Criterion) {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(256).with_workers(1);
    let (initial, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let shared = SharedRepository::new(initial);
    c.bench_function("hot_swap_rebuild_trinv_256", |bench| {
        bench.iter(|| {
            let (repo, _) = build_repository(
                &machine,
                Locality::InCache,
                2,
                black_box(&cfg),
                &[Workload::Trinv],
            );
            shared.swap(repo)
        })
    });
}

criterion_group!(
    construction,
    bench_region_fit,
    bench_build_repository,
    bench_hot_swap_rebuild
);
criterion_main!(construction);
