//! Equivalence of the compiled fit engine and the reference fit path.
//!
//! The fit engine (`dla_model::FitWorkspace`, threaded through the Modeler's
//! strategies) must be a pure performance optimisation: for random sample
//! sets — smooth, noisy, rank-deficient, and too small for the requested
//! degree (the constant-fit fallback) — it has to agree with the reference
//! implementations (`VectorPolynomial::fit`, `RegionModel::fit`, and the
//! pre-engine refinement loop) to within floating-point noise.

use dla_core::blas::{Call, Diag, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::SimExecutor;
use dla_core::mat::stats::Summary;
use dla_core::model::{
    error_order, FitWorkspace, PiecewiseModel, Region, RegionModel, VectorPolynomial,
};
use dla_core::modeler::{RefinementConfig, SampleOracle};
use dla_core::sampler::{Sampler, SamplerConfig};
use proptest::prelude::*;

/// Tiny deterministic generator (splitmix64) so the test needs no RNG dep.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// Uniform draw from `[-scale, scale]`.
    fn coeff(&mut self, scale: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (2.0 * unit - 1.0) * scale
    }
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// A smooth synthetic measurement at a raw point.
fn summary_at(gen_mix: &[f64; 4], p: &[usize]) -> Summary {
    let x = p[0] as f64;
    let y = p.get(1).map(|&v| v as f64).unwrap_or(0.0);
    let z = p.get(2).map(|&v| v as f64).unwrap_or(0.0);
    let median =
        1000.0 + gen_mix[0] * x + gen_mix[1] * y + gen_mix[2] * z + gen_mix[3] * 0.01 * x * y;
    Summary {
        min: median * 0.93,
        mean: median * 1.02,
        median,
        max: median * 1.12,
        std_dev: median.abs() * 0.03,
        count: 8,
    }
}

/// Random sample set over a random region: grid points plus duplicates
/// (revisited points), degenerate collinear sets, and out-of-region garbage.
#[allow(clippy::type_complexity)]
fn random_sample_set(gen: &mut Gen) -> (Region, Vec<Vec<usize>>, Vec<Summary>, u32) {
    let dim = gen.range(1, 3);
    let lo: Vec<usize> = (0..dim).map(|_| 8 * gen.range(1, 4)).collect();
    let hi: Vec<usize> = lo.iter().map(|&l| l + 8 * gen.range(2, 40)).collect();
    let region = Region::new(lo, hi);
    let mix = [
        gen.coeff(5.0),
        gen.coeff(5.0),
        gen.coeff(2.0),
        gen.coeff(1.0),
    ];
    let mut points = match gen.range(0, 3) {
        // Degenerate: all points on the diagonal (collinear coordinates make
        // the design matrix rank deficient for degree >= 1 in 2-D/3-D).
        0 => {
            let n = gen.range(2, 12);
            (0..n)
                .map(|i| {
                    let t = region.lo()[0] + (region.extent(0) * i) / n.max(1);
                    (0..dim)
                        .map(|d| t.clamp(region.lo()[d], region.hi()[d]))
                        .collect()
                })
                .collect::<Vec<Vec<usize>>>()
        }
        // Tiny sets that force the constant-fit fallback at degree 2.
        1 => {
            let n = gen.range(1, 4);
            (0..n)
                .map(|_| {
                    (0..dim)
                        .map(|d| gen.range(region.lo()[d], region.hi()[d]))
                        .collect()
                })
                .collect()
        }
        // Regular fitting grids.
        _ => region.sample_grid(gen.range(3, 5), 8),
    };
    // Duplicates (cached revisits) and out-of-region garbage.
    if !points.is_empty() && gen.range(0, 1) == 0 {
        let dup = points[gen.range(0, points.len() - 1)].clone();
        points.push(dup);
    }
    points.push(
        (0..dim)
            .map(|d| region.hi()[d] + gen.range(8, 64))
            .collect(),
    );
    let summaries: Vec<Summary> = points.iter().map(|p| summary_at(&mix, p)).collect();
    let degree = gen.range(0, 3) as u32;
    (region, points, summaries, degree)
}

fn polys_close(a: &VectorPolynomial, b: &VectorPolynomial) -> std::result::Result<(), String> {
    for (q, (pa, pb)) in a.polynomials().iter().zip(b.polynomials()).enumerate() {
        if pa.exponents() != pb.exponents() {
            return Err(format!("quantity {q}: monomial plans differ"));
        }
        for (t, (ca, cb)) in pa.coefficients().iter().zip(pb.coefficients()).enumerate() {
            if !close(*ca, *cb) {
                return Err(format!("quantity {q} term {t}: {ca} vs {cb}"));
            }
        }
    }
    Ok(())
}

fn region_models_close(a: &RegionModel, b: &RegionModel) -> std::result::Result<(), String> {
    if a.region != b.region {
        return Err("regions differ".to_string());
    }
    if a.samples_used != b.samples_used {
        return Err(format!(
            "samples_used {} vs {}",
            a.samples_used, b.samples_used
        ));
    }
    if !close(a.error, b.error) {
        return Err(format!("errors {} vs {}", a.error, b.error));
    }
    polys_close(&a.poly, &b.poly)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engine region fits (plain and fallback-folded) match the reference
    /// implementation on random sample sets, including rank-deficient and
    /// too-small (degree-fallback) ones.
    #[test]
    fn engine_region_fit_matches_reference(seed in 0u64..1_000_000) {
        let mut gen = Gen(seed);
        let (region, points, summaries, degree) = random_sample_set(&mut gen);
        let pairs: Vec<(Vec<usize>, Summary)> = points
            .iter()
            .cloned()
            .zip(summaries.iter().copied())
            .collect();
        let mut ws = FitWorkspace::new();

        // Plain fit: identical success/failure, equivalent models.
        let reference = RegionModel::fit(region.clone(), &pairs, degree);
        let engine = RegionModel::fit_with(&mut ws, region.clone(), &points, &summaries, degree);
        match (reference, engine) {
            (Ok(r), Ok(e)) => {
                if let Err(msg) = region_models_close(&r, &e) {
                    return Err(format!("seed {seed}: {msg}"));
                }
            }
            (Err(_), Err(_)) => {}
            (r, e) => {
                return Err(format!(
                    "seed {seed}: reference {r:?} vs engine {e:?}"
                ));
            }
        }

        // Folded fallback vs the reference two-call fallback.
        let naive_fallback = RegionModel::fit(region.clone(), &pairs, degree)
            .or_else(|_| RegionModel::fit(region.clone(), &pairs, 0));
        let engine_fallback =
            RegionModel::fit_with_fallback(&mut ws, region, &points, &summaries, degree);
        match (naive_fallback, engine_fallback) {
            (Ok(r), Ok(e)) => {
                if let Err(msg) = region_models_close(&r, &e) {
                    return Err(format!("seed {seed} fallback: {msg}"));
                }
            }
            (Err(_), Err(_)) => {}
            (r, e) => {
                return Err(format!(
                    "seed {seed} fallback: reference {r:?} vs engine {e:?}"
                ));
            }
        }
    }

    /// Engine vector-polynomial fits match the reference on normalised
    /// points (the workspace is reused across cases to exercise buffer and
    /// plan recycling).
    #[test]
    fn engine_vector_fit_matches_reference(seed in 0u64..1_000_000) {
        let mut gen = Gen(seed);
        let mut ws = FitWorkspace::new();
        for _ in 0..3 {
            let (region, points, summaries, degree) = random_sample_set(&mut gen);
            let normalised: Vec<Vec<f64>> = points
                .iter()
                .filter(|p| region.contains(p))
                .map(|p| region.normalize(p))
                .collect();
            let kept: Vec<Summary> = points
                .iter()
                .zip(&summaries)
                .filter(|(p, _)| region.contains(p))
                .map(|(_, s)| *s)
                .collect();
            if normalised.is_empty() {
                continue;
            }
            let reference = VectorPolynomial::fit(&normalised, &kept, degree);
            let engine = VectorPolynomial::fit_with(&mut ws, &normalised, &kept, degree);
            match (reference, engine) {
                (Ok(r), Ok(e)) => {
                    if let Err(msg) = polys_close(&r, &e) {
                        return Err(format!("seed {seed}: {msg}"));
                    }
                }
                (Err(_), Err(_)) => {}
                (r, e) => {
                    return Err(format!(
                        "seed {seed}: reference {r:?} vs engine {e:?}"
                    ));
                }
            }
        }
    }
}

/// The pre-engine Adaptive Refinement loop, reimplemented verbatim as the
/// reference: per-region `sample_grid` + reference `RegionModel::fit` with
/// the two-call degree fallback.
fn reference_refinement(
    config: &RefinementConfig,
    oracle: &mut SampleOracle<'_, SimExecutor>,
    space: &Region,
) -> PiecewiseModel {
    let mut stack = vec![space.clone()];
    let mut regions: Vec<RegionModel> = Vec::new();
    let step = oracle.grid_step();
    while let Some(region) = stack.pop() {
        let points = region.sample_grid(config.grid_per_dim, step);
        let summaries = oracle.measure_all(&points);
        let samples: Vec<(Vec<usize>, Summary)> = points.into_iter().zip(summaries).collect();
        let fitted =
            RegionModel::fit(region.clone(), &samples, config.degree).unwrap_or_else(|_| {
                RegionModel::fit(region.clone(), &samples, 0)
                    .expect("constant fit succeeds with at least one sample")
            });
        let splittable_children = region.split(config.min_region_size, step);
        let can_split = splittable_children.len() > 1;
        if fitted.error <= config.error_bound || !can_split {
            regions.push(fitted);
        } else {
            stack.extend(splittable_children);
        }
    }
    let total = oracle.unique_samples();
    regions.sort_by(|a, b| error_order(a.error, b.error));
    PiecewiseModel::new(space.clone(), regions, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A full refinement-built piecewise model is equivalent whether the
    /// regions are fitted by the engine (production path) or the reference
    /// fit: same split decisions, same regions, models within 1e-9.
    #[test]
    fn refinement_models_are_equivalent(seed in 0u64..1_000) {
        let mut gen = Gen(seed);
        let dim = gen.range(1, 2);
        let hi = 8 * gen.range(24, 64);
        let space = Region::new(vec![8; dim], vec![hi; dim]);
        let config = RefinementConfig {
            error_bound: 0.05 + 0.05 * gen.range(1, 3) as f64,
            min_region_size: 8 * gen.range(4, 12),
            grid_per_dim: gen.range(3, 4),
            degree: 2,
        };
        let template = if dim == 1 {
            Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8)
        } else {
            Call::trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 8, 8, 1.0)
        };
        // Noiseless executor: summaries are a pure function of the point, so
        // the two builds see identical measurements regardless of sampling
        // order.
        let machine = harpertown_openblas();
        let mut sampler = Sampler::new(
            SimExecutor::noiseless(machine.clone()),
            SamplerConfig::in_cache(1),
        );
        let mut oracle = SampleOracle::new(&mut sampler, template.clone(), 8);
        let engine_model = config.build(&mut oracle, &space);

        let mut ref_sampler = Sampler::new(
            SimExecutor::noiseless(machine),
            SamplerConfig::in_cache(1),
        );
        let mut ref_oracle = SampleOracle::new(&mut ref_sampler, template, 8);
        let reference_model = reference_refinement(&config, &mut ref_oracle, &space);

        prop_assert_eq!(engine_model.region_count(), reference_model.region_count());
        prop_assert_eq!(engine_model.total_samples, reference_model.total_samples);
        for (e, r) in engine_model.regions.iter().zip(&reference_model.regions) {
            if let Err(msg) = region_models_close(e, r) {
                return Err(format!("seed {seed}: {msg}"));
            }
        }
        // The resulting models answer queries identically (within 1e-9).
        for p in space.sample_grid(7, 1) {
            let a = engine_model.eval(&p).unwrap();
            let b = reference_model.eval(&p).unwrap();
            prop_assert!(
                close(a.median, b.median) && close(a.min, b.min) && close(a.max, b.max),
                "query {:?}: {:?} vs {:?}",
                p,
                a,
                b
            );
        }
    }
}
