//! Persistence equivalence: a repository — including one assembled by the
//! online-refinement path's submodel-granular merge — survives
//! save → load → compile with *identical* compiled-engine predictions
//! (≤ 1e-12, which the shortest-roundtrip float formatting makes exact),
//! for arbitrary contents including `NaN`/`±inf` region errors and
//! coefficients.

use dla_core::blas::{Call, Diag, Routine, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::SimExecutor;
use dla_core::mat::stats::{Quantity, Summary};
use dla_core::model::{
    ModelRepository, PiecewiseModel, Polynomial, Region, RegionModel, RoutineModel,
    VectorPolynomial,
};
use dla_core::modeler::online::dedupe_templates;
use dla_core::modeler::{OnlineRefiner, OnlineRefinerConfig};
use dla_core::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dla_core::{Locality, ModelService, Workload};
use proptest::prelude::*;

/// Tiny deterministic generator (splitmix64), as in the sibling equivalence
/// suites.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    fn coeff(&mut self, scale: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (2.0 * unit - 1.0) * scale
    }

    /// A coefficient that is occasionally `NaN` or `±inf`.
    fn wild_coeff(&mut self) -> f64 {
        match self.range(0, 9) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => self.coeff(1e3),
        }
    }
}

/// `a` and `b` agree to the 1e-12 criterion (NaN matches NaN, infinities
/// must match exactly).
fn same(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

fn assert_same_summary(a: &Summary, b: &Summary) {
    for q in Quantity::ALL {
        assert!(
            same(a.get(q), b.get(q)),
            "{q:?}: {} vs {}",
            a.get(q),
            b.get(q)
        );
    }
}

/// A random region model over `region`: a fitted-looking polynomial basis
/// with random (occasionally non-finite) coefficients and a random
/// (occasionally non-finite) fit error.
fn random_region_model(gen: &mut Gen, region: &Region) -> RegionModel {
    let dim = region.dim();
    let degree = gen.range(0, 2) as u32;
    let exponents = dla_core::model::monomial_exponents(dim, degree);
    let polys: Vec<Polynomial> = (0..Quantity::ALL.len())
        .map(|_| {
            let coeffs: Vec<f64> = exponents.iter().map(|_| gen.wild_coeff()).collect();
            Polynomial::new(dim, exponents.clone(), coeffs).unwrap()
        })
        .collect();
    let error = match gen.range(0, 7) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => gen.coeff(0.5).abs(),
    };
    RegionModel {
        region: region.clone(),
        poly: VectorPolynomial::new(polys).unwrap(),
        error,
        samples_used: gen.range(1, 99),
        revision: 0,
    }
}

/// A random routine model with 1–3 flag-variant submodels.
fn random_routine_model(gen: &mut Gen, routine: Routine, machine_id: &str) -> RoutineModel {
    let dim = routine.size_count();
    let hi = 8 * gen.range(8, 48);
    let space = Region::new(vec![8; dim], vec![hi; dim]);
    let mut model = RoutineModel::new(routine, machine_id, Locality::InCache, space.clone());
    let variants = gen.range(1, 3);
    for v in 0..variants {
        let flags: Vec<usize> = (0..routine.flag_count().min(3)).map(|_| v % 2).collect();
        let mut regions = Vec::new();
        for part in space.split(gen.range(16, 64), 8) {
            regions.push(random_region_model(gen, &part));
        }
        if gen.range(0, 1) == 1 {
            // An extra overlapping region exercises min-error selection.
            regions.push(random_region_model(gen, &space));
        }
        let total = regions.iter().map(|r| r.samples_used).sum();
        model.insert_submodel(flags, PiecewiseModel::new(space.clone(), regions, total));
    }
    model
}

fn random_repository(seed: u64) -> ModelRepository {
    let mut gen = Gen(seed);
    let mut repo = ModelRepository::new();
    for routine in [
        Routine::Trsm,
        Routine::Gemm,
        Routine::TrtriUnb,
        Routine::SylvUnb,
    ] {
        if gen.range(0, 3) > 0 {
            repo.insert(random_routine_model(&mut gen, routine, "machine_a"));
        }
    }
    if repo.is_empty() {
        repo.insert(random_routine_model(&mut gen, Routine::Trsm, "machine_a"));
    }
    repo
}

/// Probe points across (and slightly outside) a submodel's space.
fn probe_points(space: &Region) -> Vec<Vec<usize>> {
    let mut points = space.sample_grid(4, 1);
    let outside: Vec<usize> = space.hi().iter().map(|&h| h + 37).collect();
    points.push(outside);
    points
}

/// Both repositories produce identical compiled-engine predictions on every
/// submodel (compiled vs compiled, probing through the repository-level
/// compiled form).
fn assert_compiled_equivalent(original: &ModelRepository, reloaded: &ModelRepository) {
    assert_eq!(original.len(), reloaded.len());
    let compiled_a = original.compiled();
    let compiled_b = reloaded.compiled();
    for (key, model) in original.iter() {
        let locality = Locality::from_name(&key.locality).unwrap();
        let routine = Routine::from_name(&key.routine).unwrap();
        let a = compiled_a
            .get(routine, &key.machine_id, locality)
            .expect("original compiled model");
        let b = compiled_b
            .get(routine, &key.machine_id, locality)
            .expect("reloaded compiled model");
        assert_eq!(a.submodel_count(), b.submodel_count());
        for (flags, submodel) in &model.submodels {
            // Probe through the routine-model estimate when a call shape
            // exists; always probe the piecewise layer directly.
            let reloaded_model = reloaded
                .get(routine, &key.machine_id, locality)
                .expect("reloaded source model");
            let reloaded_sub = reloaded_model
                .submodel(flags)
                .expect("reloaded submodel for flags");
            for p in probe_points(&submodel.space) {
                let ours = submodel.eval(&p).unwrap();
                let theirs = reloaded_sub.eval(&p).unwrap();
                assert_same_summary(&ours, &theirs);
            }
        }
        // Compiled estimates agree on a concrete call where constructible.
        if routine == Routine::Trsm {
            let call = Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                100,
                60,
                1.0,
            );
            match (a.estimate(&call), b.estimate(&call)) {
                (Ok(x), Ok(y)) => assert_same_summary(&x, &y),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("estimate mismatch: {x:?} vs {y:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary repositories — NaN/±inf errors and coefficients included —
    /// roundtrip through the text format with byte-identical re-serialisation
    /// and identical compiled predictions.
    #[test]
    fn save_load_compile_equivalence(seed in 0u64..1_000_000_000) {
        let repo = random_repository(seed);
        let text = repo.to_text().unwrap();
        let reloaded = ModelRepository::from_text(&text).unwrap();
        // The shortest-roundtrip float formatting makes the text form a
        // fixed point: serialising the reloaded repository reproduces it.
        prop_assert_eq!(&text, &reloaded.to_text().unwrap());
        assert_compiled_equivalent(&repo, &reloaded);
    }

    /// A submodel-granular merge of two repositories holding disjoint flag
    /// variants persists and reloads with identical compiled predictions.
    #[test]
    fn merged_repository_persists_equivalently(seed in 0u64..1_000_000_000) {
        let full = random_repository(seed);
        // Split every routine model's flag variants across two repositories.
        let mut left = ModelRepository::new();
        let mut right = ModelRepository::new();
        for (_, model) in full.iter() {
            let mut l = model.clone();
            let mut r = model.clone();
            let mut keys: Vec<Vec<usize>> = model.submodels.keys().cloned().collect();
            keys.sort();
            for (i, key) in keys.iter().enumerate() {
                if i % 2 == 0 {
                    r.submodels.remove(key);
                } else {
                    l.submodels.remove(key);
                }
            }
            if !l.submodels.is_empty() {
                left.insert(l);
            }
            if !r.submodels.is_empty() {
                right.insert(r);
            }
        }
        let mut merged = left;
        merged.merge_models(right);
        // The merge must reassemble every flag variant of the original.
        for (key, model) in full.iter() {
            let locality = Locality::from_name(&key.locality).unwrap();
            let routine = Routine::from_name(&key.routine).unwrap();
            let m = merged.get(routine, &key.machine_id, locality).unwrap();
            prop_assert_eq!(m.submodel_count(), model.submodel_count());
        }
        let text = merged.to_text().unwrap();
        let reloaded = ModelRepository::from_text(&text).unwrap();
        assert_compiled_equivalent(&merged, &reloaded);
    }
}

/// The non-random end of the criterion: a repository actually produced by
/// the online-refinement loop (build → serve → refine → submodel-granular
/// merge) persists and reloads with identical compiled predictions.
#[test]
fn refined_repository_survives_save_load_compile() {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(192);
    let (repo, _) = build_repository(&machine, Locality::InCache, 5, &cfg, &[Workload::Trinv]);
    let service = ModelService::new(repo, machine.clone(), Locality::InCache);

    // Serve traffic, refine the hottest cells, publish.
    for n in [32usize, 64, 96, 128, 160] {
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            n,
            n,
            1.0,
        );
        let _ = service.predict_call(&call).unwrap();
    }
    let report = service.refinement_report();
    assert!(!report.is_empty());
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let mut refiner = OnlineRefiner::new(
        SimExecutor::new(machine.clone(), 31),
        Locality::InCache,
        2,
        OnlineRefinerConfig::default(),
    )
    .with_templates(&dedupe_templates(&templates));
    let (delta, outcome) = refiner.refine(&service.snapshot(), &report);
    assert!(outcome.cells_refined > 0);
    service.merge(delta).unwrap();

    // Persist → reload → compile: identical predictions everywhere.
    let refined = (*service.snapshot()).clone();
    let text = refined.to_text().unwrap();
    let reloaded = ModelRepository::from_text(&text).unwrap();
    assert_eq!(text, reloaded.to_text().unwrap());
    let compiled_a = refined.compiled();
    let compiled_b = reloaded.compiled();
    for n in (16..=176).step_by(8) {
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            n,
            n + 8,
            1.0,
        );
        let a = compiled_a
            .get(Routine::Trsm, &machine.id(), Locality::InCache)
            .unwrap()
            .estimate(&call)
            .unwrap();
        let b = compiled_b
            .get(Routine::Trsm, &machine.id(), Locality::InCache)
            .unwrap()
            .estimate(&call)
            .unwrap();
        for q in Quantity::ALL {
            assert!(
                same(a.get(q), b.get(q)),
                "{q:?} at n={n}: {} vs {}",
                a.get(q),
                b.get(q)
            );
        }
    }
}
