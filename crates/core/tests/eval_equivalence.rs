//! Equivalence of the compiled evaluation engine and the reference
//! implementation.
//!
//! The compiled engine (`dla_model::CompiledRepository` and friends) must be
//! a pure performance optimisation: for random piecewise models and query
//! points — covered, overlapping, uncovered-fallback and outside-the-space —
//! it has to agree with `PiecewiseModel::eval` within floating-point noise,
//! and rankings computed through either evaluator must order the algorithm
//! variants identically.

use dla_core::machine::presets::harpertown_openblas;
use dla_core::mat::stats::Quantity;
use dla_core::model::{
    monomial_exponents, CompiledPiecewise, PiecewiseModel, Polynomial, Region, RegionModel,
    VectorPolynomial,
};
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::workloads::{rank_sylv_variants, rank_trinv_variants};
use dla_core::predict::TraceEvaluator;
use dla_core::{Call, Locality, MachineConfig, ModelRepository, Predictor};
use dla_mat::stats::Summary;
use proptest::prelude::*;

/// Tiny deterministic generator (splitmix64) so the test needs no RNG dep.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// Uniform draw from `[-scale, scale]`.
    fn coeff(&mut self, scale: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (2.0 * unit - 1.0) * scale
    }
}

/// A random piecewise model: random space, random (possibly overlapping,
/// possibly non-covering) regions, random low-degree polynomials, and an
/// occasional NaN fit error.
fn random_model(gen: &mut Gen) -> PiecewiseModel {
    let dim = gen.range(1, 3);
    let lo: Vec<usize> = (0..dim).map(|_| gen.range(1, 16)).collect();
    let hi: Vec<usize> = lo.iter().map(|&l| l + gen.range(32, 512)).collect();
    let space = Region::new(lo, hi);
    let region_count = gen.range(1, 6);
    let mut regions = Vec::with_capacity(region_count);
    for _ in 0..region_count {
        let rlo: Vec<usize> = (0..dim)
            .map(|d| gen.range(space.lo()[d], space.hi()[d]))
            .collect();
        let rhi: Vec<usize> = (0..dim).map(|d| gen.range(rlo[d], space.hi()[d])).collect();
        let region = Region::new(rlo, rhi);
        let degree = gen.range(0, 2) as u32;
        let exponents = monomial_exponents(dim, degree);
        let polys: Vec<Polynomial> = (0..5)
            .map(|_| {
                let coeffs: Vec<f64> = exponents.iter().map(|_| gen.coeff(100.0)).collect();
                Polynomial::new(dim, exponents.clone(), coeffs).unwrap()
            })
            .collect();
        let error = if gen.range(0, 9) == 0 {
            f64::NAN
        } else {
            gen.coeff(0.5).abs()
        };
        regions.push(RegionModel {
            region,
            poly: VectorPolynomial::new(polys).unwrap(),
            error,
            samples_used: 4,
            revision: 0,
        });
    }
    PiecewiseModel::new(space, regions, 16)
}

/// Query points exercising every evaluation path: covered and uncovered
/// interior points, region corners (overlap boundaries), and points outside
/// the space (fallback extrapolation).
fn query_points(gen: &mut Gen, model: &PiecewiseModel) -> Vec<Vec<usize>> {
    let space = &model.space;
    let dim = space.dim();
    let mut points = space.sample_grid(4, 1);
    for _ in 0..24 {
        points.push(
            (0..dim)
                .map(|d| gen.range(space.lo()[d], space.hi()[d]))
                .collect(),
        );
    }
    for r in &model.regions {
        points.push(r.region.lo().to_vec());
        points.push(r.region.hi().to_vec());
    }
    for _ in 0..6 {
        points.push((0..dim).map(|d| space.hi()[d] + gen.range(1, 64)).collect());
    }
    points
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn summaries_close(a: &Summary, b: &Summary) -> bool {
    Quantity::ALL.iter().all(|&q| close(a.get(q), b.get(q)))
}

/// `true` when the two rankings order the candidates identically, up to
/// permutations *within* groups of tied scores: some variant pairs predict
/// efficiencies equal to the last ulp, and a tie may legitimately break
/// either way across the two evaluators' (equivalent but not bitwise
/// identical) arithmetic.
fn same_order_up_to_ties<T: PartialEq>(
    a: &[(T, dla_core::EfficiencyPrediction)],
    b: &[(T, dla_core::EfficiencyPrediction)],
) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        // The tie group: consecutive positions with (transitively) close medians.
        let mut j = i + 1;
        while j < a.len() && close(a[j - 1].1.median, a[j].1.median) {
            j += 1;
        }
        // The other ranking must hold the same labels in the same positions.
        let mut pool: Vec<&T> = b[i..j].iter().map(|(t, _)| t).collect();
        for (t, _) in &a[i..j] {
            match pool.iter().position(|p| *p == t) {
                Some(k) => {
                    pool.remove(k);
                }
                None => return false,
            }
        }
        i = j;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled evaluation matches the reference on random piecewise models
    /// and query points (covered, overlapping, fallback, out-of-space).
    #[test]
    fn compiled_piecewise_matches_reference(seed in 0u64..1_000_000) {
        let mut gen = Gen(seed);
        let model = random_model(&mut gen);
        let compiled = CompiledPiecewise::compile(&model)
            .expect("random low-degree models always compile");
        prop_assert_eq!(compiled.region_count(), model.region_count());
        let points = query_points(&mut gen, &model);
        for point in &points {
            let reference = model.eval(point).unwrap();
            let fast = compiled.eval(point).unwrap();
            prop_assert!(
                summaries_close(&reference, &fast),
                "mismatch at {:?}: reference {:?} vs compiled {:?}",
                point,
                reference,
                fast
            );
        }
        // The batch entry point agrees with pointwise evaluation.
        let batch = compiled.eval_batch_rows(&points).unwrap();
        for (point, b) in points.iter().zip(&batch) {
            prop_assert_eq!(&compiled.eval(point).unwrap(), b);
        }
        // Arity errors surface on both paths.
        let bad = vec![8usize; model.space.dim() + 1];
        prop_assert!(model.eval(&bad).is_err());
        prop_assert!(compiled.eval(&bad).is_err());
    }
}

/// The pre-PR-3 uncompiled evaluator: repository lookup plus
/// `RoutineModel::estimate` per call.  Kept here as the reference
/// implementation the compiled `Predictor` must agree with.
struct NaiveEvaluator<'a> {
    repository: &'a ModelRepository,
    machine: MachineConfig,
    locality: Locality,
}

impl TraceEvaluator for NaiveEvaluator<'_> {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn predict_call(&self, call: &Call) -> dla_core::model::Result<Summary> {
        self.repository
            .get(call.routine(), &self.machine.id(), self.locality)
            .ok_or_else(|| {
                dla_core::model::ModelError::MissingSubmodel(format!(
                    "no model for {} on {}",
                    call.routine(),
                    self.machine.id()
                ))
            })?
            .estimate(call)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On a real (refinement-built) repository, per-call predictions and
    /// whole-variant rankings are identical under the compiled and the
    /// naive evaluator.
    #[test]
    fn rankings_are_identical_under_both_evaluators(seed in 0u64..1_000) {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(256);
        let (repo, _) = build_repository(
            &machine,
            Locality::InCache,
            seed,
            &cfg,
            &[Workload::Trinv, Workload::Sylv],
        );
        let naive = NaiveEvaluator {
            repository: &repo,
            machine: machine.clone(),
            locality: Locality::InCache,
        };
        let compiled = Predictor::new(&repo, machine.clone(), Locality::InCache);

        // Per-call equivalence over a spread of calls.
        for n in [8usize, 65, 96, 130, 224, 256, 400] {
            let calls = [
                Call::gemm(
                    dla_core::blas::Trans::NoTrans,
                    dla_core::blas::Trans::NoTrans,
                    n,
                    n,
                    n.min(96),
                    1.0,
                    1.0,
                ),
                Call::trsm(
                    dla_core::blas::Side::Left,
                    dla_core::blas::Uplo::Lower,
                    dla_core::blas::Trans::NoTrans,
                    dla_core::blas::Diag::NonUnit,
                    n,
                    n,
                    1.0,
                ),
                Call::trtri_unb(dla_core::blas::Uplo::Lower, dla_core::blas::Diag::NonUnit, n),
                Call::sylv_unb(n, n),
            ];
            for call in &calls {
                let a = naive.predict_call(call).unwrap();
                let b = compiled.predict_call(call).unwrap();
                prop_assert!(
                    summaries_close(&a, &b),
                    "{call}: naive {:?} vs compiled {:?}",
                    a,
                    b
                );
            }
        }

        // Ranking order equivalence (identical up to last-ulp ties) and
        // per-position efficiency closeness.
        let naive_trinv = rank_trinv_variants(&naive, 224, 32).unwrap();
        let fast_trinv = rank_trinv_variants(&compiled, 224, 32).unwrap();
        prop_assert!(same_order_up_to_ties(&naive_trinv, &fast_trinv));
        for ((_, ea), (_, eb)) in naive_trinv.iter().zip(&fast_trinv) {
            prop_assert!(close(ea.median, eb.median));
        }
        let naive_sylv = rank_sylv_variants(&naive, 192, 32).unwrap();
        let fast_sylv = rank_sylv_variants(&compiled, 192, 32).unwrap();
        prop_assert!(same_order_up_to_ties(&naive_sylv, &fast_sylv));
        for ((_, ea), (_, eb)) in naive_sylv.iter().zip(&fast_sylv) {
            prop_assert!(close(ea.median, eb.median));
        }
    }
}
