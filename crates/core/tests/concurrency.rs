//! Concurrency guarantees of the parallel build stage and the serving layer:
//! parallel model construction is byte-identical to the serial build, and a
//! [`ModelService`] answers consistent predictions from many threads while
//! repositories are hot-swapped underneath it.

use std::sync::Arc;

use dla_core::machine::presets::harpertown_openblas;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::{Call, Locality, ModelService, Pipeline, Routine, TrinvVariant};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random quick configurations and seeds, the parallel build stage
    /// reproduces the serial repository bit for bit (reports included).
    #[test]
    fn parallel_build_reproduces_serial_build(
        seed in 0u64..1_000_000,
        max_size in 64usize..129,
        workers in 2usize..9,
    ) {
        let machine = harpertown_openblas();
        let serial_cfg = ModelSetConfig::quick(max_size).with_workers(1);
        let parallel_cfg = ModelSetConfig::quick(max_size).with_workers(workers);
        let workloads = [Workload::Trinv, Workload::Sylv];
        let (serial, serial_reports) =
            build_repository(&machine, Locality::InCache, seed, &serial_cfg, &workloads);
        let (parallel, parallel_reports) =
            build_repository(&machine, Locality::InCache, seed, &parallel_cfg, &workloads);
        prop_assert_eq!(serial.to_text().unwrap(), parallel.to_text().unwrap());
        prop_assert_eq!(serial_reports, parallel_reports);
    }
}

fn quick_service() -> ModelService {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(192);
    let (repo, _) = build_repository(&machine, Locality::InCache, 11, &cfg, &[Workload::Trinv]);
    ModelService::new(repo, machine, Locality::InCache)
}

/// Eight threads hammer one service with the same mix of per-call and trace
/// predictions; every thread must see identical, panic-free answers.
#[test]
fn service_serves_eight_threads_consistently() {
    let service = Arc::new(quick_service());
    let reference: Vec<f64> = (1..=8)
        .map(|i| {
            let call = Call::gemm(
                dla_core::blas::Trans::NoTrans,
                dla_core::blas::Trans::NoTrans,
                i * 16,
                i * 16,
                32,
                1.0,
                1.0,
            );
            service.predict_call(&call).unwrap().median
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = Arc::clone(&service);
            let reference = reference.clone();
            scope.spawn(move || {
                for _round in 0..50 {
                    for (i, &expected) in reference.iter().enumerate() {
                        let call = Call::gemm(
                            dla_core::blas::Trans::NoTrans,
                            dla_core::blas::Trans::NoTrans,
                            (i + 1) * 16,
                            (i + 1) * 16,
                            32,
                            1.0,
                            1.0,
                        );
                        let median = service.predict_call(&call).unwrap().median;
                        assert_eq!(median, expected);
                    }
                    // Snapshot predictors work concurrently too.
                    let predictor = service.predictor();
                    let trace = [Call::trsm(
                        dla_core::blas::Side::Left,
                        dla_core::blas::Uplo::Lower,
                        dla_core::blas::Trans::NoTrans,
                        dla_core::blas::Diag::NonUnit,
                        96,
                        96,
                        1.0,
                    )];
                    assert!(predictor.predict_trace(&trace).unwrap().ticks.median > 0.0);
                }
            });
        }
    });
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "repeated queries must hit the cache");
    assert!(service
        .snapshot()
        .get(Routine::Gemm, &service.machine().id(), Locality::InCache)
        .is_some());
}

/// Readers keep getting consistent answers while another thread repeatedly
/// hot-swaps the repository; predictors handed out before a swap survive it.
#[test]
fn hot_swap_under_concurrent_readers_is_panic_free() {
    let service = Arc::new(quick_service());
    let repo = service.snapshot();
    let call = Call::gemm(
        dla_core::blas::Trans::NoTrans,
        dla_core::blas::Trans::NoTrans,
        96,
        96,
        32,
        1.0,
        1.0,
    );
    let expected = service.predict_call(&call).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let service = Arc::clone(&service);
            let call = call.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    // The same repository content is swapped in and out, so
                    // every prediction must succeed with the same value.
                    let summary = service.predict_call(&call).unwrap();
                    assert_eq!(summary, expected);
                }
            });
        }
        let swapper = Arc::clone(&service);
        let swap_repo = Arc::clone(&repo);
        scope.spawn(move || {
            for _ in 0..50 {
                swapper.swap((*swap_repo).clone()).unwrap();
            }
        });
    });
    // A predictor taken now survives any later swap.
    let predictor = service.predictor();
    service.swap(dla_core::ModelRepository::new()).unwrap();
    assert_eq!(predictor.predict_call(&call).unwrap(), expected);
}

/// An `Arc`-shared pipeline ranks workloads from several threads at once.
#[test]
fn pipeline_ranks_concurrently_through_the_service() {
    let mut pipeline = Pipeline::new(harpertown_openblas())
        .with_model_config(ModelSetConfig::quick(192))
        .with_seed(5);
    pipeline.build_models(&[Workload::Trinv]);
    let pipeline = Arc::new(pipeline);
    let expected = pipeline.rank_trinv(160, 32).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let pipeline = Arc::clone(&pipeline);
            let expected = expected.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    let ranking = pipeline.rank_trinv(160, 32).unwrap();
                    assert_eq!(ranking.len(), expected.len());
                    for (got, want) in ranking.iter().zip(expected.iter()) {
                        assert_eq!(got.0, want.0);
                        assert_eq!(got.1.median, want.1.median);
                    }
                }
            });
        }
    });
    assert_ne!(expected[0].0, TrinvVariant::V4);
}
