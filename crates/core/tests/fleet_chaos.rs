//! Chaos suite for the fleet serving tier (the degraded-mode guarantee):
//!
//! * **Acceptance scenario** — one of three shards hard-down, 20% timeout
//!   faults on the rest: the fleet still answers 100% of in-deadline
//!   queries (tagged Stale/Proxied, zero unhandled errors), proxied
//!   predictions stay within the documented error bound, and the
//!   [`FleetHealth`] roll-up exactly accounts every retry, trip, recovery
//!   and shed.
//! * **Forced-outage round trip** — a shard taken hard-down after earning a
//!   last-good snapshot serves Stale for the whole outage, then recovers
//!   through a half-open probe once the outage clears.
//! * **Determinism** — responses and fleet counters are identical no matter
//!   how many worker threads drive the fleet (proptest over seeds and
//!   deadlines), because backoff schedules and chaos draws are pure
//!   functions of `(seed, query id, attempt)`.

use std::sync::{Arc, OnceLock};

use dla_core::blas::{Diag, Side, Trans, Uplo};
use dla_core::machine::presets::{
    harpertown_openblas, sandy_bridge_openblas, sandy_bridge_openblas_threaded,
};
use dla_core::machine::ChaosConfig;
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::predict::{
    BreakerConfig, BreakerState, ChaosShard, FleetBuilder, FleetConfig, FleetQuery, FleetResponse,
    FleetService, Priority, RetryPolicy, Served, ServiceClient, ShardClient,
};
use dla_core::{Call, Locality, MachineConfig, ModelRepository, ModelService};
use proptest::prelude::*;

/// Documented bound on the relative error of **proxied** medians against the
/// target machine's own (clean) model: the per-routine efficiency surface
/// (multilinear in log-size over the calibration grid) transfers the nearest
/// machine's prediction to within this factor on the trinv serving mix
/// (worst case measured 0.102 on this scenario; see EXPERIMENTS.md "Fleet
/// degradation under injected faults").  A single whole-mix geometric-mean
/// ratio is nowhere near this tight — it measures 0.89 on the same mix,
/// because the cross-machine ratio itself varies by over an order of
/// magnitude with routine and problem size (paper fig. IV.3/IV.4).
const PROXY_ERROR_BOUND: f64 = 0.15;

/// The three machines of the fleet, in shard order.
fn machines() -> Vec<MachineConfig> {
    vec![
        harpertown_openblas(),
        sandy_bridge_openblas(),
        sandy_bridge_openblas_threaded(),
    ]
}

/// One quick(64) trinv repository per machine, built once per process.
fn repositories() -> &'static Vec<(MachineConfig, ModelRepository)> {
    static REPOS: OnceLock<Vec<(MachineConfig, ModelRepository)>> = OnceLock::new();
    REPOS.get_or_init(|| {
        let cfg = ModelSetConfig::quick(64);
        machines()
            .into_iter()
            .enumerate()
            .map(|(i, machine)| {
                let (repo, _) = build_repository(
                    &machine,
                    Locality::InCache,
                    11 + i as u64,
                    &cfg,
                    &[Workload::Trinv],
                );
                (machine, repo)
            })
            .collect()
    })
}

/// Calls strictly inside the quick(64) trinv model spaces.
fn serving_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [12usize, 28, 44, 60] {
        for n in [16usize, 36, 52] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

/// An offline calibration sweep per routine: a size grid offset from (but
/// bracketing) the serving mix, so the measured proxy bound reflects genuine
/// interpolation error rather than calibrating on the queried calls.
fn calibration_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [8usize, 20, 36, 52, 64] {
        for n in [12usize, 28, 44, 56] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                24,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

struct ChaosFleet {
    fleet: FleetService,
    ids: Vec<String>,
    chaos: Vec<Arc<ChaosShard<ServiceClient>>>,
    services: Vec<Arc<ModelService>>,
}

/// Builds the acceptance fleet: shard 1 (sandy bridge) hard-down from the
/// start, shards 0 and 2 with `timeout_rate` timeout faults.
fn chaos_fleet(config: FleetConfig, timeout_rate: f64, chaos_seed: u64) -> ChaosFleet {
    let mut builder = FleetBuilder::new(config.clone());
    let mut ids = Vec::new();
    let mut chaos = Vec::new();
    let mut services = Vec::new();
    for (index, (machine, repo)) in repositories().iter().enumerate() {
        let service = Arc::new(ModelService::new(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
        ));
        let schedule = if index == 1 {
            ChaosConfig {
                seed: chaos_seed + index as u64,
                transient_probability: 1.0,
                ..ChaosConfig::default()
            }
        } else {
            ChaosConfig {
                seed: chaos_seed + index as u64,
                timeout_probability: timeout_rate,
                ..ChaosConfig::default()
            }
        };
        let shard = Arc::new(ChaosShard::new(
            ServiceClient::new(Arc::clone(&service), config.nominal_cost),
            schedule,
        ));
        let client: Arc<dyn ShardClient> = Arc::clone(&shard) as Arc<dyn ShardClient>;
        ids.push(machine.id());
        chaos.push(shard);
        services.push(Arc::clone(&service));
        builder = builder.shard_with_client(service, client);
    }
    let fleet = builder.build().expect("three distinct machines");
    ChaosFleet {
        fleet,
        ids,
        chaos,
        services,
    }
}

fn acceptance_config() -> FleetConfig {
    FleetConfig {
        seed: 0xACC3_97A4,
        calibration_calls: calibration_calls(),
        ..FleetConfig::default()
    }
}

fn queries(ids: &[String], count: usize, deadline: u64) -> Vec<FleetQuery> {
    let calls = serving_calls();
    (0..count)
        .map(|i| FleetQuery {
            id: i as u64,
            machine_id: ids[i % ids.len()].clone(),
            call: calls[i % calls.len()].clone(),
            deadline,
            priority: Priority::Normal,
        })
        .collect()
}

#[test]
fn degraded_fleet_answers_every_in_deadline_query() {
    let ChaosFleet {
        fleet,
        ids,
        chaos,
        services,
    } = chaos_fleet(acceptance_config(), 0.2, 0xC4A0_5EED);
    let queries = queries(&ids, 300, 600);

    let mut responses: Vec<FleetResponse> = Vec::new();
    for query in &queries {
        let response = fleet.query(query).expect("routable machine");
        assert!(
            response.served.is_answer(),
            "query {} was shed: {:?}",
            query.id,
            response.served
        );
        let summary = response.summary.as_ref().expect("answers carry a summary");
        assert!(
            summary.median.is_finite() && summary.mean.is_finite(),
            "query {} got a non-finite answer",
            query.id
        );
        assert!(response.elapsed <= query.deadline, "deadline overrun");
        responses.push(response);
    }

    // The hard-down shard never answered fresh: every one of its queries
    // was proxied (it never earned a last-good snapshot to serve stale).
    let health = fleet.health();
    let down = &health.shards[1];
    assert_eq!(down.fresh, 0, "a hard-down shard cannot answer fresh");
    assert_eq!(down.stale, 0, "no last-good snapshot was ever earned");
    assert_eq!(down.proxied, down.queries, "all its queries were proxied");
    assert_eq!(down.last_good_generation, None);
    // Its breaker walked the ladder exactly once and never recovered.
    assert_eq!(down.state, BreakerState::Down);
    assert_eq!(down.trips_degraded, 1);
    assert_eq!(down.trips_down, 1);
    assert_eq!(down.recoveries, 0);
    // Half-open probes ran (and failed) while Down: every probe is counted.
    assert!(down.probes > 0, "cooldown expiry must admit probes");

    // The timeout shards stayed healthy enough to serve almost everything
    // fresh; any full-query failure fell back to the last-good snapshot.
    for index in [0usize, 2] {
        let shard = &health.shards[index];
        assert!(shard.fresh > 0);
        assert_eq!(shard.proxied, 0, "live shards never needed a proxy");
        assert_eq!(
            shard.fresh + shard.stale + shard.shed,
            shard.queries,
            "shard {index} accounting"
        );
        assert!(
            shard.service.query_timeouts > 0,
            "20% timeout faults must reach shard {index}'s ledger"
        );
    }

    // Exact fleet-wide accounting: every query has exactly one outcome, the
    // roll-up is the exact sum of the shard slices, and the per-response
    // counters reconcile with the health counters.
    assert_eq!(health.queries, queries.len() as u64);
    assert_eq!(health.shed, 0, "the acceptance scenario sheds nothing");
    assert!((health.availability() - 1.0).abs() < f64::EPSILON);
    assert_eq!(
        health.fresh + health.stale + health.proxied + health.shed,
        health.queries
    );
    for (field, total) in [
        (health.fresh, health.shards.iter().map(|s| s.fresh).sum()),
        (health.stale, health.shards.iter().map(|s| s.stale).sum()),
        (
            health.proxied,
            health.shards.iter().map(|s| s.proxied).sum(),
        ),
        (
            health.retries,
            health.shards.iter().map(|s| s.retries).sum(),
        ),
        (
            health.timeouts,
            health.shards.iter().map(|s| s.timeouts).sum(),
        ),
        (health.errors, health.shards.iter().map(|s| s.errors).sum()),
        (
            health.trips_down,
            health.shards.iter().map(|s| s.trips_down).sum(),
        ),
        (health.probes, health.shards.iter().map(|s| s.probes).sum()),
    ] {
        let total: u64 = total;
        assert_eq!(field, total, "roll-up fields are exact sums");
    }
    assert_eq!(
        health.retries,
        responses.iter().map(|r| r.retries).sum::<u64>(),
        "every backoff-retry is accounted"
    );
    assert_eq!(
        health.timeouts,
        responses.iter().map(|r| r.timeouts).sum::<u64>(),
        "every attempt timeout is accounted"
    );
    assert_eq!(
        health.errors,
        responses.iter().map(|r| r.errors).sum::<u64>(),
        "every attempt error is accounted"
    );
    assert_eq!(health.in_flight, 0, "no query is left in flight");

    // The injected faults actually happened (the scenario is not vacuous).
    // Once the breaker is Down most queries are rejected without touching
    // the shard, so the transient count tracks attempts, not queries.
    assert!(chaos[1].fault_counts().transient > 0);
    assert!(chaos[0].fault_counts().timeouts > 0);
    assert!(chaos[2].fault_counts().timeouts > 0);

    // The hard-down shard's ledger saw its query errors, and the one-line
    // Display summary carries them.
    let ledger = services[1].health();
    assert!(ledger.query_errors > 0);
    let line = ledger.to_string();
    assert!(line.contains("err"), "ledger summary line: {line}");

    // Proxied answers stay within the documented error bound of the target
    // machine's own (clean, chaos-free) model.
    let reference = services[1].predictor();
    let mut worst = 0.0f64;
    for (query, response) in queries.iter().zip(&responses) {
        if let Served::Proxied { ratio, .. } = &response.served {
            assert!(ratio.is_finite() && *ratio > 0.0);
            let truth = reference
                .predict_call(&query.call)
                .expect("the clean model serves the whole mix")
                .median;
            let proxied = response.summary.as_ref().unwrap().median;
            let error = (proxied - truth).abs() / truth;
            worst = worst.max(error);
        }
    }
    assert!(health.proxied > 0);
    assert!(
        worst <= PROXY_ERROR_BOUND,
        "worst proxied relative error {worst:.4} exceeds the documented bound {PROXY_ERROR_BOUND}"
    );
}

#[test]
fn forced_outage_serves_stale_then_recovers_via_probe() {
    let config = FleetConfig {
        seed: 0x57A1_E5EE,
        calibration_calls: calibration_calls(),
        breaker: BreakerConfig {
            degraded_threshold: 2,
            down_threshold: 2,
            cooldown: 3,
            ledger_quarantine_limit: 0,
        },
        ..FleetConfig::default()
    };
    // No injected faults; the outage is forced explicitly.
    let ChaosFleet {
        fleet, ids, chaos, ..
    } = chaos_fleet(config, 0.0, 0x0DD5_EED5);
    let calls = serving_calls();
    let target = &ids[0];

    // Phase 1: earn a last-good snapshot with clean traffic.
    for i in 0..4u64 {
        let response = fleet
            .query(&FleetQuery {
                id: i,
                machine_id: target.clone(),
                call: calls[i as usize % calls.len()].clone(),
                deadline: 400,
                priority: Priority::Normal,
            })
            .unwrap();
        assert!(matches!(response.served, Served::Fresh { .. }));
    }
    assert!(fleet.shard_health()[target].last_good_generation.is_some());

    // Phase 2: hard outage — every query is answered Stale from the
    // retained snapshot (never proxied, never shed).
    chaos[0].set_forced_down(true);
    for i in 100..120u64 {
        let response = fleet
            .query(&FleetQuery {
                id: i,
                machine_id: target.clone(),
                call: calls[i as usize % calls.len()].clone(),
                deadline: 400,
                priority: Priority::Normal,
            })
            .unwrap();
        assert!(
            matches!(response.served, Served::Stale { .. }),
            "outage query {i} served {:?}",
            response.served
        );
    }
    let during = fleet.shard_health();
    assert_eq!(during[target].state, BreakerState::Down);
    assert_eq!(during[target].trips_degraded, 1);
    assert_eq!(during[target].trips_down, 1);

    // Phase 3: outage clears — the next admitted half-open probe succeeds
    // and the breaker recovers to Healthy; traffic is Fresh again.
    chaos[0].set_forced_down(false);
    let mut fresh_again = false;
    for i in 200..220u64 {
        let response = fleet
            .query(&FleetQuery {
                id: i,
                machine_id: target.clone(),
                call: calls[i as usize % calls.len()].clone(),
                deadline: 400,
                priority: Priority::Normal,
            })
            .unwrap();
        assert!(response.served.is_answer());
        if matches!(response.served, Served::Fresh { .. }) {
            fresh_again = true;
        }
    }
    assert!(fresh_again, "the probe must reopen the shard");
    let after = fleet.shard_health();
    assert_eq!(after[target].state, BreakerState::Healthy);
    assert_eq!(after[target].recoveries, 1, "exactly one recovery");
    assert!(after[target].probes >= 1);
}

/// Everything observable about one response: served tag, median bits,
/// retries, timeouts, errors, elapsed.
type Observation = (String, u64, u64, u64, u64, u64);

/// The aggregate fleet counters compared across worker counts: queries,
/// fresh, stale, proxied, shed, retries, timeouts, errors.
type HealthCounters = (u64, u64, u64, u64, u64, u64, u64, u64);

/// Runs `queries` against `fleet` with `workers` threads (queries assigned
/// round-robin), returning per-query observations in query order.
fn run_with_workers(
    fleet: &FleetService,
    queries: &[FleetQuery],
    workers: usize,
) -> Vec<Observation> {
    let mut observations: Vec<Option<Observation>> = (0..queries.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut per_worker: Vec<Vec<(usize, &mut Option<Observation>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (index, slot) in observations.iter_mut().enumerate() {
            per_worker[index % workers].push((index, slot));
        }
        for pairs in per_worker {
            scope.spawn(move || {
                for (index, slot) in pairs {
                    let response = fleet.query(&queries[index]).expect("routable machine");
                    let median = response
                        .summary
                        .as_ref()
                        .map(|s| s.median.to_bits())
                        .unwrap_or(0);
                    *slot = Some((
                        format!("{:?}", response.served),
                        median,
                        response.retries,
                        response.timeouts,
                        response.errors,
                        response.elapsed,
                    ));
                }
            });
        }
    });
    observations
        .into_iter()
        .map(|o| o.expect("every query ran"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Seeded backoff schedules and shard routing make fleet responses a
    /// pure function of the query set: running the same queries with 1, 2
    /// or 4 workers yields identical per-query outcomes and identical
    /// fleet counters.
    #[test]
    fn fleet_responses_are_deterministic_across_worker_counts(
        fleet_seed in 0u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
        deadline in 150u64..500,
    ) {
        let config = FleetConfig {
            seed: fleet_seed,
            calibration_calls: calibration_calls(),
            // Trip-free breaker: admission never depends on cross-query
            // history, so worker interleaving cannot change outcomes.
            breaker: BreakerConfig {
                degraded_threshold: u32::MAX,
                down_threshold: u32::MAX,
                cooldown: 1,
                ledger_quarantine_limit: 0,
            },
            retry: RetryPolicy::default(),
            ..FleetConfig::default()
        };

        let mut baseline: Option<Vec<Observation>> = None;
        let mut baseline_health: Option<HealthCounters> = None;
        for workers in [1usize, 2, 4] {
            // A fresh fleet per worker count: same shards, same seeds.
            let ChaosFleet { fleet, ids, .. } = chaos_fleet(config.clone(), 0.0, chaos_seed);
            let queries = queries(&ids, 60, deadline);
            let observed = run_with_workers(&fleet, &queries, workers);
            let health = fleet.health();
            let counters = (
                health.queries,
                health.fresh,
                health.stale,
                health.proxied,
                health.shed,
                health.retries,
                health.timeouts,
                health.errors,
            );
            match (&baseline, &baseline_health) {
                (None, _) => {
                    baseline = Some(observed);
                    baseline_health = Some(counters);
                }
                (Some(expected), Some(expected_health)) => {
                    prop_assert_eq!(expected, &observed);
                    prop_assert_eq!(expected_health, &counters);
                }
                _ => unreachable!(),
            }
        }
    }
}
