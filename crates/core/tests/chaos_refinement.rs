//! End-to-end drift recovery under measurement chaos: the same scenario as
//! `online_refinement.rs` (offline build, machine drifts, telemetry-driven
//! refinement pulls the served predictions back), but the refiner's executor
//! is wrapped in a [`ChaosExecutor`] injecting a ~20 % mixed fault rate —
//! transient harness failures, ×10 latency spikes and non-finite ticks.
//!
//! The fault-tolerance acceptance criteria:
//!
//! - the chaotic loop still converges, to within 2× of the fault-free run
//!   given the same round budget, and still recovers the drift by ≥ 2×,
//! - every fault is absorbed structurally (retries, robust trimming,
//!   quarantine) — zero panics, and the retry/discard/quarantine provenance
//!   is visible in the per-round [`RefineOutcome`]s,
//! - the [`ServiceHealth`] ledger accounts the whole campaign.

use std::sync::Arc;

use dla_core::blas::{Diag, Side, Trans, Uplo};
use dla_core::machine::cost::estimate_ticks;
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::{ChaosConfig, ChaosExecutor, Executor, SimExecutor};
use dla_core::modeler::online::dedupe_templates;
use dla_core::modeler::{OnlineRefiner, OnlineRefinerConfig, RefinementConfig};
use dla_core::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dla_core::{Call, Locality, MachineConfig, ModelService, RefineOutcome, Workload};

/// The same drift as the fault-free end-to-end test: identical identity,
/// degraded performance characteristics.
fn drifted(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.blas.gemm.peak_efficiency *= 0.55;
    m.blas.trsm.peak_efficiency *= 0.62;
    m.blas.trmm.peak_efficiency *= 0.58;
    m.blas.trsm.half_dim *= 1.8;
    m.blas.trtri_unb.peak_efficiency *= 0.7;
    m
}

/// Calls spanning the quick(256) trinv model spaces.
fn eval_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [24usize, 64, 120, 176, 232] {
        for n in [24usize, 72, 136, 200, 248] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::trmm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
        }
    }
    for m in [32usize, 96, 160, 224] {
        for n in [40usize, 104, 168, 240] {
            for k in [16usize, 64, 112] {
                calls.push(Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    m,
                    n,
                    k,
                    1.0,
                    1.0,
                ));
            }
        }
    }
    calls
}

/// Mean relative error of the served predictions against the drifted
/// machine's deterministic cost surface.  Serving the evaluation traffic is
/// also what feeds the refinement telemetry.
fn mean_error(service: &ModelService, truth_machine: &MachineConfig, calls: &[Call]) -> f64 {
    let mut acc = 0.0;
    for call in calls {
        let predicted = service.predict_call(call).expect("prediction").median;
        let truth = estimate_ticks(truth_machine, call, Locality::InCache);
        acc += (predicted - truth).abs() / truth;
    }
    acc / calls.len() as f64
}

fn refiner_config() -> OnlineRefinerConfig {
    OnlineRefinerConfig {
        fit: RefinementConfig {
            error_bound: 0.10,
            min_region_size: 64,
            grid_per_dim: 4,
            degree: 2,
        },
        sample_budget: 4096,
        max_cells: 256,
        min_queries: 1,
        ..Default::default()
    }
}

/// Drives `rounds` telemetry → refine → merge rounds and returns the
/// per-round outcomes plus the final mean error.  Identical for the
/// fault-free and the chaotic refiner — only the executor differs.
fn run_rounds<E: Executor>(
    service: &ModelService,
    refiner: &mut OnlineRefiner<E>,
    truth: &MachineConfig,
    calls: &[Call],
    rounds: usize,
) -> (Vec<RefineOutcome>, f64) {
    let mut outcomes = Vec::new();
    for _ in 0..rounds {
        // Serve the evaluation traffic: the refinement loop is driven solely
        // by the telemetry this leaves behind.
        let _ = mean_error(service, truth, calls);
        let report = service.refinement_report();
        if report.is_empty() {
            break;
        }
        let (delta, outcome) = refiner.refine(&service.snapshot(), &report);
        service.record_refinement(&outcome);
        if !delta.is_empty() {
            service
                .merge(delta)
                .expect("the refiner's own validation makes its deltas publishable");
        }
        outcomes.push(outcome);
    }
    (outcomes, mean_error(service, truth, calls))
}

#[test]
fn chaotic_refinement_converges_within_2x_of_fault_free() {
    let machine = harpertown_openblas();
    let drifted_machine = drifted(&machine);
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let calls = eval_calls();
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let templates = dedupe_templates(&templates);
    const ROUNDS: usize = 4;
    const REPETITIONS: usize = 5; // ≥ MIN_ROBUST_SAMPLES, so MAD trimming is live

    // Reference: the fault-free loop, same drift, same budget, same rounds.
    let fault_free_service = Arc::new(ModelService::new(
        repo.clone(),
        machine.clone(),
        Locality::InCache,
    ));
    let mut fault_free_refiner = OnlineRefiner::new(
        SimExecutor::new(drifted_machine.clone(), 0xd41f7),
        Locality::InCache,
        REPETITIONS,
        refiner_config(),
    )
    .with_templates(&templates);
    let (fault_free_outcomes, fault_free_error) = run_rounds(
        &fault_free_service,
        &mut fault_free_refiner,
        &drifted_machine,
        &calls,
        ROUNDS,
    );
    assert!(
        fault_free_outcomes
            .iter()
            .all(|o| o.sample_retries == 0 && o.cells_quarantined == 0),
        "the fault-free executor must not trigger the retry or quarantine paths"
    );

    // Under test: the same loop with ~20 % of measurements faulted (40 %
    // transient failures, 30 % ×10 spikes, 30 % non-finite ticks).  The
    // retry budget is raised: one transient anywhere in a measurement batch
    // fails the whole attempt, so per-point failure odds compound.
    let service = Arc::new(ModelService::new(repo, machine, Locality::InCache));
    let error_before = mean_error(&service, &drifted_machine, &calls);
    assert!(
        error_before > 0.2,
        "the drift must actually hurt predictions (got {error_before})"
    );
    let chaos = ChaosExecutor::new(
        SimExecutor::new(drifted_machine.clone(), 0xd41f7),
        ChaosConfig::mixed(0xc4a05, 0.20),
    );
    assert!((chaos.config().fault_rate() - 0.20).abs() < 1e-12);
    let mut refiner = OnlineRefiner::new(chaos, Locality::InCache, REPETITIONS, refiner_config())
        .with_templates(&templates);
    refiner.set_max_retries(6);
    let (outcomes, error_after) =
        run_rounds(&service, &mut refiner, &drifted_machine, &calls, ROUNDS);

    // Chaos was really injected, and every fault was absorbed structurally.
    let faults = refiner.executor_mut().fault_counts();
    assert!(faults.total() > 0, "the chaos schedule must actually fire");
    assert!(faults.transient > 0 && faults.non_finite > 0);
    let retries: u64 = outcomes.iter().map(|o| o.sample_retries).sum();
    let discarded: u64 = outcomes.iter().map(|o| o.samples_discarded).sum();
    assert!(retries > 0, "transient faults must surface as retries");
    assert!(
        discarded > 0,
        "non-finite/spiked ticks must surface as discards"
    );

    // Convergence: the drift is recovered (≥ 2× error reduction) and the
    // chaotic loop lands within 2× of the fault-free loop's final error.
    assert!(
        error_after * 2.0 <= error_before,
        "chaotic refinement must still recover the drift \
         (before {error_before}, after {error_after})"
    );
    assert!(
        error_after <= fault_free_error * 2.0,
        "20% faults may cost at most 2x of the fault-free convergence \
         (fault-free {fault_free_error}, chaotic {error_after})"
    );

    // Quarantine provenance is structurally consistent in every round: a
    // reported cell carries its strike count (at/above the threshold) and a
    // cooldown no longer than configured.
    let config = refiner.config();
    for outcome in &outcomes {
        for cell in &outcome.quarantined {
            assert!(cell.failures >= config.quarantine_threshold);
            assert!(cell.cooldown_remaining <= config.quarantine_cooldown);
        }
    }

    // The health ledger accounts the whole campaign: every accepted merge,
    // every retry, discard, fit failure and recovery, and zero rejections —
    // the refiner's own validation means nothing bad was ever offered.
    let health = service.health();
    assert_eq!(health.publishes_rejected, 0);
    // The chaos service starts at generation 0 and only the loop's accepted
    // merges advanced it, so the generation IS the accepted-publish count.
    let generation = service.refinement_report().generation;
    assert!(generation > 0, "at least one round must publish a delta");
    assert_eq!(health.publishes_accepted, generation);
    assert_eq!(health.last_good_generation, generation);
    assert_eq!(
        health.sample_retries,
        outcomes.iter().map(|o| o.sample_retries).sum::<u64>()
    );
    assert_eq!(
        health.samples_discarded,
        outcomes.iter().map(|o| o.samples_discarded).sum::<u64>()
    );
    assert_eq!(
        health.fit_failures,
        outcomes.iter().map(|o| o.fit_failures as u64).sum::<u64>()
    );
    assert_eq!(
        health.cells_recovered,
        outcomes
            .iter()
            .map(|o| o.cells_recovered as u64)
            .sum::<u64>()
    );
    assert_eq!(
        health.quarantined_regions,
        outcomes
            .last()
            .map(|o| o.quarantined.len() as u64)
            .unwrap_or(0)
    );
}

/// End-to-end quarantine → cooldown → probe → recovery, visible through the
/// service's health ledger: a harness so broken that every measurement fails
/// transiently quarantines the hot cells, the service keeps serving its last
/// good generation throughout, and once the harness heals the half-open
/// probes rebuild the cells and the drift is finally recovered.
#[test]
fn quarantined_cells_recover_through_the_service_once_the_harness_heals() {
    let machine = harpertown_openblas();
    let drifted_machine = drifted(&machine);
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let calls = eval_calls();
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let templates = dedupe_templates(&templates);

    let service = Arc::new(ModelService::new(repo, machine, Locality::InCache));
    let error_before = mean_error(&service, &drifted_machine, &calls);
    let chaos = ChaosExecutor::new(
        SimExecutor::new(drifted_machine.clone(), 0xd41f7),
        ChaosConfig {
            seed: 0xbad,
            transient_probability: 1.0,
            ..ChaosConfig::default()
        },
    );
    let mut refiner = OnlineRefiner::new(chaos, Locality::InCache, 5, refiner_config())
        .with_templates(&templates);

    // Two rounds against the dead harness: every cell strikes out twice and
    // lands in quarantine.  Nothing publishes, the served surface is frozen
    // at the last good generation, and the ledger says so.
    let (broken_outcomes, error_broken) =
        run_rounds(&service, &mut refiner, &drifted_machine, &calls, 2);
    assert_eq!(broken_outcomes.len(), 2);
    assert!(broken_outcomes.iter().all(|o| o.cells_refined == 0));
    let quarantined: usize = broken_outcomes.iter().map(|o| o.cells_quarantined).sum();
    assert!(quarantined > 0, "a dead harness must trip circuit breakers");
    let health = service.health();
    assert_eq!(health.publishes_accepted, 0);
    assert_eq!(health.last_good_generation, 0);
    assert_eq!(health.quarantined_regions, quarantined as u64);
    assert_eq!(
        error_broken, error_before,
        "degraded mode serves the unchanged last good generation"
    );

    // The harness heals (the chaos stream continues — only the fault rates
    // change, so the schedule stays deterministic).  Cooldown is 2: one
    // skipped round, then half-open probes rebuild every quarantined cell.
    refiner.executor_mut().config_mut().transient_probability = 0.0;
    let (healed_outcomes, error_healed) =
        run_rounds(&service, &mut refiner, &drifted_machine, &calls, 2);
    assert_eq!(healed_outcomes.len(), 2);
    assert_eq!(
        healed_outcomes[0].skipped_quarantined, quarantined,
        "the first healed round still sits out the cooldown"
    );
    let recovered: usize = healed_outcomes.iter().map(|o| o.cells_recovered).sum();
    assert_eq!(recovered, quarantined, "every probe must close its breaker");
    assert!(healed_outcomes.last().unwrap().quarantined.is_empty());

    let health = service.health();
    assert_eq!(health.cells_recovered, recovered as u64);
    assert_eq!(health.quarantined_regions, 0);
    assert!(health.publishes_accepted > 0);
    assert!(
        error_healed * 2.0 <= error_before,
        "recovered cells must pull the drift back \
         (before {error_before}, after {error_healed})"
    );
}
