//! Chaos test for the guarded publication path: NaN/∞-poisoned repository
//! deltas are thrown at [`ModelService::merge`] while four predict threads
//! hammer the service.  The invariants under fire:
//!
//! - no served prediction is ever non-finite,
//! - the served generation never adopts a rejected repository,
//! - every rejection (and every accepted publish) is accounted in the
//!   [`ServiceHealth`](dla_core::predict::ServiceHealth) ledger,
//! - valid publishes interleaved with the poison still go through.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dla_core::blas::{Diag, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::model::{
    submodel_key, PiecewiseModel, Polynomial, Region, RegionModel, RoutineModel, VectorPolynomial,
};
use dla_core::predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_core::{Call, Locality, ModelRepository, ModelService, Routine};
use proptest::prelude::*;

/// A delta carrying exactly one poisoned coefficient: `value` (NaN or ±∞) at
/// vector-polynomial component `component` of a gemm submodel.  Everything
/// else about the delta is well formed, so the validator's rejection is
/// attributable to the single non-finite coefficient.
fn poisoned_delta(machine_id: &str, value: f64, component: usize) -> ModelRepository {
    let space = Region::new(vec![8, 8, 8], vec![128, 128, 128]);
    let clean = Polynomial::new(3, vec![vec![0, 0, 0]], vec![1.0]).unwrap();
    let poisoned = Polynomial::new(3, vec![vec![0, 0, 0]], vec![value]).unwrap();
    let mut polys = vec![clean; 5];
    polys[component % 5] = poisoned;
    let poly = VectorPolynomial::new(polys).unwrap();
    let region = RegionModel {
        region: space.clone(),
        poly,
        error: 0.0,
        samples_used: 1,
        revision: 0,
    };
    let piecewise = PiecewiseModel::new(space.clone(), vec![region], 1);
    let mut model = RoutineModel::new(Routine::Gemm, machine_id, Locality::InCache, space);
    let template = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
    model.insert_submodel(submodel_key(&template), piecewise);
    let mut repo = ModelRepository::new();
    repo.insert(model);
    repo
}

/// Calls strictly inside the quick(192) trinv model spaces.
fn serving_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [24usize, 72, 120, 168] {
        for n in [32usize, 88, 144, 184] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::trmm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                48,
                1.0,
                1.0,
            ));
        }
    }
    calls
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random poison patterns (which non-finite value, which coefficient,
    /// how many attempts, where the one valid publish lands in between)
    /// never reach the serving path.
    #[test]
    fn poisoned_merges_never_reach_serving_under_concurrent_predicts(
        value_kind in 0usize..3,
        component in 0usize..5,
        attempts in 2usize..6,
        valid_after in 0usize..6,
    ) {
        let value = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][value_kind];
        let machine = harpertown_openblas();
        let machine_id = machine.id();
        let cfg = ModelSetConfig::quick(192);
        let (repo, _) =
            build_repository(&machine, Locality::InCache, 11, &cfg, &[Workload::Trinv]);
        let service = Arc::new(ModelService::new(repo, machine, Locality::InCache));
        let calls = serving_calls();

        // Every serving answer is finite before the chaos starts; remember
        // the baseline so the raced answers can be compared exactly.
        let baseline: Vec<f64> = calls
            .iter()
            .map(|c| service.predict_call(c).unwrap().median)
            .collect();
        prop_assert!(baseline.iter().all(|m| m.is_finite()));
        let health_before = service.health();
        let generation_before = service.refinement_report().generation;

        let stop = AtomicBool::new(false);
        let poison_outcome = std::thread::scope(|scope| {
            // Four predict threads hammer the service throughout the
            // poisoned publishes; they must only ever see the published
            // (finite) surface.
            for reader in 0..4 {
                let service = Arc::clone(&service);
                let stop = &stop;
                let calls = &calls;
                let baseline = &baseline;
                scope.spawn(move || {
                    let mut i = reader;
                    while !stop.load(Ordering::Relaxed) {
                        let idx = i % calls.len();
                        let median = service
                            .predict_call(&calls[idx])
                            .expect("serving must survive poisoned publishes")
                            .median;
                        assert!(
                            median.is_finite(),
                            "a non-finite prediction leaked into serving"
                        );
                        // The poison never lands, and the one valid publish
                        // republishes the same content, so the surface is
                        // bit-stable the whole time.
                        assert_eq!(median, baseline[idx]);
                        i += 1;
                    }
                });
            }

            let mut rejected = 0usize;
            let mut accepted = 0usize;
            for attempt in 0..attempts {
                if attempt == valid_after {
                    // A valid publish interleaved with the poison: merging a
                    // clone of the served repository must still be accepted.
                    service
                        .merge((*service.snapshot()).clone())
                        .expect("a clone of the served repository is valid");
                    accepted += 1;
                }
                let delta = poisoned_delta(&machine_id, value, component + attempt);
                let err = service
                    .merge(delta)
                    .expect_err("a non-finite delta must be rejected");
                assert!(matches!(err, dla_core::model::ModelError::Validation(_)));
                rejected += 1;
            }
            stop.store(true, Ordering::Relaxed);
            (rejected, accepted)
        });
        let (rejected, accepted) = poison_outcome;

        // The ledger accounts every publication attempt.
        let health = service.health();
        prop_assert_eq!(
            health.publishes_rejected,
            health_before.publishes_rejected + rejected as u64
        );
        prop_assert_eq!(
            health.publishes_accepted,
            health_before.publishes_accepted + accepted as u64
        );

        // The generation only ever advanced for accepted publishes, and the
        // last good generation tracks the served one.
        let generation_after = service.refinement_report().generation;
        prop_assert_eq!(generation_after, generation_before + accepted as u64);
        prop_assert_eq!(health.last_good_generation, generation_after);

        // Nothing non-finite became visible in the served snapshot.
        let snapshot = service.snapshot();
        prop_assert!(snapshot
            .iter()
            .flat_map(|(_, m)| m.submodels.values())
            .flat_map(|s| s.regions.iter())
            .flat_map(|r| r.poly.polynomials())
            .all(|p| p.coefficients().iter().all(|c| c.is_finite())));

        // And the served answers are still the baseline ones.
        for (call, expected) in calls.iter().zip(&baseline) {
            prop_assert_eq!(service.predict_call(call).unwrap().median, *expected);
        }
    }
}
