//! End-to-end online adaptive refinement on a drifting simulated machine.
//!
//! The scenario the tentpole exists for: models are built offline on machine
//! state A, the machine then drifts to state B (same identity, different
//! performance — a library update, a frequency policy change, a neighbour
//! stealing memory bandwidth), and the served predictions go stale.  The
//! serving telemetry → refinement report → targeted re-sampling → submodel-
//! granular hot-swap loop has to pull the predictions back towards the
//! *current* machine behaviour, while the service keeps answering queries
//! concurrently, within a fixed sample budget, and driven **solely** by
//! `ModelService::refinement_report()`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dla_core::blas::{Diag, Side, Trans, Uplo};
use dla_core::machine::cost::estimate_ticks;
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::SimExecutor;
use dla_core::modeler::online::dedupe_templates;
use dla_core::modeler::{OnlineRefiner, OnlineRefinerConfig, RefinementConfig};
use dla_core::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dla_core::{Call, Locality, MachineConfig, ModelService, Workload};

/// The drifted machine: identical identity (same id string — this is the
/// same machine as far as the repository is concerned), different
/// performance characteristics.
fn drifted(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.blas.gemm.peak_efficiency *= 0.55;
    m.blas.trsm.peak_efficiency *= 0.62;
    m.blas.trmm.peak_efficiency *= 0.58;
    m.blas.trsm.half_dim *= 1.8;
    m.blas.trtri_unb.peak_efficiency *= 0.7;
    m
}

/// Calls spanning the quick(256) trinv model spaces (all strictly inside,
/// so clamping never blurs the comparison).
fn eval_calls() -> Vec<Call> {
    let mut calls = Vec::new();
    for m in [24usize, 64, 120, 176, 232] {
        for n in [24usize, 72, 136, 200, 248] {
            calls.push(Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
            calls.push(Call::trmm(
                Side::Right,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                m,
                n,
                1.0,
            ));
        }
    }
    for m in [32usize, 96, 160, 224] {
        for n in [40usize, 104, 168, 240] {
            for k in [16usize, 64, 112] {
                calls.push(Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    m,
                    n,
                    k,
                    1.0,
                    1.0,
                ));
            }
        }
    }
    calls
}

/// Mean relative error of the served predictions against the *drifted*
/// machine's deterministic cost surface.
fn mean_error(service: &ModelService, truth_machine: &MachineConfig, calls: &[Call]) -> f64 {
    let mut acc = 0.0;
    for call in calls {
        let predicted = service.predict_call(call).expect("prediction").median;
        let truth = estimate_ticks(truth_machine, call, Locality::InCache);
        acc += (predicted - truth).abs() / truth;
    }
    acc / calls.len() as f64
}

#[test]
fn online_refinement_recovers_from_machine_drift() {
    let machine = harpertown_openblas();
    let drifted_machine = drifted(&machine);
    assert_eq!(
        machine.id(),
        drifted_machine.id(),
        "drift must not change the machine's identity"
    );

    // Offline build on the pre-drift machine.
    let cfg = ModelSetConfig::quick(256);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let service = Arc::new(ModelService::new(repo, machine.clone(), Locality::InCache));

    // The machine drifts.  Serve the evaluation traffic: this both measures
    // how stale the predictions are and feeds the refinement telemetry.
    let calls = eval_calls();
    let error_before = mean_error(&service, &drifted_machine, &calls);
    assert!(
        error_before > 0.2,
        "the drift must actually hurt predictions (got {error_before})"
    );

    // The refinement loop is driven *solely* by the service's report.
    let report = service.refinement_report();
    assert!(!report.is_empty());
    assert_eq!(report.total_queries as usize, calls.len());
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let mut refiner = OnlineRefiner::new(
        SimExecutor::new(drifted_machine.clone(), 0xd41f7),
        Locality::InCache,
        3,
        OnlineRefinerConfig {
            fit: RefinementConfig {
                error_bound: 0.10,
                min_region_size: 64,
                grid_per_dim: 4,
                degree: 2,
            },
            sample_budget: 4096,
            max_cells: 256,
            min_queries: 1,
            ..Default::default()
        },
    )
    .with_templates(&dedupe_templates(&templates));

    // Serving stays live while the refiner samples and the delta is merged:
    // reader threads hammer predict_call throughout and must never fail.
    let generation_before = report.generation;
    let stop = AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        for reader in 0..3 {
            let service = Arc::clone(&service);
            let stop = &stop;
            let calls = &calls;
            scope.spawn(move || {
                let mut i = reader;
                while !stop.load(Ordering::Relaxed) {
                    let call = &calls[i % calls.len()];
                    service
                        .predict_call(call)
                        .expect("serving must continue during refine + swap");
                    i += 1;
                }
            });
        }
        let snapshot = service.snapshot();
        let (delta, outcome) = refiner.refine(&snapshot, &report);
        assert!(!delta.is_empty());
        service.merge(delta).unwrap();
        stop.store(true, Ordering::Relaxed);
        outcome
    });

    assert!(outcome.cells_refined > 0);
    assert!(outcome.samples_used > 0);
    assert!(
        outcome.samples_used <= 4096 + 256,
        "budget may only be overshot by the final cell ({} used)",
        outcome.samples_used
    );
    assert!(
        service.refinement_report().generation > generation_before,
        "the publish must go through the hot-swap generation machinery"
    );

    // The served predictions must track the drifted machine again:
    // strictly better, and by at least 2x, within the fixed budget.
    let error_after = mean_error(&service, &drifted_machine, &calls);
    assert!(
        error_after < error_before,
        "prediction error must strictly decrease ({error_before} -> {error_after})"
    );
    assert!(
        error_after * 2.0 <= error_before,
        "refinement must reduce mean prediction error at least 2x \
         (before {error_before}, after {error_after})"
    );

    // Provenance: the rebuilt regions carry bumped revisions, the untouched
    // ones do not.
    let snapshot = service.snapshot();
    let revised = snapshot
        .iter()
        .flat_map(|(_, m)| m.submodels.values())
        .flat_map(|s| s.regions.iter())
        .filter(|r| r.revision > 0)
        .count();
    assert_eq!(revised, outcome.regions_added);

    // A second round over fresh telemetry refines the *new* hottest cells;
    // rebuilt regions show up with their bumped revision in the report.
    let report2 = service.refinement_report();
    assert!(report2.cells.iter().any(|c| c.revision > 0));
    let (delta2, outcome2) = refiner.refine(&service.snapshot(), &report2);
    if !delta2.is_empty() {
        service.merge(delta2).unwrap();
        let error_round2 = mean_error(&service, &drifted_machine, &calls);
        assert!(
            error_round2 <= error_after * 1.5,
            "a second round must not regress materially \
             ({error_after} -> {error_round2})"
        );
        assert!(outcome2.cells_refined > 0);
    }
}
