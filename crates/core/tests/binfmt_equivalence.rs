//! Binary-format equivalence: arbitrary repositories — `NaN`/`±inf`
//! coefficients and errors included — roundtrip through the zero-copy binary
//! format with byte-identical re-serialisation and predictions identical to
//! both the text roundtrip and the directly compiled original; corrupted,
//! truncated, wrong-version and wrong-endian inputs are rejected with a
//! structured error, never a panic; a binary-loaded repository keeps
//! participating in the merge/refine loop; and the batched trace-prediction
//! paths (compiled predictor and memoizing service) are bit-identical to the
//! pointwise walk.

use dla_core::blas::{Call, Diag, Routine, Side, Trans, Uplo};
use dla_core::machine::presets::harpertown_openblas;
use dla_core::machine::SimExecutor;
use dla_core::mat::stats::{Quantity, Summary};
use dla_core::model::{
    ModelError, ModelRepository, PiecewiseModel, Polynomial, Region, RegionModel, RoutineModel,
    VectorPolynomial,
};
use dla_core::modeler::online::dedupe_templates;
use dla_core::modeler::{OnlineRefiner, OnlineRefinerConfig};
use dla_core::predict::modelset::{build_repository, workload_templates, ModelSetConfig};
use dla_core::predict::TraceEvaluator;
use dla_core::{Locality, ModelService, Predictor, Workload};
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny deterministic generator (splitmix64), as in the sibling equivalence
/// suites.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    fn coeff(&mut self, scale: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (2.0 * unit - 1.0) * scale
    }

    /// A coefficient that is occasionally `NaN`, `±inf`, or negative zero
    /// (the value whose sign bit only a bitwise roundtrip preserves).
    fn wild_coeff(&mut self) -> f64 {
        match self.range(0, 11) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            _ => self.coeff(1e3),
        }
    }
}

/// `a` and `b` agree to the 1e-12 criterion (NaN matches NaN, infinities
/// must match exactly).
fn same(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

fn assert_same_summary(a: &Summary, b: &Summary) {
    for q in Quantity::ALL {
        assert!(
            same(a.get(q), b.get(q)),
            "{q:?}: {} vs {}",
            a.get(q),
            b.get(q)
        );
    }
}

/// Bitwise agreement — the criterion for the batched evaluation paths, which
/// promise the *exact* floats of the pointwise walk.
fn bit_same_summary(a: &Summary, b: &Summary) -> bool {
    Quantity::ALL
        .iter()
        .all(|&q| a.get(q).to_bits() == b.get(q).to_bits())
        && a.count == b.count
}

/// A random region model over `region`: a fitted-looking polynomial basis
/// with random (occasionally non-finite) coefficients and a random
/// (occasionally non-finite) fit error.
fn random_region_model(gen: &mut Gen, region: &Region) -> RegionModel {
    let dim = region.dim();
    let degree = gen.range(0, 2) as u32;
    let exponents = dla_core::model::monomial_exponents(dim, degree);
    let polys: Vec<Polynomial> = (0..Quantity::ALL.len())
        .map(|_| {
            let coeffs: Vec<f64> = exponents.iter().map(|_| gen.wild_coeff()).collect();
            Polynomial::new(dim, exponents.clone(), coeffs).unwrap()
        })
        .collect();
    let error = match gen.range(0, 7) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => gen.coeff(0.5).abs(),
    };
    RegionModel {
        region: region.clone(),
        poly: VectorPolynomial::new(polys).unwrap(),
        error,
        samples_used: gen.range(1, 99),
        revision: 0,
    }
}

/// A random routine model with 1–3 flag-variant submodels.
fn random_routine_model(gen: &mut Gen, routine: Routine, machine_id: &str) -> RoutineModel {
    let dim = routine.size_count();
    let hi = 8 * gen.range(8, 48);
    let space = Region::new(vec![8; dim], vec![hi; dim]);
    let mut model = RoutineModel::new(routine, machine_id, Locality::InCache, space.clone());
    let variants = gen.range(1, 3);
    for v in 0..variants {
        let flags: Vec<usize> = (0..routine.flag_count().min(3)).map(|_| v % 2).collect();
        let mut regions = Vec::new();
        for part in space.split(gen.range(16, 64), 8) {
            regions.push(random_region_model(gen, &part));
        }
        if gen.range(0, 1) == 1 {
            // An extra overlapping region exercises min-error selection.
            regions.push(random_region_model(gen, &space));
        }
        let total = regions.iter().map(|r| r.samples_used).sum();
        model.insert_submodel(flags, PiecewiseModel::new(space.clone(), regions, total));
    }
    model
}

fn random_repository(seed: u64, machine_id: &str) -> ModelRepository {
    let mut gen = Gen(seed);
    let mut repo = ModelRepository::new();
    for routine in [
        Routine::Trsm,
        Routine::Gemm,
        Routine::TrtriUnb,
        Routine::SylvUnb,
    ] {
        if gen.range(0, 3) > 0 {
            repo.insert(random_routine_model(&mut gen, routine, machine_id));
        }
    }
    if repo.is_empty() {
        repo.insert(random_routine_model(&mut gen, Routine::Trsm, machine_id));
    }
    repo
}

/// Probe points across (and slightly outside) a submodel's space.
fn probe_points(space: &Region) -> Vec<Vec<usize>> {
    let mut points = space.sample_grid(4, 1);
    let outside: Vec<usize> = space.hi().iter().map(|&h| h + 37).collect();
    points.push(outside);
    points
}

/// Both repositories produce identical (≤ 1e-12) predictions on every
/// submodel, probing the reference evaluators of both sources.
fn assert_equivalent(original: &ModelRepository, reloaded: &ModelRepository) {
    assert_eq!(original.len(), reloaded.len());
    for (key, model) in original.iter() {
        let locality = Locality::from_name(&key.locality).unwrap();
        let routine = Routine::from_name(&key.routine).unwrap();
        let other = reloaded
            .get(routine, &key.machine_id, locality)
            .expect("reloaded model");
        assert_eq!(model.submodel_count(), other.submodel_count());
        for (flags, submodel) in &model.submodels {
            let reloaded_sub = other.submodel(flags).expect("reloaded submodel");
            for p in probe_points(&submodel.space) {
                let ours = submodel.eval(&p).unwrap();
                let theirs = reloaded_sub.eval(&p).unwrap();
                assert_same_summary(&ours, &theirs);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary repositories roundtrip through the binary format with
    /// byte-identical re-serialisation, and the binary, text and compiled
    /// views all agree on every prediction.
    #[test]
    fn binary_text_compiled_all_agree(seed in 0u64..1_000_000_000) {
        let machine_id = "machine_a";
        let repo = random_repository(seed, machine_id);

        // Binary roundtrip.
        let bytes = repo.to_binary().unwrap();
        let from_binary = ModelRepository::from_binary(&bytes).unwrap();
        assert_equivalent(&repo, &from_binary);

        // Byte-identical save → load → save (bitwise coefficient fidelity:
        // -0.0 and exotic NaN payloads survive the canonical/explicit split).
        let bytes_again = from_binary.to_binary().unwrap();
        prop_assert_eq!(&bytes, &bytes_again);

        // The text view of the binary reload matches the text roundtrip.
        let from_text = ModelRepository::from_text(&repo.to_text().unwrap()).unwrap();
        assert_equivalent(&from_text, &from_binary);

        // The compiled engine over the binary reload matches the compiled
        // engine over the original, probing through concrete trsm calls.
        let compiled_a = repo.compiled();
        let compiled_b = from_binary.compiled();
        if let (Some(a), Some(b)) = (
            compiled_a.get(Routine::Trsm, machine_id, Locality::InCache),
            compiled_b.get(Routine::Trsm, machine_id, Locality::InCache),
        ) {
            for n in [16usize, 100, 257, 1000] {
                let call = Call::trsm(
                    Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n, n + 8, 1.0,
                );
                match (a.estimate(&call), b.estimate(&call)) {
                    (Ok(x), Ok(y)) => assert_same_summary(&x, &y),
                    (Err(_), Err(_)) => {}
                    (x, y) => panic!("estimate mismatch: {x:?} vs {y:?}"),
                }
            }
        }
    }

    /// Truncated, bit-flipped, wrong-version, wrong-endian and bad-magic
    /// inputs are all rejected with a structured `ModelError` — never a
    /// panic, and never a silently wrong repository.
    #[test]
    fn corrupted_binaries_are_rejected_not_panics(seed in 0u64..1_000_000_000) {
        let repo = random_repository(seed, "machine_a");
        let bytes = repo.to_binary().unwrap();

        // Every truncation fails (the frame records its own total length).
        let stride = (bytes.len() / 61).max(1);
        for cut in (0..bytes.len()).step_by(stride) {
            prop_assert!(ModelRepository::from_binary(&bytes[..cut]).is_err());
        }

        // Every single-bit flip fails (everything is under the checksum,
        // including the header, section table and checksum field itself).
        for i in (0..bytes.len()).step_by(stride) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            prop_assert!(ModelRepository::from_binary(&corrupt).is_err());
        }

        // A future format version is refused by name...
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0x7f;
        match ModelRepository::from_binary(&wrong_version) {
            Err(ModelError::Parse(msg)) => {
                prop_assert!(msg.contains("unsupported format version"), "{}", msg)
            }
            other => panic!("expected a version error, got {other:?}"),
        }

        // ...a big-endian writer is diagnosed as such...
        let mut big_endian = bytes.clone();
        big_endian[12..16].reverse();
        match ModelRepository::from_binary(&big_endian) {
            Err(ModelError::Parse(msg)) => prop_assert!(msg.contains("big-endian"), "{}", msg),
            other => panic!("expected an endianness error, got {other:?}"),
        }

        // ...and non-binary bytes are turned away at the magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        match ModelRepository::from_binary(&bad_magic) {
            Err(ModelError::Parse(msg)) => {
                prop_assert!(msg.contains("not a binary repository"), "{}", msg)
            }
            other => panic!("expected a magic error, got {other:?}"),
        }
        // Text bytes through the binary decoder, and vice versa, also fail
        // cleanly (the sniffing front door exists so neither path is hit in
        // practice).
        prop_assert!(ModelRepository::from_binary(b"dlaperf-models v1\n").is_err());
        prop_assert!(ModelRepository::from_text(&String::from_utf8_lossy(&bytes)).is_err());
    }

    /// The batched trace-prediction path of the compiled predictor is
    /// bit-identical to the pointwise walk — on arbitrary repositories with
    /// non-finite coefficients, duplicate calls, degenerate calls and
    /// missing-model errors.
    #[test]
    fn batched_predictor_is_bit_identical_to_pointwise(seed in 0u64..1_000_000_000) {
        let machine = harpertown_openblas();
        let repo = random_repository(seed, &machine.id());
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        for trace in interesting_traces() {
            let slices: Vec<&[Call]> = trace.iter().map(|t| t.as_slice()).collect();
            let pointwise = slices
                .iter()
                .map(|t| TraceEvaluator::predict_trace(&predictor, t))
                .collect::<Result<Vec<_>, ModelError>>();
            let batched = predictor.predict_traces(&slices);
            match (pointwise, batched) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        prop_assert!(bit_same_summary(&x.ticks, &y.ticks));
                        prop_assert!(x.flops.to_bits() == y.flops.to_bits());
                        prop_assert_eq!(x.predicted_calls, y.predicted_calls);
                        prop_assert_eq!(x.skipped_calls, y.skipped_calls);
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("pointwise {a:?} disagrees with batched {b:?}"),
            }
        }
    }
}

/// Trace batches mixing routines, duplicate calls across traces, degenerate
/// (skipped) calls, and flag combinations that may miss their submodel.
fn interesting_traces() -> Vec<Vec<Vec<Call>>> {
    let gemm = |n: usize| Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n.min(64), 1.0, 1.0);
    let trsm = |m: usize, n: usize| {
        Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            m,
            n,
            1.0,
        )
    };
    vec![
        // Same calls repeated within and across traces.
        vec![
            vec![gemm(96), gemm(96), gemm(32), trsm(64, 64)],
            vec![gemm(96), trsm(64, 64), Call::sylv_unb(48, 48)],
        ],
        // Degenerate calls skipped at zero cost; large sizes hit the clamp.
        vec![vec![
            Call::gemm(Trans::NoTrans, Trans::NoTrans, 0, 64, 32, 1.0, 1.0),
            gemm(4096),
            Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 100),
        ]],
        // Flag combination likely absent from the random repository
        // (mixed-flag trsm): pointwise and batched must agree on the error.
        vec![vec![
            gemm(64),
            Call::trsm(
                Side::Right,
                Uplo::Upper,
                Trans::Trans,
                Diag::Unit,
                80,
                80,
                1.0,
            ),
        ]],
        // An empty batch and an empty trace.
        vec![],
        vec![vec![]],
    ]
}

/// The memoizing service's batched path matches a scalar call-by-call
/// service exactly: predictions, cache statistics, and telemetry totals.
#[test]
fn batched_service_matches_scalar_service_and_statistics() {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(128);
    let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
    let scalar = ModelService::new(repo.clone(), machine.clone(), Locality::InCache);
    let batched = ModelService::new(repo, machine, Locality::InCache);

    let gemm = |n: usize| Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n.min(64), 1.0, 1.0);
    let traces: Vec<Vec<Call>> = vec![
        (0..50).map(|_| gemm(96)).collect(),
        vec![gemm(96), gemm(32), gemm(32), gemm(64)],
        vec![
            Call::gemm(Trans::NoTrans, Trans::NoTrans, 0, 8, 8, 1.0, 1.0),
            gemm(96),
        ],
    ];
    let slices: Vec<&[Call]> = traces.iter().map(|t| t.as_slice()).collect();

    let a: Vec<_> = slices
        .iter()
        .map(|t| scalar.predict_trace(t).unwrap())
        .collect();
    let b = batched.predict_traces(&slices).unwrap();
    assert_eq!(a, b);

    // Hit/miss accounting is identical: batch-local duplicates count as
    // cache hits exactly like the entries the scalar walk would have hit.
    assert_eq!(scalar.cache_stats(), batched.cache_stats());
    assert_eq!(scalar.cached_evaluations(), batched.cached_evaluations());

    // Telemetry totals agree too (every predicted call was counted).
    assert_eq!(
        scalar.refinement_report().total_queries,
        batched.refinement_report().total_queries
    );

    // A second pass over the same traces is all cache hits on both.
    let a2: Vec<_> = slices
        .iter()
        .map(|t| scalar.predict_trace(t).unwrap())
        .collect();
    let b2 = batched.predict_traces(&slices).unwrap();
    assert_eq!(a2, b2);
    assert_eq!(scalar.cache_stats(), batched.cache_stats());
    assert_eq!(
        scalar.refinement_report().total_queries,
        batched.refinement_report().total_queries
    );
}

/// A repository loaded from the binary format is a full citizen of the
/// serving loop: it hot-swaps into a service with zero recompilation, serves
/// identical predictions, accepts an online-refinement delta through
/// `merge_models`, and the refined result still roundtrips byte-identically.
#[test]
fn binary_loaded_repository_merges_refines_and_serves() {
    let machine = harpertown_openblas();
    let cfg = ModelSetConfig::quick(192);
    let (repo, _) = build_repository(&machine, Locality::InCache, 5, &cfg, &[Workload::Trinv]);

    // Save binary, reload straight into the compiled form.
    let dir = std::env::temp_dir().join("dlaperf-binfmt-interop-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("models.dlapb");
    repo.save_file(&path).unwrap();
    let compiled = ModelRepository::load_file_compiled(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Hot-swap the loaded compiled form into a service; predictions match a
    // service built from the original repository.
    let reference = ModelService::new(repo.clone(), machine.clone(), Locality::InCache);
    let service = ModelService::new(ModelRepository::new(), machine.clone(), Locality::InCache);
    service.swap_compiled(Arc::new(compiled)).unwrap();
    let probe = |n: usize| {
        Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            n,
            n,
            1.0,
        )
    };
    for n in [32usize, 64, 96, 128, 160] {
        let ours = service.predict_call(&probe(n)).unwrap();
        let theirs = reference.predict_call(&probe(n)).unwrap();
        assert_same_summary(&ours, &theirs);
    }

    // The served (binary-loaded) repository drives a refinement round; the
    // delta merges in and republishes.
    let report = service.refinement_report();
    assert!(!report.is_empty());
    let templates: Vec<Call> = workload_templates(Workload::Trinv, &cfg)
        .into_iter()
        .flat_map(|(calls, _)| calls)
        .collect();
    let mut refiner = OnlineRefiner::new(
        SimExecutor::new(machine.clone(), 31),
        Locality::InCache,
        2,
        OnlineRefinerConfig::default(),
    )
    .with_templates(&dedupe_templates(&templates));
    let (delta, outcome) = refiner.refine(&service.snapshot(), &report);
    assert!(outcome.cells_refined > 0);
    let generation_before = service.refinement_report().generation;
    service.merge(delta).unwrap();
    assert!(service.refinement_report().generation > generation_before);
    assert!(service.predict_call(&probe(96)).is_ok());

    // The refined repository still saves → loads → saves byte-identically.
    let refined = (*service.snapshot()).clone();
    let bytes = refined.to_binary().unwrap();
    let reloaded = ModelRepository::from_binary(&bytes).unwrap();
    assert_eq!(bytes, reloaded.to_binary().unwrap());
    assert_equivalent(&refined, &reloaded);
}
