//! # dla-core
//!
//! Facade crate for the `dlaperf` stack — the Rust reproduction of
//! *Performance Modeling for Dense Linear Algebra* (Peise & Bientinesi,
//! SC 2012).
//!
//! The crate re-exports the individual layers under short module names and
//! provides [`Pipeline`], a high-level API that wires them together:
//!
//! ```
//! use dla_core::{Pipeline, Workload};
//! use dla_core::machine::presets::harpertown_openblas;
//!
//! // Build performance models for the triangular-inversion workload on the
//! // simulated Harpertown machine (a small, fast configuration for doc tests).
//! let mut pipeline = Pipeline::new(harpertown_openblas())
//!     .with_model_config(dla_core::predict::modelset::ModelSetConfig::quick(256));
//! pipeline.build_models(&[Workload::Trinv]);
//!
//! // Rank the four algorithmic variants for n = 224, block size 32.
//! let ranking = pipeline.rank_trinv(224, 32).unwrap();
//! assert_eq!(ranking.len(), 4);
//! assert!(ranking[0].1.median >= ranking[3].1.median);
//! ```
//!
//! Layer overview:
//!
//! * [`mat`] — matrices, views, least squares, statistics.
//! * [`blas`] — pure-Rust BLAS kernels and routine-call descriptors.
//! * [`machine`] — the simulated machine (CPU, caches, implementation
//!   profiles, cost model, executors).
//! * [`sampler`] — the Sampler.
//! * [`model`] — piecewise polynomial models and the model repository.
//! * [`modeler`] — Model Expansion, Adaptive Refinement, the Modeler.
//! * [`algos`] — the trinv and sylv blocked algorithm variants.
//! * [`predict`] — the Predictor, ranking, block-size optimisation, and the
//!   thread-safe [`ModelService`] serving layer.
//!
//! Model construction fans out across worker threads (configure via
//! [`predict::modelset::ModelSetConfig::workers`]; any worker count produces
//! a byte-identical repository), and the built models are served through a
//! [`ModelService`] that supports concurrent queries and atomic hot-swap of a
//! rebuilt repository.  Evaluation runs on the compiled engine
//! ([`CompiledRepository`]): repositories are compiled once per build/swap
//! into indexed, fused, zero-allocation evaluators, with the naive model
//! evaluators retained as the equivalence-tested reference.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub use dla_algos as algos;
pub use dla_blas as blas;
pub use dla_machine as machine;
pub use dla_mat as mat;
pub use dla_model as model;
pub use dla_modeler as modeler;
pub use dla_predict as predict;
pub use dla_sampler as sampler;

mod pipeline;

pub use pipeline::Pipeline;

// The most commonly used types, re-exported at the crate root.
pub use dla_algos::{SylvVariant, TrinvVariant};
pub use dla_blas::{Call, Routine};
pub use dla_machine::{Locality, MachineConfig};
pub use dla_model::{CompiledRepository, ModelRepository, RefinementReport, SharedRepository};
pub use dla_modeler::{OnlineRefiner, OnlineRefinerConfig, RefineOutcome, Strategy};
pub use dla_predict::modelset::Workload;
pub use dla_predict::{EfficiencyPrediction, ModelService, Predictor};
