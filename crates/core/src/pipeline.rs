//! The high-level modeling → prediction → ranking pipeline.

use std::path::Path;

use dla_algos::{SylvVariant, TrinvVariant};
use dla_machine::{Locality, MachineConfig, SimExecutor};
use dla_model::{ModelRepository, Result};
use dla_modeler::ModelingReport;
use dla_predict::blocksize::{optimize_block_size_trinv, BlockSizeSweep};
use dla_predict::modelset::{build_repository, ModelSetConfig, Workload};
use dla_predict::workloads::{
    measure_sylv, measure_trinv, predict_sylv, predict_trinv, MeasurementMode, TraceMeasurement,
};
use dla_predict::{EfficiencyPrediction, Predictor};

/// End-to-end driver: builds models once, then answers prediction, ranking,
/// tuning and validation queries against them.
///
/// This is the programmatic equivalent of the paper's workflow: run the
/// Modeler over the routines an algorithm needs, store the models in the
/// repository, then evaluate and combine them to rank algorithms without
/// executing them.
pub struct Pipeline {
    machine: MachineConfig,
    locality: Locality,
    model_config: ModelSetConfig,
    seed: u64,
    repository: ModelRepository,
    reports: Vec<ModelingReport>,
}

impl Pipeline {
    /// Creates a pipeline for a machine configuration with default settings
    /// (in-cache models, paper-default Adaptive Refinement, full 1024-sized
    /// parameter spaces).
    pub fn new(machine: MachineConfig) -> Pipeline {
        Pipeline {
            machine,
            locality: Locality::InCache,
            model_config: ModelSetConfig::default(),
            seed: 0x5eed,
            repository: ModelRepository::new(),
            reports: Vec::new(),
        }
    }

    /// Selects the memory-locality scenario the models describe.
    pub fn with_locality(mut self, locality: Locality) -> Pipeline {
        self.locality = locality;
        self
    }

    /// Replaces the model-building configuration.
    pub fn with_model_config(mut self, config: ModelSetConfig) -> Pipeline {
        self.model_config = config;
        self
    }

    /// Sets the seed of the simulated measurement noise.
    pub fn with_seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// The machine configuration being modelled.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The locality scenario of the stored models.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// The model repository (possibly empty before [`Pipeline::build_models`]).
    pub fn repository(&self) -> &ModelRepository {
        &self.repository
    }

    /// The per-routine modeling reports of the last build.
    pub fn reports(&self) -> &[ModelingReport] {
        &self.reports
    }

    /// Builds (or extends) the model repository for the given workloads by
    /// running the Modeler on the simulated machine.
    pub fn build_models(&mut self, workloads: &[Workload]) {
        let (repo, reports) = build_repository(
            &self.machine,
            self.locality,
            self.seed,
            &self.model_config,
            workloads,
        );
        for (_, model) in repo.iter() {
            self.repository.insert(model.clone());
        }
        self.reports.extend(reports);
    }

    /// Loads a previously saved repository instead of rebuilding models.
    pub fn load_repository(&mut self, path: &Path) -> Result<()> {
        self.repository = ModelRepository::load_file(path)?;
        Ok(())
    }

    /// Saves the current repository to a file.
    pub fn save_repository(&self, path: &Path) -> Result<()> {
        self.repository.save_file(path)
    }

    /// A predictor over the current repository.
    pub fn predictor(&self) -> Predictor<'_> {
        Predictor::new(&self.repository, self.machine.clone(), self.locality)
    }

    /// A fresh simulated executor for "measurements" on this machine.
    pub fn executor(&self) -> SimExecutor {
        SimExecutor::new(self.machine.clone(), self.seed.wrapping_add(1))
    }

    /// Predicts the efficiency of every triangular-inversion variant and
    /// returns them ranked best first (by predicted median efficiency).
    pub fn rank_trinv(
        &self,
        n: usize,
        block_size: usize,
    ) -> Result<Vec<(TrinvVariant, EfficiencyPrediction)>> {
        let predictor = self.predictor();
        let mut ranked = Vec::new();
        for variant in TrinvVariant::ALL {
            let prediction = predict_trinv(&predictor, variant, n, block_size)?;
            ranked.push((variant, prediction));
        }
        ranked.sort_by(|a, b| b.1.median.partial_cmp(&a.1.median).expect("finite"));
        Ok(ranked)
    }

    /// Predicts the efficiency of every Sylvester variant and returns them
    /// ranked best first.
    pub fn rank_sylv(
        &self,
        n: usize,
        block_size: usize,
    ) -> Result<Vec<(SylvVariant, EfficiencyPrediction)>> {
        let predictor = self.predictor();
        let mut ranked = Vec::new();
        for variant in SylvVariant::all() {
            let prediction = predict_sylv(&predictor, variant, n, block_size)?;
            ranked.push((variant, prediction));
        }
        ranked.sort_by(|a, b| b.1.median.partial_cmp(&a.1.median).expect("finite"));
        Ok(ranked)
    }

    /// Sweeps block sizes for a triangular-inversion variant.
    pub fn tune_trinv_block_size(
        &self,
        variant: TrinvVariant,
        n: usize,
        candidates: &[usize],
    ) -> Result<BlockSizeSweep> {
        optimize_block_size_trinv(&self.predictor(), variant, n, candidates)
    }

    /// "Measures" a triangular-inversion variant by simulated execution.
    pub fn measure_trinv(
        &self,
        variant: TrinvVariant,
        n: usize,
        block_size: usize,
        mode: MeasurementMode,
    ) -> TraceMeasurement {
        let mut executor = self.executor();
        measure_trinv(&mut executor, variant, n, block_size, mode)
    }

    /// "Measures" a Sylvester variant by simulated execution.
    pub fn measure_sylv(
        &self,
        variant: SylvVariant,
        n: usize,
        block_size: usize,
        mode: MeasurementMode,
    ) -> TraceMeasurement {
        let mut executor = self.executor();
        measure_sylv(&mut executor, variant, n, block_size, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_machine::presets::harpertown_openblas;

    fn quick_pipeline() -> Pipeline {
        let mut p = Pipeline::new(harpertown_openblas())
            .with_model_config(ModelSetConfig::quick(256))
            .with_seed(3);
        p.build_models(&[Workload::Trinv]);
        p
    }

    #[test]
    fn pipeline_builds_models_and_ranks_variants() {
        let p = quick_pipeline();
        assert!(!p.repository().is_empty());
        assert!(!p.reports().is_empty());
        let ranking = p.rank_trinv(224, 32).unwrap();
        assert_eq!(ranking.len(), 4);
        // best-first ordering
        for w in ranking.windows(2) {
            assert!(w[0].1.median >= w[1].1.median);
        }
        // variant 4 is never the predicted best
        assert_ne!(ranking[0].0, TrinvVariant::V4);
    }

    #[test]
    fn pipeline_tunes_block_size_and_measures() {
        let p = quick_pipeline();
        let sweep = p
            .tune_trinv_block_size(TrinvVariant::V1, 224, &[8, 32, 64, 128])
            .unwrap();
        assert!(sweep.best_block_size().is_some());
        let m = p.measure_trinv(TrinvVariant::V1, 224, 32, MeasurementMode::Auto);
        assert!(m.ticks > 0.0);
        assert!(m.efficiency > 0.0 && m.efficiency < 1.0);
    }

    #[test]
    fn pipeline_repository_roundtrip() {
        let p = quick_pipeline();
        let dir = std::env::temp_dir().join("dlaperf-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.txt");
        p.save_repository(&path).unwrap();
        let mut q = Pipeline::new(harpertown_openblas());
        q.load_repository(&path).unwrap();
        assert_eq!(q.repository().len(), p.repository().len());
        let r1 = p.rank_trinv(224, 32).unwrap();
        let r2 = q.rank_trinv(224, 32).unwrap();
        assert_eq!(r1[0].0, r2[0].0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_models_surface_as_errors() {
        let p = Pipeline::new(harpertown_openblas());
        assert!(p.rank_trinv(128, 32).is_err());
        assert!(p.rank_sylv(128, 32).is_err());
    }
}
