//! The high-level modeling → prediction → ranking pipeline.

use std::path::Path;
use std::sync::Arc;

use dla_algos::{SylvVariant, TrinvVariant};
use dla_machine::{Executor, Locality, MachineConfig, SimExecutor};
use dla_model::{ModelRepository, RefinementReport, RepositoryFormat, Result};
use dla_modeler::online::dedupe_templates;
use dla_modeler::{ModelingReport, OnlineRefiner, OnlineRefinerConfig, RefineOutcome};
use dla_predict::blocksize::{optimize_block_size_trinv, BlockSizeSweep};
use dla_predict::modelset::{build_repository, workload_templates, ModelSetConfig, Workload};
use dla_predict::workloads::{
    measure_sylv, measure_trinv, rank_sylv_variants, rank_trinv_variants, MeasurementMode,
    TraceMeasurement,
};
use dla_predict::{EfficiencyPrediction, ModelService, Predictor};

/// End-to-end driver: builds models once, then answers prediction, ranking,
/// tuning and validation queries against them.
///
/// This is the programmatic equivalent of the paper's workflow: run the
/// Modeler over the routines an algorithm needs, store the models in the
/// repository, then evaluate and combine them to rank algorithms without
/// executing them.
///
/// Models are served through a [`ModelService`]: model construction fans out
/// across worker threads (see
/// [`ModelSetConfig::workers`](dla_predict::modelset::ModelSetConfig)), and
/// the built repository is hot-swapped into the service, which any number of
/// threads can query concurrently (share the pipeline behind an `Arc`, or
/// hand out [`Pipeline::predictor`] snapshots).
pub struct Pipeline {
    machine: MachineConfig,
    locality: Locality,
    model_config: ModelSetConfig,
    seed: u64,
    service: ModelService,
    reports: Vec<ModelingReport>,
    /// Workloads built so far — the template registry for online refinement
    /// (empty after `load_repository` alone; refinement then falls back to
    /// every known workload's templates).
    workloads: Vec<Workload>,
    /// The long-lived online refiner: one sampler (whose noise stream
    /// advances across rounds, so every round takes fresh measurements),
    /// one fit workspace, and the deduped template registry, all reused
    /// round to round.  Reset whenever the templates could change.
    refiner: Option<OnlineRefiner<SimExecutor>>,
}

impl Pipeline {
    /// Creates a pipeline for a machine configuration with default settings
    /// (in-cache models, paper-default Adaptive Refinement, full 1024-sized
    /// parameter spaces).
    pub fn new(machine: MachineConfig) -> Pipeline {
        let service = ModelService::new(ModelRepository::new(), machine.clone(), Locality::InCache);
        Pipeline {
            machine,
            locality: Locality::InCache,
            model_config: ModelSetConfig::default(),
            seed: 0x5eed,
            service,
            reports: Vec::new(),
            workloads: Vec::new(),
            refiner: None,
        }
    }

    /// Selects the memory-locality scenario the models describe.
    pub fn with_locality(mut self, locality: Locality) -> Pipeline {
        self.locality = locality;
        let repository = (*self.service.snapshot()).clone();
        self.service = ModelService::new(repository, self.machine.clone(), locality);
        self.refiner = None;
        self
    }

    /// Replaces the model-building configuration.
    pub fn with_model_config(mut self, config: ModelSetConfig) -> Pipeline {
        self.model_config = config;
        self.refiner = None;
        self
    }

    /// Sets the seed of the simulated measurement noise.
    pub fn with_seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self.refiner = None;
        self
    }

    /// The machine configuration being modelled.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The locality scenario of the stored models.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// A snapshot of the model repository (possibly empty before
    /// [`Pipeline::build_models`]).
    pub fn repository(&self) -> Arc<ModelRepository> {
        self.service.snapshot()
    }

    /// The serving layer: share it (behind an `Arc`-wrapped pipeline) to
    /// answer memoized predictions from many threads concurrently.
    pub fn service(&self) -> &ModelService {
        &self.service
    }

    /// The per-routine modeling reports of the last build.
    pub fn reports(&self) -> &[ModelingReport] {
        &self.reports
    }

    /// Builds (or extends) the model repository for the given workloads by
    /// running the Modeler on the simulated machine, fanning the per-routine
    /// builds across `model_config.workers` threads, and hot-swaps the result
    /// into the serving layer.
    pub fn build_models(&mut self, workloads: &[Workload]) {
        let (built, reports) = build_repository(
            &self.machine,
            self.locality,
            self.seed,
            &self.model_config,
            workloads,
        );
        self.service
            .merge(built)
            // lint: allow(unwrap): the pipeline's own offline build samples a simulated executor with finite noise, so its coefficients validate by construction
            .expect("freshly built models validate");
        self.reports.extend(reports);
        for &w in workloads {
            if !self.workloads.contains(&w) {
                self.workloads.push(w);
                // The template registry grew: rebuild the refiner lazily.
                self.refiner = None;
            }
        }
    }

    /// A ranked snapshot of the serving layer's refinement telemetry: which
    /// `(routine, flags, region)` cells answered the queries served since the
    /// last swap/merge, hottest (`queries × fit_error`) first.
    pub fn refinement_report(&self) -> RefinementReport {
        self.service.refinement_report()
    }

    /// One online-refinement round: consumes the service's current
    /// [`refinement_report`](Pipeline::refinement_report), re-samples the
    /// hottest badly-fitting regions on the simulated machine within
    /// `config`'s budget, and publishes the rebuilt flag-variant submodels
    /// through the serving layer's submodel-granular hot-swap merge.
    ///
    /// Serving continues throughout: readers keep answering from the old
    /// snapshot until the merged repository is swapped in atomically.  The
    /// refiner persists across rounds (one sampler whose noise stream
    /// advances per round, one fit workspace, one deduped template
    /// registry); its templates come from the workloads built so far, or —
    /// when the repository was loaded from disk instead of built — from
    /// every known workload, so a loaded repository refines just as well.
    pub fn refine_online(&mut self, config: OnlineRefinerConfig) -> RefineOutcome {
        let report = self.service.refinement_report();
        if report.is_empty() {
            return RefineOutcome::default();
        }
        if self.refiner.is_none() {
            let registry: &[Workload] = if self.workloads.is_empty() {
                &[Workload::Trinv, Workload::Sylv]
            } else {
                &self.workloads
            };
            let templates: Vec<_> = registry
                .iter()
                .flat_map(|&w| workload_templates(w, &self.model_config))
                .flat_map(|(calls, _)| calls)
                .collect();
            self.refiner = Some(
                OnlineRefiner::new(
                    // A deterministic noise stream independent of the build
                    // streams (which use the task index as stream id); it
                    // advances across rounds, so every round measures fresh.
                    self.executor().fork(0x0e1e_0000),
                    self.locality,
                    self.model_config.repetitions,
                    config,
                )
                .with_templates(&dedupe_templates(&templates)),
            );
        }
        // lint: allow(unwrap): the refiner was installed by the ensure branch directly above
        let refiner = self.refiner.as_mut().expect("refiner was just ensured");
        refiner.set_config(config);
        let snapshot = self.service.snapshot();
        let (delta, outcome) = refiner.refine(&snapshot, &report);
        if !delta.is_empty() {
            // A delta the publication gate rejects is dropped: the service
            // keeps serving the last good generation, and the rejection is
            // accounted in [`ModelService::health`] (the refiner's own
            // per-submodel validation makes this a second line of defense,
            // so an actual rejection here indicates a refiner bug — but a
            // degraded service beats a poisoned one).
            let _ = self.service.merge(delta);
        }
        // Fold the round's quarantine and sampling-fault statistics into the
        // serving-health ledger, next to the publication accounting.
        self.service.record_refinement(&outcome);
        outcome
    }

    /// Loads a previously saved repository instead of rebuilding models.
    ///
    /// The codec is sniffed from the file's leading bytes: a binary shard
    /// deserializes straight into its compiled form and hot-swaps in with
    /// **zero recompilation** ([`ModelService::swap_compiled`]); the text
    /// format parses and compiles once, as before.
    pub fn load_repository(&mut self, path: &Path) -> Result<()> {
        let compiled = ModelRepository::load_file_compiled(path)?;
        self.service.swap_compiled(Arc::new(compiled))?;
        Ok(())
    }

    /// Saves the current repository to a file, choosing the codec from the
    /// extension (`.dlapb`/`.bin` → binary, anything else → text; see
    /// [`dla_model::RepositoryFormat::for_path`]).  The binary codec encodes
    /// the service's already-compiled snapshot directly.
    pub fn save_repository(&self, path: &Path) -> Result<()> {
        match RepositoryFormat::for_path(path) {
            RepositoryFormat::Binary => {
                let bytes = dla_model::binfmt::encode(&self.service.compiled_snapshot())?;
                std::fs::write(path, bytes).map_err(|e| dla_model::ModelError::Io(e.to_string()))
            }
            RepositoryFormat::Text => self.service.snapshot().save_file(path),
        }
    }

    /// A predictor over a snapshot of the current repository.
    ///
    /// The predictor owns its snapshot, so it can be moved to other threads
    /// and keeps answering consistently across later rebuilds.
    pub fn predictor(&self) -> Predictor<'static> {
        self.service.predictor()
    }

    /// A fresh simulated executor for "measurements" on this machine.
    pub fn executor(&self) -> SimExecutor {
        SimExecutor::new(self.machine.clone(), self.seed.wrapping_add(1))
    }

    /// Predicts the efficiency of every triangular-inversion variant and
    /// returns them ranked best first (by predicted median efficiency).
    ///
    /// Routed through the memoizing [`ModelService`], so repeated rankings
    /// (and the shared calls between variants) hit the evaluation cache.
    pub fn rank_trinv(
        &self,
        n: usize,
        block_size: usize,
    ) -> Result<Vec<(TrinvVariant, EfficiencyPrediction)>> {
        rank_trinv_variants(&self.service, n, block_size)
    }

    /// Predicts the efficiency of every Sylvester variant and returns them
    /// ranked best first (memoized through the [`ModelService`]).
    pub fn rank_sylv(
        &self,
        n: usize,
        block_size: usize,
    ) -> Result<Vec<(SylvVariant, EfficiencyPrediction)>> {
        rank_sylv_variants(&self.service, n, block_size)
    }

    /// Sweeps block sizes for a triangular-inversion variant (memoized
    /// through the [`ModelService`]).
    pub fn tune_trinv_block_size(
        &self,
        variant: TrinvVariant,
        n: usize,
        candidates: &[usize],
    ) -> Result<BlockSizeSweep> {
        optimize_block_size_trinv(&self.service, variant, n, candidates)
    }

    /// "Measures" a triangular-inversion variant by simulated execution.
    pub fn measure_trinv(
        &self,
        variant: TrinvVariant,
        n: usize,
        block_size: usize,
        mode: MeasurementMode,
    ) -> TraceMeasurement {
        let mut executor = self.executor();
        measure_trinv(&mut executor, variant, n, block_size, mode)
    }

    /// "Measures" a Sylvester variant by simulated execution.
    pub fn measure_sylv(
        &self,
        variant: SylvVariant,
        n: usize,
        block_size: usize,
        mode: MeasurementMode,
    ) -> TraceMeasurement {
        let mut executor = self.executor();
        measure_sylv(&mut executor, variant, n, block_size, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Call, Routine, Trans};
    use dla_machine::presets::harpertown_openblas;
    use dla_model::{
        submodel_key, PiecewiseModel, Polynomial, Region, RegionModel, RoutineModel,
        VectorPolynomial,
    };

    fn quick_pipeline() -> Pipeline {
        let mut p = Pipeline::new(harpertown_openblas())
            .with_model_config(ModelSetConfig::quick(256))
            .with_seed(3);
        p.build_models(&[Workload::Trinv]);
        p
    }

    /// A gemm model whose every prediction is NaN, over the quick space.
    fn nan_gemm_model(machine_id: &str) -> RoutineModel {
        let space = Region::new(vec![8, 8, 8], vec![256, 256, 128]);
        let nan_poly = Polynomial::new(3, vec![vec![0, 0, 0]], vec![f64::NAN]).unwrap();
        let poly = VectorPolynomial::new(vec![nan_poly; 5]).unwrap();
        let region = RegionModel {
            region: space.clone(),
            poly,
            error: 0.0,
            samples_used: 1,
            revision: 0,
        };
        let piecewise = PiecewiseModel::new(space.clone(), vec![region], 1);
        let mut model = RoutineModel::new(Routine::Gemm, machine_id, Locality::InCache, space);
        let template = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 1.0);
        model.insert_submodel(submodel_key(&template), piecewise);
        model
    }

    #[test]
    fn poisoned_repository_is_rejected_and_service_keeps_ranking() {
        let p = quick_pipeline();
        let before = p.service().health();
        let generation_before = p.service().refinement_report().generation;
        let mut poisoned = (*p.repository()).clone();
        poisoned.insert(nan_gemm_model(&p.machine().id()));
        // The publication gate refuses the NaN-carrying repository...
        let err = p.service().swap(poisoned).unwrap_err();
        assert!(matches!(err, dla_model::ModelError::Validation(_)));
        let after = p.service().health();
        assert_eq!(after.publishes_rejected, before.publishes_rejected + 1);
        assert_eq!(after.last_good_generation, before.last_good_generation);
        assert_eq!(
            p.service().refinement_report().generation,
            generation_before,
            "a rejected publish must not bump the served generation"
        );
        // ...and the service keeps answering from the last good repository,
        // with every prediction finite.
        let ranking = p.rank_trinv(224, 32).unwrap();
        assert_eq!(ranking.len(), 4);
        assert!(ranking.iter().all(|(_, pred)| pred.median.is_finite()));
    }

    #[test]
    fn nan_predictions_rank_last_instead_of_panicking() {
        // The serving gate (above) keeps NaN models out of a `ModelService`;
        // this regression guards the evaluator itself, for predictors built
        // directly over an unguarded snapshot.
        let p = quick_pipeline();
        let mut poisoned = (*p.repository()).clone();
        poisoned.insert(nan_gemm_model(&p.machine().id()));
        let predictor =
            dla_predict::Predictor::new(&poisoned, p.machine().clone(), Locality::InCache);
        // Regression: this used to panic in the sort's `expect("finite")`.
        let ranking = dla_predict::workloads::rank_trinv_variants(&predictor, 224, 32).unwrap();
        assert_eq!(ranking.len(), 4);
        // v1 performs no gemm, so its prediction stays finite and must not be
        // displaced by the NaN-scored variants.
        assert!(ranking[0].1.median.is_finite());
        let first_nan = ranking
            .iter()
            .position(|(_, p)| p.median.is_nan())
            .expect("gemm-based variants must predict NaN");
        assert!(ranking[..first_nan]
            .iter()
            .all(|(_, p)| p.median.is_finite()));
        assert!(ranking[first_nan..].iter().all(|(_, p)| p.median.is_nan()));
        assert!(ranking[..first_nan]
            .iter()
            .any(|(v, _)| *v == TrinvVariant::V1));
    }

    #[test]
    fn pipeline_builds_models_and_ranks_variants() {
        let p = quick_pipeline();
        assert!(!p.repository().is_empty());
        assert!(!p.reports().is_empty());
        let ranking = p.rank_trinv(224, 32).unwrap();
        assert_eq!(ranking.len(), 4);
        // best-first ordering
        for w in ranking.windows(2) {
            assert!(w[0].1.median >= w[1].1.median);
        }
        // variant 4 is never the predicted best
        assert_ne!(ranking[0].0, TrinvVariant::V4);
    }

    #[test]
    fn rankings_are_memoized_through_the_service() {
        let p = quick_pipeline();
        let first = p.rank_trinv(224, 32).unwrap();
        let stats_after_first = p.service().cache_stats();
        assert!(
            stats_after_first.hits > 0,
            "variants share calls, so even one ranking must hit the cache"
        );
        let second = p.rank_trinv(224, 32).unwrap();
        let stats_after_second = p.service().cache_stats();
        assert_eq!(
            stats_after_second.misses, stats_after_first.misses,
            "a repeated ranking must be answered entirely from the cache"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn pipeline_tunes_block_size_and_measures() {
        let p = quick_pipeline();
        let sweep = p
            .tune_trinv_block_size(TrinvVariant::V1, 224, &[8, 32, 64, 128])
            .unwrap();
        assert!(sweep.best_block_size().is_some());
        let m = p.measure_trinv(TrinvVariant::V1, 224, 32, MeasurementMode::Auto);
        assert!(m.ticks > 0.0);
        assert!(m.efficiency > 0.0 && m.efficiency < 1.0);
    }

    #[test]
    fn refine_online_consumes_telemetry_and_republishes() {
        let mut p = quick_pipeline();
        // No traffic yet: an empty report means a no-op round.
        let idle = p.refine_online(OnlineRefinerConfig::default());
        assert_eq!(idle, RefineOutcome::default());

        // Serve a ranking to generate telemetry, then refine.
        let before = p.rank_trinv(224, 32).unwrap();
        let report = p.refinement_report();
        assert!(!report.is_empty());
        let generation_before = report.generation;
        let outcome = p.refine_online(OnlineRefinerConfig {
            max_cells: 3,
            ..Default::default()
        });
        assert!(outcome.cells_refined >= 1);
        assert!(outcome.samples_used > 0);
        assert_eq!(outcome.skipped_no_template, 0);

        // The publish bumped the served generation and regions carry their
        // provenance; the service still answers the same queries.
        let _ = p.rank_trinv(224, 32).unwrap();
        let report_after = p.refinement_report();
        assert!(report_after.generation > generation_before);
        let revised: usize = p
            .repository()
            .iter()
            .flat_map(|(_, m)| m.submodels.values())
            .flat_map(|s| s.regions.iter())
            .filter(|r| r.revision > 0)
            .count();
        assert_eq!(revised, outcome.regions_added);
        let after = p.rank_trinv(224, 32).unwrap();
        assert_eq!(after.len(), before.len());
    }

    #[test]
    fn refine_online_works_on_a_loaded_repository() {
        // Regression: the refiner's template registry used to come only from
        // `build_models`, so a pipeline serving a *loaded* repository
        // skipped every hot cell with `skipped_no_template` and silently
        // never refined.
        let p = quick_pipeline();
        let dir = std::env::temp_dir().join("dlaperf-refine-loaded-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.txt");
        p.save_repository(&path).unwrap();

        let mut q = Pipeline::new(harpertown_openblas())
            .with_model_config(ModelSetConfig::quick(256))
            .with_seed(9);
        q.load_repository(&path).unwrap();
        let _ = q.rank_trinv(224, 32).unwrap(); // serve traffic → telemetry
        let outcome = q.refine_online(OnlineRefinerConfig {
            max_cells: 2,
            ..Default::default()
        });
        assert_eq!(outcome.skipped_no_template, 0);
        assert!(outcome.cells_refined >= 1);
        assert!(q.rank_trinv(224, 32).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_repository_roundtrip() {
        let p = quick_pipeline();
        let dir = std::env::temp_dir().join("dlaperf-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.txt");
        p.save_repository(&path).unwrap();
        let mut q = Pipeline::new(harpertown_openblas());
        q.load_repository(&path).unwrap();
        assert_eq!(q.repository().len(), p.repository().len());
        let r1 = p.rank_trinv(224, 32).unwrap();
        let r2 = q.rank_trinv(224, 32).unwrap();
        assert_eq!(r1[0].0, r2[0].0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_models_surface_as_errors() {
        let p = Pipeline::new(harpertown_openblas());
        assert!(p.rank_trinv(128, 32).is_err());
        assert!(p.rank_sylv(128, 32).is_err());
    }
}
