//! # dla-sampler
//!
//! The **Sampler**: the measurement front end of the stack (paper
//! Section II-C).  Given routine calls in the form of argument tuples, it
//! executes them repeatedly on an [`Executor`](dla_machine::Executor) under a
//! chosen memory-locality scenario, discards the initial library-warm-up
//! outliers, and reports summary statistics (minimum, mean, median, maximum,
//! standard deviation) of the measured `ticks`.
//!
//! Two interfaces are provided:
//!
//! * the programmatic [`Sampler`] used by the Modeler, and
//! * a line-oriented text interface ([`script`]) that mirrors the paper's
//!   stand-alone tool: each input line is a routine tuple such as
//!   `dtrsm R L N U 512 128 0.37 256 512`, and each output line reports the
//!   statistics for that call.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod sampler;

pub mod script;

pub use sampler::{SampleError, SampleResult, SampleTelemetry, Sampler, SamplerConfig};
