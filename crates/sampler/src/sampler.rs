//! The sampling engine.

use dla_blas::Call;
use dla_machine::{ExecError, Executor, Locality, MachineConfig};
use dla_mat::stats::{StatsError, Summary};

/// Why a fallible sampling attempt produced no summary.
///
/// Measurement faults (transient harness failures, all-corrupt sample sets)
/// surface here as structured errors after the sampler's bounded retry is
/// exhausted, so the Modeler can quarantine the affected region instead of
/// fitting garbage or panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleError {
    /// Every attempt failed with a transient execution error.
    RetriesExhausted {
        /// Number of attempts performed (1 + retries).
        attempts: usize,
        /// The last execution error observed.
        last: ExecError,
    },
    /// Measurements were delivered, but no attempt yielded a single usable
    /// (finite) observation.
    Degenerate {
        /// Number of attempts performed (1 + retries).
        attempts: usize,
        /// The last statistics error observed.
        last: StatsError,
    },
    /// Every attempt's observations were too dispersed to trust: the scaled
    /// MAD exceeded the configured fraction of the median.  Median/MAD
    /// trimming breaks down at 50 % contamination (e.g. two ×k latency
    /// spikes among four kept observations inflate median and MAD together,
    /// so nothing is trimmed), and this is how such a batch looks from the
    /// outside — rejecting it turns a silently corrupted summary into a
    /// retried measurement.
    Dispersed {
        /// Number of attempts performed (1 + retries).
        attempts: usize,
        /// Scaled MAD of the last attempt's finite observations.
        scaled_mad: f64,
        /// Median of the last attempt's finite observations.
        median: f64,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::RetriesExhausted { attempts, last } => {
                write!(f, "sampling failed after {attempts} attempts: {last}")
            }
            SampleError::Degenerate { attempts, last } => {
                write!(f, "no usable samples after {attempts} attempts: {last}")
            }
            SampleError::Dispersed {
                attempts,
                scaled_mad,
                median,
            } => {
                write!(
                    f,
                    "samples too dispersed after {attempts} attempts \
                     (scaled MAD {scaled_mad:.3} vs median {median:.3})"
                )
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Monotone counters describing the sampler's fault handling so far.
///
/// The online refiner snapshots these around a round to report per-round
/// retry/discard telemetry in its outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleTelemetry {
    /// Retry attempts performed (attempts beyond the first, per call).
    pub retries: u64,
    /// Measurements discarded because they were NaN or infinite.
    pub discarded_non_finite: u64,
    /// Finite measurements trimmed as outliers by the median/MAD rule.
    pub discarded_outliers: u64,
    /// Calls that exhausted every attempt and returned a [`SampleError`].
    pub failures: u64,
}

impl SampleTelemetry {
    /// Total discarded measurements (non-finite plus trimmed outliers).
    pub fn discarded(&self) -> u64 {
        self.discarded_non_finite + self.discarded_outliers
    }

    /// Field-wise difference against an earlier snapshot of the same counters.
    pub fn since(&self, earlier: &SampleTelemetry) -> SampleTelemetry {
        SampleTelemetry {
            retries: self.retries - earlier.retries,
            discarded_non_finite: self.discarded_non_finite - earlier.discarded_non_finite,
            discarded_outliers: self.discarded_outliers - earlier.discarded_outliers,
            failures: self.failures - earlier.failures,
        }
    }
}

/// Configuration of a sampling campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Memory-locality scenario the operands are placed in.
    pub locality: Locality,
    /// Number of measurements collected per call.
    pub repetitions: usize,
    /// Number of leading measurements discarded (library initialisation — the
    /// paper discards the first invocation, which is an order of magnitude
    /// slower than the rest).
    pub warmup_discard: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            locality: Locality::InCache,
            repetitions: 10,
            warmup_discard: 1,
        }
    }
}

impl SamplerConfig {
    /// In-cache sampling with the given repetition count.
    pub fn in_cache(repetitions: usize) -> SamplerConfig {
        SamplerConfig {
            locality: Locality::InCache,
            repetitions,
            warmup_discard: 1,
        }
    }

    /// Out-of-cache sampling with the given repetition count.
    pub fn out_of_cache(repetitions: usize) -> SamplerConfig {
        SamplerConfig {
            locality: Locality::OutOfCache,
            repetitions,
            warmup_discard: 1,
        }
    }
}

/// The result of sampling one routine call.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// The call that was measured.
    pub call: Call,
    /// The locality scenario it was measured under.
    pub locality: Locality,
    /// Summary of the measured ticks (after discarding warm-up measurements).
    pub ticks: Summary,
    /// Summary of the corresponding efficiencies.
    pub efficiency: Summary,
    /// The raw tick measurements that the summary was computed from.
    pub raw_ticks: Vec<f64>,
    /// Measurements that were discarded as warm-up.
    pub discarded: Vec<f64>,
}

impl SampleResult {
    /// The measured flop count of the call.
    pub fn flops(&self) -> f64 {
        self.call.flops()
    }
}

/// The Sampler: drives an executor to produce summary statistics per call.
#[derive(Debug)]
pub struct Sampler<E: Executor> {
    executor: E,
    config: SamplerConfig,
    samples_taken: usize,
    /// Reusable tick-measurement buffer for the repetition loop.
    scratch: Vec<f64>,
    /// Maximum retries after a failed attempt of [`Sampler::try_sample_ticks`].
    max_retries: usize,
    /// Outlier-trimming aggressiveness of the robust path (MAD multiples).
    mad_k: f64,
    /// Largest tolerated `scaled MAD / |median|` of an aggregated batch.
    max_dispersion: f64,
    telemetry: SampleTelemetry,
}

impl<E: Executor> Sampler<E> {
    /// Default retry bound of the fallible sampling path.
    pub const DEFAULT_MAX_RETRIES: usize = 3;
    /// Default MAD multiple for robust outlier trimming (≈5σ for Gaussian
    /// noise — generous enough to never trim the simulator's honest noise,
    /// tight enough to shed ×10 latency spikes).
    pub const DEFAULT_MAD_K: f64 = 5.0;
    /// Default bound on a batch's relative dispersion (scaled MAD over
    /// |median|).  Honest measurement noise is a few percent of the median;
    /// a batch at 50 % dispersion is contaminated past the breakdown point
    /// of median/MAD trimming and gets retried instead of trusted.
    pub const DEFAULT_MAX_DISPERSION: f64 = 0.5;

    /// Creates a sampler around an executor.
    pub fn new(executor: E, config: SamplerConfig) -> Sampler<E> {
        Sampler {
            executor,
            config,
            samples_taken: 0,
            scratch: Vec::new(),
            max_retries: Self::DEFAULT_MAX_RETRIES,
            mad_k: Self::DEFAULT_MAD_K,
            max_dispersion: Self::DEFAULT_MAX_DISPERSION,
            telemetry: SampleTelemetry::default(),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Changes the locality scenario for subsequent samples.
    pub fn set_locality(&mut self, locality: Locality) {
        self.config.locality = locality;
    }

    /// Changes the number of repetitions per sampled call.
    pub fn set_repetitions(&mut self, repetitions: usize) {
        self.config.repetitions = repetitions.max(1);
    }

    /// Consumes the sampler and returns the wrapped executor.
    pub fn into_executor(self) -> E {
        self.executor
    }

    /// The machine configuration of the underlying executor.
    pub fn machine(&self) -> &MachineConfig {
        self.executor.machine()
    }

    /// Total number of individual measurements performed so far (including
    /// discarded warm-up measurements); the Modeler uses this as its sample
    /// budget accounting.
    pub fn samples_taken(&self) -> usize {
        self.samples_taken
    }

    /// Access to the wrapped executor.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Bounds the retries of [`Sampler::try_sample_ticks`].
    pub fn set_max_retries(&mut self, max_retries: usize) {
        self.max_retries = max_retries;
    }

    /// Sets the MAD multiple used for robust outlier trimming.
    pub fn set_robust_mad_k(&mut self, mad_k: f64) {
        self.mad_k = mad_k.max(0.0);
    }

    /// Sets the largest tolerated relative dispersion (scaled MAD over
    /// |median|) of a robustly aggregated batch; batches above it are
    /// rejected and retried as [`SampleError::Dispersed`].
    pub fn set_max_dispersion(&mut self, max_dispersion: f64) {
        self.max_dispersion = max_dispersion.max(0.0);
    }

    /// Monotone fault-handling counters (see [`SampleTelemetry`]).
    pub fn telemetry(&self) -> SampleTelemetry {
        self.telemetry
    }

    /// Runs the measurement loop for one call into `self.scratch`; the first
    /// `warmup` entries are warm-up measurements, the rest are kept.
    ///
    /// Returns `warmup` (the number of leading scratch entries to discard).
    fn collect_ticks(&mut self, call: &Call) -> usize {
        let total = (self.config.repetitions + self.config.warmup_discard).max(1);
        let warmup = if total > self.config.warmup_discard {
            self.config.warmup_discard
        } else {
            0
        };
        self.scratch.clear();
        self.executor
            .execute_ticks(call, self.config.locality, total, &mut self.scratch);
        self.samples_taken += total;
        warmup
    }

    /// Measures one call and returns only the tick summary.
    ///
    /// This is the hot path for the Modeler's sampling oracle: it performs the
    /// same measurement loop as [`Sampler::sample`] (identical executor
    /// invocations, so the two are interchangeable without perturbing a
    /// deterministic noise stream) but skips the efficiency summary, the raw
    /// sample retention and the call clone of the full [`SampleResult`], and
    /// reuses one measurement buffer across calls.
    pub fn sample_ticks(&mut self, call: &Call) -> Summary {
        let warmup = self.collect_ticks(call);
        // lint: allow(unwrap): collect_ticks always keeps at least one sample
        Summary::from_samples(&self.scratch[warmup..]).expect("at least one kept sample")
    }

    /// Fault-tolerant variant of [`Sampler::sample_ticks`]: fallible
    /// execution, bounded retry, and robust aggregation.
    ///
    /// Each attempt runs the full measurement loop through the executor's
    /// fallible surface.  A transient execution failure, or an attempt whose
    /// measurements are all non-finite, triggers a retry — up to
    /// `max_retries` times.  Backoff is deterministic and counted in
    /// *samples*, not wall-clock: attempt `k` discards `k` extra leading
    /// measurements, giving a transient machine phase that many more
    /// executions to pass (the chaos schedules are seed-driven, so tests stay
    /// reproducible).  Delivered measurements are aggregated robustly via
    /// [`Summary::from_samples_robust`]: non-finite ticks are discarded and
    /// latency outliers beyond `mad_k` scaled MADs from the median are
    /// trimmed.  A batch that aggregates but remains over-dispersed (scaled
    /// MAD above the configured fraction of the median — contamination past
    /// the trimming rule's breakdown point) is rejected and retried as
    /// [`SampleError::Dispersed`].  Every retry and discard is recorded in
    /// [`SampleTelemetry`];
    /// failed attempts still count toward [`Sampler::samples_taken`] (budget
    /// is spent whether or not the harness delivers).
    pub fn try_sample_ticks(&mut self, call: &Call) -> Result<Summary, SampleError> {
        let attempts = self.max_retries + 1;
        let mut last_failure = SampleError::Degenerate {
            attempts,
            last: StatsError::Empty,
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                self.telemetry.retries += 1;
            }
            // Deterministic attempt-count backoff: `attempt` extra warm-up
            // discards per retry.
            let total = (self.config.repetitions + self.config.warmup_discard + attempt).max(1);
            let warmup = (self.config.warmup_discard + attempt).min(total - 1);
            self.scratch.clear();
            self.samples_taken += total;
            if let Err(e) = self.executor.try_execute_ticks(
                call,
                self.config.locality,
                total,
                &mut self.scratch,
            ) {
                last_failure = SampleError::RetriesExhausted { attempts, last: e };
                continue;
            }
            match Summary::from_samples_robust(&self.scratch[warmup..], self.mad_k) {
                Ok((summary, trim)) => {
                    self.telemetry.discarded_non_finite += trim.non_finite as u64;
                    self.telemetry.discarded_outliers += trim.outliers as u64;
                    // Dispersion guard: a batch whose scaled MAD is a large
                    // fraction of its median is contaminated past the 50 %
                    // breakdown point of the trimming rule (two spikes among
                    // four kept observations trim nothing) — reject and
                    // retry rather than hand a corrupted median to a fit.
                    if trim.scaled_mad > self.max_dispersion * summary.median.abs() {
                        last_failure = SampleError::Dispersed {
                            attempts,
                            scaled_mad: trim.scaled_mad,
                            median: summary.median,
                        };
                        continue;
                    }
                    return Ok(summary);
                }
                Err(e) => {
                    if let StatsError::NonFinite { non_finite, .. } = e {
                        self.telemetry.discarded_non_finite += non_finite as u64;
                    }
                    last_failure = SampleError::Degenerate { attempts, last: e };
                }
            }
        }
        self.telemetry.failures += 1;
        Err(last_failure)
    }

    /// Measures one call.
    pub fn sample(&mut self, call: &Call) -> SampleResult {
        let warmup = self.collect_ticks(call);
        let discarded = self.scratch[..warmup].to_vec();
        let kept = self.scratch[warmup..].to_vec();
        // lint: allow(unwrap): collect_ticks always keeps at least one sample
        let ticks = Summary::from_samples(&kept).expect("at least one kept sample");
        let flops = call.flops();
        let machine = self.executor.machine();
        let efficiencies: Vec<f64> = kept.iter().map(|&t| machine.efficiency(flops, t)).collect();
        // lint: allow(unwrap): one efficiency per kept tick sample, hence non-empty
        let efficiency = Summary::from_samples(&efficiencies).expect("non-empty");
        SampleResult {
            call: call.clone(),
            locality: self.config.locality,
            ticks,
            efficiency,
            raw_ticks: kept,
            discarded,
        }
    }

    /// Measures a list of calls in order.
    pub fn sample_all(&mut self, calls: &[Call]) -> Vec<SampleResult> {
        calls.iter().map(|c| self.sample(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::Trans;
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;

    fn sampler(reps: usize) -> Sampler<SimExecutor> {
        Sampler::new(
            SimExecutor::new(harpertown_openblas(), 42),
            SamplerConfig::in_cache(reps),
        )
    }

    fn call(n: usize) -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, 0.0)
    }

    #[test]
    fn sample_counts_and_discard() {
        let mut s = sampler(8);
        let r = s.sample(&call(128));
        assert_eq!(r.raw_ticks.len(), 8);
        assert_eq!(r.discarded.len(), 1);
        assert_eq!(r.ticks.count, 8);
        assert_eq!(s.samples_taken(), 9);
        // The discarded first measurement includes the library-initialisation
        // penalty and dwarfs the typical measurement.
        assert!(r.discarded[0] > 3.0 * r.ticks.median);
    }

    #[test]
    fn summary_is_consistent_with_raw_samples() {
        let mut s = sampler(16);
        let r = s.sample(&call(200));
        let min = r.raw_ticks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.raw_ticks.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(r.ticks.min, min);
        assert_eq!(r.ticks.max, max);
        assert!(r.ticks.min <= r.ticks.median && r.ticks.median <= r.ticks.max);
    }

    #[test]
    fn efficiency_is_inverse_to_ticks() {
        let mut s = sampler(10);
        let r = s.sample(&call(300));
        // The fastest run has the highest efficiency.
        let machine = harpertown_openblas();
        let best = machine.efficiency(r.flops(), r.ticks.min);
        assert!((r.efficiency.max - best).abs() / best < 1e-12);
        assert!(r.efficiency.max <= 1.0);
        assert!(r.efficiency.min > 0.0);
    }

    #[test]
    fn locality_switch_changes_results() {
        let mut s = sampler(6);
        let ic = s.sample(&call(64)).ticks.median;
        s.set_locality(Locality::OutOfCache);
        let oc = s.sample(&call(64)).ticks.median;
        assert!(oc > ic);
        assert_eq!(s.config().locality, Locality::OutOfCache);
    }

    #[test]
    fn sample_all_preserves_order() {
        let mut s = sampler(4);
        let calls = vec![call(32), call(64), call(96)];
        let results = s.sample_all(&calls);
        assert_eq!(results.len(), 3);
        assert!(results[0].ticks.median < results[2].ticks.median);
        for (r, c) in results.iter().zip(calls.iter()) {
            assert_eq!(&r.call, c);
        }
    }

    #[test]
    fn zero_repetitions_still_returns_one_sample() {
        let mut s = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 1),
            SamplerConfig {
                locality: Locality::InCache,
                repetitions: 0,
                warmup_discard: 0,
            },
        );
        let r = s.sample(&call(16));
        assert_eq!(r.raw_ticks.len(), 1);
        assert!(r.discarded.is_empty());
    }

    #[test]
    fn sample_ticks_matches_full_sample() {
        // Same seed, same call sequence: the tick-only fast path must report
        // exactly the summary of the full path (identical executor stream).
        let mut full = sampler(6);
        let mut fast = sampler(6);
        for n in [64usize, 128, 64, 256] {
            let a = full.sample(&call(n)).ticks;
            let b = fast.sample_ticks(&call(n));
            assert_eq!(a, b);
        }
        assert_eq!(full.samples_taken(), fast.samples_taken());
    }

    #[test]
    fn try_sample_ticks_matches_plain_path_on_a_clean_executor() {
        // Without noise or faults, the robust path must agree exactly with
        // the plain path (nothing trimmed, no retries).
        let mut plain = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(8),
        );
        let mut robust = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(8),
        );
        for n in [64usize, 128, 256] {
            let a = plain.sample_ticks(&call(n));
            let b = robust.try_sample_ticks(&call(n)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(robust.telemetry(), SampleTelemetry::default());
        assert_eq!(plain.samples_taken(), robust.samples_taken());

        // With the executor's honest noise, medians still track closely (the
        // robust path may legitimately trim the simulator's own outliers).
        let mut plain = sampler(8);
        let mut robust = sampler(8);
        for n in [64usize, 128, 256] {
            let a = plain.sample_ticks(&call(n));
            let b = robust.try_sample_ticks(&call(n)).unwrap();
            assert!((b.median / a.median - 1.0).abs() < 0.05);
        }
        assert_eq!(robust.telemetry().retries, 0);
        assert_eq!(robust.telemetry().failures, 0);
    }

    #[test]
    fn try_sample_ticks_retries_transient_failures() {
        use dla_machine::{ChaosConfig, ChaosExecutor};
        // 8% per-measurement transient rate: each 9-measurement batch fails
        // with p ≈ 0.53, so retries are certain across 8 calls while 4
        // attempts keep per-call success above 90%.
        let chaos = ChaosConfig {
            transient_probability: 0.08,
            ..ChaosConfig::default()
        };
        let mut s = Sampler::new(
            ChaosExecutor::new(SimExecutor::new(harpertown_openblas(), 42), chaos),
            SamplerConfig::in_cache(8),
        );
        let mut ok = 0;
        for n in [32usize, 64, 96, 128, 160, 192, 224, 256] {
            if let Ok(summary) = s.try_sample_ticks(&call(n)) {
                assert!(summary.mean.is_finite());
                ok += 1;
            }
        }
        assert!(ok >= 6, "most calls should survive 8% transient faults");
        let t = s.telemetry();
        assert!(t.retries > 0, "batch failure rate ~50% must force retries");
    }

    #[test]
    fn try_sample_ticks_trims_spikes_and_non_finite() {
        use dla_machine::{ChaosConfig, ChaosExecutor};
        let chaos = ChaosConfig {
            spike_probability: 0.15,
            spike_factor: 50.0,
            non_finite_probability: 0.15,
            ..ChaosConfig::default()
        };
        let mut s = Sampler::new(
            ChaosExecutor::new(SimExecutor::new(harpertown_openblas(), 7), chaos),
            SamplerConfig::in_cache(12),
        );
        let mut clean = sampler(12);
        let mut worst = 0.0f64;
        for n in [64usize, 128, 192, 256] {
            let noisy = s.try_sample_ticks(&call(n)).unwrap();
            let base = clean.sample_ticks(&call(n));
            assert!(noisy.max.is_finite());
            // Spikes are x50; robust trimming must keep the median within a
            // few percent of the fault-free run.
            worst = worst.max((noisy.median / base.median - 1.0).abs());
        }
        assert!(
            worst < 0.1,
            "robust medians should track clean ones: {worst}"
        );
        let t = s.telemetry();
        assert!(t.discarded() > 0, "faults at 30% must discard something");
        assert_eq!(t.failures, 0);
    }

    #[test]
    fn try_sample_ticks_exhausts_retries_with_structured_error() {
        use dla_machine::{ChaosConfig, ChaosExecutor};
        let chaos = ChaosConfig {
            transient_probability: 1.0,
            ..ChaosConfig::default()
        };
        let mut s = Sampler::new(
            ChaosExecutor::new(SimExecutor::new(harpertown_openblas(), 3), chaos),
            SamplerConfig::in_cache(4),
        );
        s.set_max_retries(2);
        match s.try_sample_ticks(&call(64)) {
            Err(SampleError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected retries-exhausted, got {other:?}"),
        }
        let t = s.telemetry();
        assert_eq!(t.retries, 2);
        assert_eq!(t.failures, 1);
        // Budget is charged for failed attempts: 3 attempts with increasing
        // backoff (5 + 6 + 7 measurements).
        assert_eq!(s.samples_taken(), 18);
    }

    #[test]
    fn try_sample_ticks_all_non_finite_is_degenerate() {
        use dla_machine::{ChaosConfig, ChaosExecutor};
        let chaos = ChaosConfig {
            non_finite_probability: 1.0,
            ..ChaosConfig::default()
        };
        let mut s = Sampler::new(
            ChaosExecutor::new(SimExecutor::new(harpertown_openblas(), 5), chaos),
            SamplerConfig::in_cache(4),
        );
        match s.try_sample_ticks(&call(64)) {
            Err(SampleError::Degenerate { .. }) => {}
            other => panic!("expected degenerate, got {other:?}"),
        }
        assert!(s.telemetry().discarded_non_finite > 0);
    }

    #[test]
    fn noiseless_executor_gives_zero_spread() {
        let mut s = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(5),
        );
        let r = s.sample(&call(100));
        assert_eq!(r.ticks.std_dev, 0.0);
        assert_eq!(r.ticks.min, r.ticks.max);
    }
}
