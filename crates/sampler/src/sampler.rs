//! The sampling engine.

use dla_blas::Call;
use dla_machine::{Executor, Locality, MachineConfig};
use dla_mat::stats::Summary;

/// Configuration of a sampling campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Memory-locality scenario the operands are placed in.
    pub locality: Locality,
    /// Number of measurements collected per call.
    pub repetitions: usize,
    /// Number of leading measurements discarded (library initialisation — the
    /// paper discards the first invocation, which is an order of magnitude
    /// slower than the rest).
    pub warmup_discard: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            locality: Locality::InCache,
            repetitions: 10,
            warmup_discard: 1,
        }
    }
}

impl SamplerConfig {
    /// In-cache sampling with the given repetition count.
    pub fn in_cache(repetitions: usize) -> SamplerConfig {
        SamplerConfig {
            locality: Locality::InCache,
            repetitions,
            warmup_discard: 1,
        }
    }

    /// Out-of-cache sampling with the given repetition count.
    pub fn out_of_cache(repetitions: usize) -> SamplerConfig {
        SamplerConfig {
            locality: Locality::OutOfCache,
            repetitions,
            warmup_discard: 1,
        }
    }
}

/// The result of sampling one routine call.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// The call that was measured.
    pub call: Call,
    /// The locality scenario it was measured under.
    pub locality: Locality,
    /// Summary of the measured ticks (after discarding warm-up measurements).
    pub ticks: Summary,
    /// Summary of the corresponding efficiencies.
    pub efficiency: Summary,
    /// The raw tick measurements that the summary was computed from.
    pub raw_ticks: Vec<f64>,
    /// Measurements that were discarded as warm-up.
    pub discarded: Vec<f64>,
}

impl SampleResult {
    /// The measured flop count of the call.
    pub fn flops(&self) -> f64 {
        self.call.flops()
    }
}

/// The Sampler: drives an executor to produce summary statistics per call.
#[derive(Debug)]
pub struct Sampler<E: Executor> {
    executor: E,
    config: SamplerConfig,
    samples_taken: usize,
    /// Reusable tick-measurement buffer for the repetition loop.
    scratch: Vec<f64>,
}

impl<E: Executor> Sampler<E> {
    /// Creates a sampler around an executor.
    pub fn new(executor: E, config: SamplerConfig) -> Sampler<E> {
        Sampler {
            executor,
            config,
            samples_taken: 0,
            scratch: Vec::new(),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Changes the locality scenario for subsequent samples.
    pub fn set_locality(&mut self, locality: Locality) {
        self.config.locality = locality;
    }

    /// Changes the number of repetitions per sampled call.
    pub fn set_repetitions(&mut self, repetitions: usize) {
        self.config.repetitions = repetitions.max(1);
    }

    /// Consumes the sampler and returns the wrapped executor.
    pub fn into_executor(self) -> E {
        self.executor
    }

    /// The machine configuration of the underlying executor.
    pub fn machine(&self) -> &MachineConfig {
        self.executor.machine()
    }

    /// Total number of individual measurements performed so far (including
    /// discarded warm-up measurements); the Modeler uses this as its sample
    /// budget accounting.
    pub fn samples_taken(&self) -> usize {
        self.samples_taken
    }

    /// Access to the wrapped executor.
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Runs the measurement loop for one call into `self.scratch`; the first
    /// `warmup` entries are warm-up measurements, the rest are kept.
    ///
    /// Returns `warmup` (the number of leading scratch entries to discard).
    fn collect_ticks(&mut self, call: &Call) -> usize {
        let total = (self.config.repetitions + self.config.warmup_discard).max(1);
        let warmup = if total > self.config.warmup_discard {
            self.config.warmup_discard
        } else {
            0
        };
        self.scratch.clear();
        self.executor
            .execute_ticks(call, self.config.locality, total, &mut self.scratch);
        self.samples_taken += total;
        warmup
    }

    /// Measures one call and returns only the tick summary.
    ///
    /// This is the hot path for the Modeler's sampling oracle: it performs the
    /// same measurement loop as [`Sampler::sample`] (identical executor
    /// invocations, so the two are interchangeable without perturbing a
    /// deterministic noise stream) but skips the efficiency summary, the raw
    /// sample retention and the call clone of the full [`SampleResult`], and
    /// reuses one measurement buffer across calls.
    pub fn sample_ticks(&mut self, call: &Call) -> Summary {
        let warmup = self.collect_ticks(call);
        // lint: allow(unwrap): collect_ticks always keeps at least one sample
        Summary::from_samples(&self.scratch[warmup..]).expect("at least one kept sample")
    }

    /// Measures one call.
    pub fn sample(&mut self, call: &Call) -> SampleResult {
        let warmup = self.collect_ticks(call);
        let discarded = self.scratch[..warmup].to_vec();
        let kept = self.scratch[warmup..].to_vec();
        // lint: allow(unwrap): collect_ticks always keeps at least one sample
        let ticks = Summary::from_samples(&kept).expect("at least one kept sample");
        let flops = call.flops();
        let machine = self.executor.machine();
        let efficiencies: Vec<f64> = kept.iter().map(|&t| machine.efficiency(flops, t)).collect();
        // lint: allow(unwrap): one efficiency per kept tick sample, hence non-empty
        let efficiency = Summary::from_samples(&efficiencies).expect("non-empty");
        SampleResult {
            call: call.clone(),
            locality: self.config.locality,
            ticks,
            efficiency,
            raw_ticks: kept,
            discarded,
        }
    }

    /// Measures a list of calls in order.
    pub fn sample_all(&mut self, calls: &[Call]) -> Vec<SampleResult> {
        calls.iter().map(|c| self.sample(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::Trans;
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;

    fn sampler(reps: usize) -> Sampler<SimExecutor> {
        Sampler::new(
            SimExecutor::new(harpertown_openblas(), 42),
            SamplerConfig::in_cache(reps),
        )
    }

    fn call(n: usize) -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, 0.0)
    }

    #[test]
    fn sample_counts_and_discard() {
        let mut s = sampler(8);
        let r = s.sample(&call(128));
        assert_eq!(r.raw_ticks.len(), 8);
        assert_eq!(r.discarded.len(), 1);
        assert_eq!(r.ticks.count, 8);
        assert_eq!(s.samples_taken(), 9);
        // The discarded first measurement includes the library-initialisation
        // penalty and dwarfs the typical measurement.
        assert!(r.discarded[0] > 3.0 * r.ticks.median);
    }

    #[test]
    fn summary_is_consistent_with_raw_samples() {
        let mut s = sampler(16);
        let r = s.sample(&call(200));
        let min = r.raw_ticks.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.raw_ticks.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(r.ticks.min, min);
        assert_eq!(r.ticks.max, max);
        assert!(r.ticks.min <= r.ticks.median && r.ticks.median <= r.ticks.max);
    }

    #[test]
    fn efficiency_is_inverse_to_ticks() {
        let mut s = sampler(10);
        let r = s.sample(&call(300));
        // The fastest run has the highest efficiency.
        let machine = harpertown_openblas();
        let best = machine.efficiency(r.flops(), r.ticks.min);
        assert!((r.efficiency.max - best).abs() / best < 1e-12);
        assert!(r.efficiency.max <= 1.0);
        assert!(r.efficiency.min > 0.0);
    }

    #[test]
    fn locality_switch_changes_results() {
        let mut s = sampler(6);
        let ic = s.sample(&call(64)).ticks.median;
        s.set_locality(Locality::OutOfCache);
        let oc = s.sample(&call(64)).ticks.median;
        assert!(oc > ic);
        assert_eq!(s.config().locality, Locality::OutOfCache);
    }

    #[test]
    fn sample_all_preserves_order() {
        let mut s = sampler(4);
        let calls = vec![call(32), call(64), call(96)];
        let results = s.sample_all(&calls);
        assert_eq!(results.len(), 3);
        assert!(results[0].ticks.median < results[2].ticks.median);
        for (r, c) in results.iter().zip(calls.iter()) {
            assert_eq!(&r.call, c);
        }
    }

    #[test]
    fn zero_repetitions_still_returns_one_sample() {
        let mut s = Sampler::new(
            SimExecutor::new(harpertown_openblas(), 1),
            SamplerConfig {
                locality: Locality::InCache,
                repetitions: 0,
                warmup_discard: 0,
            },
        );
        let r = s.sample(&call(16));
        assert_eq!(r.raw_ticks.len(), 1);
        assert!(r.discarded.is_empty());
    }

    #[test]
    fn sample_ticks_matches_full_sample() {
        // Same seed, same call sequence: the tick-only fast path must report
        // exactly the summary of the full path (identical executor stream).
        let mut full = sampler(6);
        let mut fast = sampler(6);
        for n in [64usize, 128, 64, 256] {
            let a = full.sample(&call(n)).ticks;
            let b = fast.sample_ticks(&call(n));
            assert_eq!(a, b);
        }
        assert_eq!(full.samples_taken(), fast.samples_taken());
    }

    #[test]
    fn noiseless_executor_gives_zero_spread() {
        let mut s = Sampler::new(
            SimExecutor::noiseless(harpertown_openblas()),
            SamplerConfig::in_cache(5),
        );
        let r = s.sample(&call(100));
        assert_eq!(r.ticks.std_dev, 0.0);
        assert_eq!(r.ticks.min, r.ticks.max);
    }
}
