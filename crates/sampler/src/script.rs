//! Line-oriented text interface to the Sampler.
//!
//! This mirrors the way the paper's stand-alone Sampler tool is used: each
//! input line names a routine and its argument tuple; each output line reports
//! the summary statistics of the measured ticks.  Lines starting with `#` and
//! blank lines are ignored.  A small set of directives control the campaign:
//!
//! ```text
//! # switch locality for the following calls
//! @locality out-of-cache
//! # set the number of repetitions per call
//! @repetitions 20
//! dtrsm R L N U 512 128 0.37 2500 2500
//! dgemm N N 256 256 256 1.0 0.0 2500 2500 2500
//! ```

use dla_blas::Call;
use dla_machine::{Executor, Locality};

use crate::{SampleResult, Sampler};

/// The outcome of running one script line.
#[derive(Debug, Clone, PartialEq)]
pub enum LineOutcome {
    /// The line was a comment, a blank line or a directive.
    Skipped,
    /// The line was a call that was successfully measured.
    Measured(Box<SampleResult>),
    /// The line could not be parsed or executed.
    Error(String),
}

/// Runs a sampling script and returns one outcome per input line.
pub fn run_script<E: Executor>(sampler: &mut Sampler<E>, script: &str) -> Vec<LineOutcome> {
    script.lines().map(|line| run_line(sampler, line)).collect()
}

/// Runs a single script line.
pub fn run_line<E: Executor>(sampler: &mut Sampler<E>, line: &str) -> LineOutcome {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return LineOutcome::Skipped;
    }
    if let Some(rest) = trimmed.strip_prefix('@') {
        return match apply_directive(sampler, rest) {
            Ok(()) => LineOutcome::Skipped,
            Err(e) => LineOutcome::Error(e),
        };
    }
    match Call::parse(trimmed) {
        Ok(call) => LineOutcome::Measured(Box::new(sampler.sample(&call))),
        Err(e) => LineOutcome::Error(e),
    }
}

fn apply_directive<E: Executor>(sampler: &mut Sampler<E>, directive: &str) -> Result<(), String> {
    let mut parts = directive.split_whitespace();
    let name = parts.next().ok_or("empty directive")?;
    match name {
        "locality" => {
            let value = parts.next().ok_or("missing locality value")?;
            let locality =
                Locality::from_name(value).ok_or_else(|| format!("unknown locality '{value}'"))?;
            sampler.set_locality(locality);
            Ok(())
        }
        "repetitions" => {
            let value = parts.next().ok_or("missing repetition count")?;
            let reps: usize = value
                .parse()
                .map_err(|_| format!("bad repetition count '{value}'"))?;
            sampler.set_repetitions(reps);
            Ok(())
        }
        other => Err(format!("unknown directive '@{other}'")),
    }
}

/// Formats the measured outcomes as a plain-text report, one line per call.
pub fn format_report(outcomes: &[LineOutcome]) -> String {
    let mut out = String::new();
    out.push_str("# routine                         locality      median        mean         min         max        std\n");
    for outcome in outcomes {
        match outcome {
            LineOutcome::Skipped => {}
            LineOutcome::Error(e) => {
                out.push_str(&format!("# error: {e}\n"));
            }
            LineOutcome::Measured(r) => {
                out.push_str(&format!(
                    "{:<34}{:<12}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>11.0}\n",
                    r.call.to_string(),
                    r.locality.name(),
                    r.ticks.median,
                    r.ticks.mean,
                    r.ticks.min,
                    r.ticks.max,
                    r.ticks.std_dev
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplerConfig;
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;

    fn sampler() -> Sampler<SimExecutor> {
        Sampler::new(
            SimExecutor::new(harpertown_openblas(), 7),
            SamplerConfig::in_cache(5),
        )
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut s = sampler();
        assert_eq!(run_line(&mut s, "   "), LineOutcome::Skipped);
        assert_eq!(run_line(&mut s, "# a comment"), LineOutcome::Skipped);
    }

    #[test]
    fn calls_are_measured() {
        let mut s = sampler();
        match run_line(&mut s, "dgemm N N 64 64 64 1.0 0.0 2500 2500 2500") {
            LineOutcome::Measured(r) => {
                assert_eq!(r.raw_ticks.len(), 5);
                assert!(r.ticks.median > 0.0);
            }
            other => panic!("expected measurement, got {other:?}"),
        }
    }

    #[test]
    fn bad_lines_report_errors() {
        let mut s = sampler();
        assert!(matches!(
            run_line(&mut s, "dfrobnicate 1 2 3"),
            LineOutcome::Error(_)
        ));
        assert!(matches!(
            run_line(&mut s, "@bogus 1"),
            LineOutcome::Error(_)
        ));
        assert!(matches!(
            run_line(&mut s, "@locality nowhere"),
            LineOutcome::Error(_)
        ));
    }

    #[test]
    fn locality_directive_applies_to_following_calls() {
        let mut s = sampler();
        let outcomes = run_script(
            &mut s,
            "dtrsm R L N U 128 64 0.37 2500 2500\n@locality out-of-cache\ndtrsm R L N U 128 64 0.37 2500 2500\n",
        );
        let measured: Vec<&SampleResult> = outcomes
            .iter()
            .filter_map(|o| match o {
                LineOutcome::Measured(r) => Some(r.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(measured.len(), 2);
        assert_eq!(measured[0].locality, Locality::InCache);
        assert_eq!(measured[1].locality, Locality::OutOfCache);
        assert!(measured[1].ticks.median > measured[0].ticks.median);
    }

    #[test]
    fn report_contains_one_line_per_measured_call() {
        let mut s = sampler();
        let outcomes = run_script(
            &mut s,
            "# header\ndgemm N N 32 32 32 1.0 0.0 2500 2500 2500\nnonsense\n",
        );
        let report = format_report(&outcomes);
        assert!(report.contains("dgemm"));
        assert!(report.contains("# error"));
        // one header line + one measurement + one error line
        assert_eq!(report.lines().count(), 3);
    }
}
