//! The serving layer: a thread-safe, read-optimized front end to the model
//! repository.
//!
//! The paper's repository is a long-lived asset: models are built once and
//! then answer many downstream queries.  [`ModelService`] is the concurrent
//! embodiment of that shape:
//!
//! * it shares the repository behind a
//!   [`SharedRepository`](dla_model::SharedRepository), so any number of
//!   threads can take consistent snapshots and obtain [`Predictor`]s while a
//!   freshly rebuilt repository is hot-swapped in underneath them;
//! * it memoizes repeated `(routine, flags, sizes)` evaluations behind a
//!   sharded cache — algorithm traces re-evaluate the same calls constantly
//!   (every iteration of a blocked algorithm issues the same small set of
//!   distinct calls), so a warm cache answers most queries without touching
//!   the polynomial evaluator;
//! * cache *misses* — the cold path — run on the compiled evaluation engine
//!   ([`CompiledRepository`](dla_model::CompiledRepository)): repositories
//!   are compiled once per swap/merge inside the shared handle, so even the
//!   first evaluation of a call is an indexed, allocation-free lookup.
//!
//! The service is `Sync`: wrap it in an `Arc` and clone the handle into as
//! many threads as needed.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use dla_blas::{Call, Routine};
use dla_machine::{Locality, MachineConfig};
use dla_mat::stats::Summary;
use dla_model::{submodel_key, ModelRepository, SharedRepository};

use crate::predictor::{EfficiencyPrediction, Predictor, TraceEvaluator, TracePrediction};

/// Number of cache shards when none is given: enough to keep writer
/// contention negligible at typical thread counts.
const DEFAULT_SHARDS: usize = 16;

/// The model parameters a cached estimate depends on.  Scalars and leading
/// dimensions are deliberately absent — the models drop them too.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CallKey {
    routine: Routine,
    flags: Vec<usize>,
    sizes: Vec<usize>,
}

impl CallKey {
    fn new(call: &Call) -> CallKey {
        CallKey {
            routine: call.routine(),
            flags: submodel_key(call),
            sizes: call.sizes(),
        }
    }

    fn shard(&self, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % shards
    }
}

/// Hit/miss counters of the service's evaluation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that had to consult the models.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of evaluations answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Shard = RwLock<HashMap<CallKey, (u64, Summary)>>;

/// The service's pre-resolved evaluation state for one repository
/// generation: the compiled snapshot together with its machine/locality
/// routing table, so the cache-miss path is a plain array index (no string
/// comparison, no allocation).
struct Resolved {
    generation: u64,
    compiled: Arc<dla_model::CompiledRepository>,
    table: dla_model::RoutineTable,
}

/// A thread-safe prediction service over a hot-swappable model repository.
pub struct ModelService {
    shared: SharedRepository,
    machine: MachineConfig,
    locality: Locality,
    shards: Vec<Shard>,
    resolved: RwLock<Option<Resolved>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelService {
    /// Creates a service over a repository, for one machine and locality.
    pub fn new(
        repository: ModelRepository,
        machine: MachineConfig,
        locality: Locality,
    ) -> ModelService {
        ModelService::with_shards(repository, machine, locality, DEFAULT_SHARDS)
    }

    /// Creates a service with an explicit cache shard count.
    pub fn with_shards(
        repository: ModelRepository,
        machine: MachineConfig,
        locality: Locality,
        shards: usize,
    ) -> ModelService {
        ModelService {
            shared: SharedRepository::new(repository),
            machine,
            locality,
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            resolved: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The compiled snapshot and routing table for `generation`, from the
    /// resolver cache when fresh, re-resolved (and re-cached) after a
    /// swap/merge.  The returned pair is always internally consistent (the
    /// table was computed from that exact compiled snapshot).
    fn resolved(
        &self,
        generation: u64,
    ) -> (Arc<dla_model::CompiledRepository>, dla_model::RoutineTable) {
        if let Some(r) = self.resolved.read().expect("resolver poisoned").as_ref() {
            if r.generation == generation {
                return (Arc::clone(&r.compiled), r.table);
            }
        }
        let compiled = self.shared.compiled();
        let table = compiled.resolve(&self.machine.id(), self.locality);
        // Only cache when no swap happened since the caller observed
        // `generation`; a racing entry must not outlive the swap.
        if self.shared.generation() == generation {
            *self.resolved.write().expect("resolver poisoned") = Some(Resolved {
                generation,
                compiled: Arc::clone(&compiled),
                table,
            });
        }
        (compiled, table)
    }

    /// The machine configuration predictions refer to.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The memory-locality scenario of the served models.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// A consistent snapshot of the current repository.
    pub fn snapshot(&self) -> Arc<ModelRepository> {
        self.shared.snapshot()
    }

    /// Atomically replaces the repository (hot swap), returning the previous
    /// one.  In-flight predictors keep their snapshot; cached evaluations are
    /// invalidated.
    pub fn swap(&self, repository: ModelRepository) -> Arc<ModelRepository> {
        let old = self.shared.swap(repository);
        self.clear_cache();
        old
    }

    /// Merges freshly built models into the served repository (hot swap).
    pub fn merge(&self, other: ModelRepository) {
        self.shared.merge(other);
        self.clear_cache();
    }

    /// A predictor over the current snapshot.
    ///
    /// The predictor owns its snapshot (`'static`), so it can be handed to
    /// other threads and outlives later [`swap`](ModelService::swap)s.  The
    /// snapshot is already compiled (compilation happened at the last
    /// swap/merge), so this is cheap.
    pub fn predictor(&self) -> Predictor<'static> {
        Predictor::from_compiled(self.shared.compiled(), self.machine.clone(), self.locality)
    }

    /// Predicts the performance of a single call, memoized.
    pub fn predict_call(&self, call: &Call) -> dla_model::Result<Summary> {
        let key = CallKey::new(call);
        let shard = &self.shards[key.shard(self.shards.len())];
        let generation = self.shared.generation();
        if let Some(&(stored_generation, summary)) =
            shard.read().expect("cache shard poisoned").get(&key)
        {
            if stored_generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(summary);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Cache miss: evaluate on the compiled engine through the cached
        // routing table (the snapshot was compiled at the last swap/merge
        // and the table resolved once per generation, so the cold path does
        // no compilation, no hashing and no string comparison).
        let (compiled, table) = self.resolved(generation);
        let model = table
            .slot(call.routine())
            .map(|slot| compiled.model_at(slot))
            .ok_or_else(|| {
                crate::predictor::missing_model_error(
                    call.routine(),
                    &self.machine.id(),
                    self.locality,
                )
            })?;
        let summary = model.estimate(call)?;
        // Only cache if no swap happened while we evaluated; a racing entry
        // from a stale snapshot must not survive the swap's invalidation.
        if self.shared.generation() == generation {
            shard
                .write()
                .expect("cache shard poisoned")
                .insert(key, (generation, summary));
        }
        Ok(summary)
    }

    /// Predicts a whole trace by accumulating memoized per-call estimates
    /// (see [`TraceEvaluator::predict_trace`]).
    pub fn predict_trace(&self, trace: &[Call]) -> dla_model::Result<TracePrediction> {
        TraceEvaluator::predict_trace(self, trace)
    }

    /// Predicts a batch of traces, memoized per call (see
    /// [`TraceEvaluator::predict_traces`]).
    pub fn predict_traces(&self, traces: &[&[Call]]) -> dla_model::Result<Vec<TracePrediction>> {
        TraceEvaluator::predict_traces(self, traces)
    }

    /// Predicts the efficiency of a trace for an operation with the given
    /// useful flop count (memoized per call).
    pub fn predict_efficiency(
        &self,
        trace: &[Call],
        useful_flops: f64,
    ) -> dla_model::Result<EfficiencyPrediction> {
        TraceEvaluator::predict_efficiency(self, trace, useful_flops)
    }

    /// Hit/miss counters of the evaluation cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently cached across all shards.
    pub fn cached_evaluations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Drops every cached evaluation and the resolver cache (the hit/miss
    /// counters are kept).  Called on swap/merge, which also releases the
    /// resolver's reference to the previous compiled snapshot.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.write().expect("cache shard poisoned").clear();
        }
        *self.resolved.write().expect("resolver poisoned") = None;
    }
}

impl TraceEvaluator for ModelService {
    fn machine(&self) -> &MachineConfig {
        ModelService::machine(self)
    }

    fn predict_call(&self, call: &Call) -> dla_model::Result<Summary> {
        ModelService::predict_call(self, call)
    }
}

impl std::fmt::Debug for ModelService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelService")
            .field("machine", &self.machine.id())
            .field("locality", &self.locality)
            .field("models", &self.snapshot().len())
            .field("shards", &self.shards.len())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_repository, ModelSetConfig, Workload};
    use dla_blas::Trans;
    use dla_machine::presets::harpertown_openblas;

    fn quick_service() -> ModelService {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(128);
        let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
        ModelService::new(repo, machine, Locality::InCache)
    }

    fn gemm(n: usize) -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n.min(64), 1.0, 1.0)
    }

    #[test]
    fn service_is_sync_and_send() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ModelService>();
    }

    #[test]
    fn memoized_predictions_match_the_predictor() {
        let service = quick_service();
        let predictor = service.predictor();
        let call = gemm(96);
        let direct = predictor.predict_call(&call).unwrap();
        let first = service.predict_call(&call).unwrap();
        let second = service.predict_call(&call).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
        assert_eq!(service.cached_evaluations(), 1);
    }

    #[test]
    fn scalars_and_leading_dims_do_not_split_cache_entries() {
        let service = quick_service();
        let a = Call::gemm(Trans::NoTrans, Trans::NoTrans, 96, 96, 64, 1.0, 1.0);
        let b = Call::gemm(Trans::NoTrans, Trans::NoTrans, 96, 96, 64, -2.5, 0.0)
            .with_leading_dims(4000);
        let _ = service.predict_call(&a).unwrap();
        let _ = service.predict_call(&b).unwrap();
        assert_eq!(service.cache_stats().hits, 1);
        assert_eq!(service.cached_evaluations(), 1);
    }

    #[test]
    fn swap_invalidates_the_cache_but_not_snapshots() {
        let service = quick_service();
        let call = gemm(80);
        let expected = service.predict_call(&call).unwrap();
        let old_predictor = service.predictor();
        let old = service.swap(ModelRepository::new());
        assert!(!old.is_empty());
        assert_eq!(service.cached_evaluations(), 0);
        // The service now serves the empty repository...
        assert!(service.predict_call(&call).is_err());
        assert!(service.snapshot().is_empty());
        // ...but the predictor handed out before the swap still answers.
        assert_eq!(old_predictor.predict_call(&call).unwrap(), expected);
        // Swapping the old repository back restores service.
        service.swap((*old).clone());
        assert_eq!(service.predict_call(&call).unwrap(), expected);
    }

    #[test]
    fn merge_extends_the_served_repository() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(96);
        let (trinv_repo, _) =
            build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
        let (sylv_repo, _) =
            build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Sylv]);
        let service = ModelService::new(trinv_repo, machine, Locality::InCache);
        let before = service.snapshot().len();
        service.merge(sylv_repo);
        assert!(service.snapshot().len() > before);
        let sylv_call = Call::sylv_unb(64, 64);
        assert!(service.predict_call(&sylv_call).is_ok());
    }

    #[test]
    fn trace_prediction_uses_the_cache() {
        let service = quick_service();
        let trace: Vec<Call> = (0..50).map(|_| gemm(96)).collect();
        let prediction = service.predict_trace(&trace).unwrap();
        assert_eq!(prediction.predicted_calls, 50);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 49);
        let predictor = service.predictor();
        let direct = predictor.predict_trace(&trace).unwrap();
        assert_eq!(prediction, direct);
    }
}
